//! Availability under server churn (§8.3 / Figure 8): Monte-Carlo over
//! real sampled topologies, printing the conversation failure rate as
//! churn grows — reproduce the paper's "27% of conversations fail at 1%
//! churn" observation.
//!
//! ```sh
//! cargo run --release --example churn
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd::core::churn::{analytic_failure_rate, simulate_churn};
use xrd::topology::{chain_length, Beacon, Topology};

fn main() {
    let mut rng = StdRng::seed_from_u64(8);
    let n = 100;
    let k = chain_length(0.2, n, 64);
    let topo = Topology::build_with(&Beacon::from_u64(1), 0, n, n, k, 0.2);
    println!("topology: {n} servers, {n} chains of length {k} (f = 0.2)\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "churn", "conv fail", "chain fail", "analytic"
    );
    for churn in [0.0, 0.005, 0.01, 0.02, 0.03, 0.04] {
        let r = simulate_churn(&mut rng, &topo, churn, 40);
        println!(
            "{:>8.3} {:>12.3} {:>12.3} {:>12.3}",
            churn,
            r.conversation_failure_rate,
            r.chain_failure_rate,
            analytic_failure_rate(churn, k)
        );
    }
    println!(
        "\npaper (§8.3): ~27% of conversations fail at 1% churn; ~70% at 4%.\n\
         The failing chains do not hurt privacy — only delivery — but this is\n\
         the paper's acknowledged DoS surface."
    );
}
