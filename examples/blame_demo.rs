//! Active-attack demonstration (§6): a malicious user injects a
//! misauthenticated onion that survives until the last server; the
//! aggregate hybrid shuffle detects it, the blame protocol traces it
//! back through every shuffle, and the round completes without the
//! attacker — honest messages all delivered.
//!
//! For contrast, the same attack against the §5 baseline mixer passes
//! silently.
//!
//! ```sh
//! cargo run --release --example blame_demo
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd::mixnet::client::seal_ahs;
use xrd::mixnet::testutil::malicious_submission;
use xrd::mixnet::{ChainRunner, MailboxMessage, Submission, PAYLOAD_LEN};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let k = 6;
    let round = 0;
    let mut chain = ChainRunner::new(&mut rng, k, round);
    println!("chain of {k} servers, AHS enabled");

    // Eight honest users...
    let mut subs: Vec<Submission> = (0..8)
        .map(|i| {
            let msg = MailboxMessage {
                mailbox: [i as u8; 32],
                sealed: vec![i as u8; PAYLOAD_LEN + 16],
            };
            seal_ahs(&mut rng, chain.public(), round, &msg)
        })
        .collect();

    // ...plus one attacker whose onion is valid until the very last hop
    // (the worst case for detection and blame).
    let attacker_index = 4;
    subs.insert(
        attacker_index,
        malicious_submission(&mut rng, chain.public(), round, k - 1),
    );
    println!(
        "9 submissions (index {attacker_index} is malicious, crafted to fail at hop {})",
        k - 1
    );

    let outcome = chain.run_round(&mut rng, round, &subs);
    println!(
        "blame rounds: {}, removed users: {:?}, misbehaving servers: {:?}",
        outcome.stats.blame_rounds, outcome.malicious_users, outcome.misbehaving_servers
    );
    println!(
        "delivered {} honest messages (all 8 expected)",
        outcome.delivered.len()
    );
    assert_eq!(outcome.malicious_users, vec![attacker_index]);
    assert_eq!(outcome.delivered.len(), 8);

    // The baseline (Algorithm 1, no AHS): the same class of attack — a
    // dropped message — is simply not noticed.
    use xrd::mixnet::basic::{generate_basic_keys, run_basic_chain};
    use xrd::mixnet::client::seal_basic;
    let keys = generate_basic_keys(&mut rng, k);
    let mut basic_subs: Vec<Vec<u8>> = (0..8)
        .map(|i| {
            let msg = MailboxMessage {
                mailbox: [i as u8; 32],
                sealed: vec![i as u8; PAYLOAD_LEN + 16],
            };
            seal_basic(&mut rng, &keys.mpks, round, &msg)
        })
        .collect();
    basic_subs.remove(2); // a malicious first server drops user 2
    let delivered = run_basic_chain(&mut rng, &keys, round, basic_subs);
    println!(
        "\nbaseline mixer under the same attack: {} of 8 messages delivered, \
         nobody noticed — this is why AHS exists.",
        delivered.len()
    );
    assert_eq!(delivered.len(), 7);
}
