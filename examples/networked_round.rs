//! A real networked XRD round on loopback TCP: launch one daemon per
//! mix hop and per mailbox shard (each on its own port), then drive a
//! swarm of hundreds of concurrent users through full rounds and report
//! per-round wall-clock latency and throughput.
//!
//! ```text
//! cargo run --release --example networked_round [n_users] [rounds]
//! cargo run --release --example networked_round stress [n_conns] [workers]
//! ```
//!
//! The `stress` mode skips the full deployment and instead storms a
//! *single* mix daemon with `n_conns` concurrent submitter connections
//! (default 1000) — the connection-scalability probe for the
//! event-driven daemon reactor.

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd::core::DeploymentConfig;
use xrd_net::{launch_local, run_swarm, submit_storm, StormConfig, SwarmConfig};

fn stress(mut args: impl Iterator<Item = String>) {
    let n_conns: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(1000);
    let workers: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(8);
    let config = StormConfig {
        n_conns,
        workers,
        ..Default::default()
    };
    println!(
        "storming one mix daemon with {n_conns} concurrent submitter connections \
         ({workers} client pump threads, chain k = {})…",
        config.chain_len
    );
    let mut rng = StdRng::seed_from_u64(99);
    let report = submit_storm(&mut rng, &config).expect("submission storm failed");
    assert_eq!(
        report.accepted, report.n_conns as u64,
        "every distinct submission must be accepted"
    );
    println!(
        "connect  : {:>9.1?}  ({} concurrent connections)",
        report.connect_elapsed, report.n_conns
    );
    println!(
        "submit   : {:>9.1?}  ({:.0} verified submissions/sec)",
        report.submit_elapsed, report.submits_per_sec
    );
    println!(
        "mix hop  : {:>9.1?}  ({} entries whole-batch, attestation verified)",
        report.hop_elapsed, report.accepted
    );
    println!(
        "streamed : {:>9.1?}  (same hop, chunked + overlapped with transfer)",
        report.hop_streamed_elapsed
    );
    // The storm scrapes the daemon over the wire before tearing down;
    // the report's registry snapshot must agree with the storm it just
    // drove.  CI runs this mode, so a broken scrape path fails loudly.
    let stats = &report.stats;
    assert!(
        stats.counter("frames.in.Submit") >= n_conns as u64,
        "scrape must count every Submit frame ({} < {n_conns})",
        stats.counter("frames.in.Submit"),
    );
    assert!(
        stats.counter("reactor.accepts") >= n_conns as u64,
        "scrape must count every accepted connection"
    );
    for (name, h) in &stats.hists {
        assert!(h.is_well_formed(), "histogram {name} is malformed");
    }
    let hop = stats
        .hist("hop.decrypt_blind_us")
        .expect("hop kernel histogram present after a mix hop");
    assert!(hop.count > 0, "hop kernel ran but recorded no samples");
    println!(
        "scrape   : {} frames in ({} Submit), decrypt+blind p95 {}µs over {} chunks",
        stats.counter("reactor.frames_in"),
        stats.counter("frames.in.Submit"),
        hop.p95(),
        hop.count,
    );
    println!("STRESS OK: {} submissions accepted", report.accepted);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let first = args.next();
    if first.as_deref() == Some("stress") {
        return stress(args);
    }
    let n_users: usize = first.and_then(|v| v.parse().ok()).unwrap_or(200);
    let rounds: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(3);

    let mut rng = StdRng::seed_from_u64(42);
    // 6 chains of 3 mix servers (18 mix daemons) + 2 mailbox shards.
    let config = DeploymentConfig::small(6, 3);
    let (mut cluster, mut deployment) =
        launch_local(&mut rng, &config).expect("failed to launch loopback cluster");

    let topo = deployment.topology();
    println!(
        "cluster up: {} daemons ({} chains × {} hops + {} mailbox shards), ℓ = {}",
        cluster.n_daemons(),
        topo.n_chains(),
        topo.chain_len(),
        config.n_mailbox_shards,
        topo.ell(),
    );
    println!(
        "driving {n_users} users × {rounds} rounds ({} mailbox messages per round)…",
        n_users * topo.ell()
    );

    let report = run_swarm(
        &mut rng,
        &mut deployment,
        &SwarmConfig {
            n_users,
            rounds,
            conversing_fraction: 0.5,
            submit_workers: 8,
        },
    )
    .expect("loopback swarm round failed");

    println!();
    println!("round   latency      mixed  delivered  chats      msg/s");
    for r in &report.rounds {
        println!(
            "{:>5}   {:>9.1?}  {:>7}  {:>9}  {:>5}  {:>9.0}",
            r.round, r.latency, r.messages_mixed, r.delivered, r.chats_received, r.msgs_per_sec
        );
    }
    println!();
    println!("mean round latency : {:.1?}", report.mean_latency());
    println!(
        "mean throughput    : {:.0} mailbox msgs/sec end to end",
        report.mean_throughput()
    );
    println!(
        "wire traffic       : {:.2} MiB total ({:.1} KiB per delivered message)",
        report.bytes_on_wire as f64 / (1024.0 * 1024.0),
        report.bytes_on_wire as f64
            / 1024.0
            / report
                .rounds
                .iter()
                .map(|r| r.delivered)
                .sum::<usize>()
                .max(1) as f64,
    );
    // Per-phase breakdown from the metrics registry — the same series
    // `xrd-netd stats` scrapes from a production daemon.
    for name in ["hop.decrypt_blind_us", "hop.shuffle_prove_us"] {
        if let Some(h) = report.stats.hist(name) {
            println!(
                "{name:<24}: n={:<5} p50 {}µs  p95 {}µs  max {}µs",
                h.count,
                h.p50(),
                h.p95(),
                h.max
            );
        }
    }
    println!(
        "round spans recorded  : {} (submit window, per-hop, audit, reveal, deliver, fetch)",
        report.stats.spans.len()
    );

    cluster.shutdown();
}
