//! A multi-round private conversation, demonstrating the §5.3.3 churn
//! story: Alice goes offline mid-conversation; her pre-submitted cover
//! messages keep the traffic pattern indistinguishable and tell Bob to
//! stop conversing.
//!
//! ```sh
//! cargo run --release --example private_chat
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd::core::deployment::FetchResults;
use xrd::core::{Deployment, DeploymentConfig, Received, User};

fn print_round(round: u64, ell: usize, users: &[User], fetched: &FetchResults) {
    println!("--- round {round} ---");
    for (i, name) in ["Alice", "Bob"].iter().enumerate() {
        if !users[i].online {
            println!("{name}: offline");
            continue;
        }
        let received = &fetched[&users[i].mailbox_id()];
        for r in received {
            match r {
                Received::Chat { data, .. } if !data.is_empty() => {
                    println!("{name} <- chat: {:?}", String::from_utf8_lossy(data))
                }
                Received::Chat { .. } => println!("{name} <- (empty chat keepalive)"),
                Received::PartnerOffline { .. } => println!("{name} <- partner went offline"),
                Received::Loopback => {}
                Received::Opaque => println!("{name} <- ???"),
            }
        }
        println!("{name}: mailbox size {} (always l = {ell})", received.len());
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut deployment = Deployment::new(&mut rng, DeploymentConfig::small(6, 2));
    let ell = deployment.topology().ell();

    let mut users: Vec<User> = (0..6).map(|_| User::new(&mut rng)).collect();
    let (alice_pk, bob_pk) = (users[0].pk(), users[1].pk());
    users[0].start_conversation(bob_pk);
    users[1].start_conversation(alice_pk);
    users[0].queue_chat(b"round 0: hello!".to_vec());
    users[0].queue_chat(b"round 1: still here".to_vec());
    users[1].queue_chat(b"round 0: hey".to_vec());
    users[1].queue_chat(b"round 1: ack".to_vec());

    // Two normal rounds of chat.
    for _ in 0..2 {
        let (report, fetched) = deployment.run_round(&mut rng, &mut users);
        print_round(report.round, ell, &users, &fetched);
    }

    // Alice vanishes without telling Bob.  Her cover messages (submitted
    // during the previous round, sealed for this round's keys) are mixed
    // instead; one of them tells Bob she is gone.
    println!("\n*** Alice goes offline unexpectedly ***\n");
    users[0].online = false;
    let (report, fetched) = deployment.run_round(&mut rng, &mut users);
    print_round(report.round, ell, &users, &fetched);
    assert!(users[1].partner().is_none(), "Bob reverts to loopbacks");

    // Next round Bob is indistinguishable from an idle user.
    let (report, fetched) = deployment.run_round(&mut rng, &mut users);
    print_round(report.round, ell, &users, &fetched);
    let bob_received = &fetched[&users[1].mailbox_id()];
    assert!(bob_received.iter().all(|r| *r == Received::Loopback));
    println!("\nBob is now all-loopback; the adversary saw identical traffic throughout.");
}
