//! Quickstart: stand up a small XRD deployment, run one round with a
//! conversation, and print what everyone received.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd::core::{Deployment, DeploymentConfig, Received, User};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A test-scale network: 6 servers => 6 chains, chain length 2,
    // l = 3 messages per user per round.  (A real deployment derives
    // k ~ 32 from f = 0.2 and the 2^-64 anytrust bound.)
    let mut deployment = Deployment::new(&mut rng, DeploymentConfig::small(6, 2));
    {
        let topo = deployment.topology();
        println!(
            "deployment: {} servers, {} chains of length {}, l = {} messages/user/round",
            topo.n_servers,
            topo.n_chains(),
            topo.chain_len(),
            topo.ell()
        );
    }

    // Four users; Alice and Bob start a conversation (agreed out of
    // band, §3.1); Carol and Dave stay idle (all-loopback).
    let mut users: Vec<User> = (0..4).map(|_| User::new(&mut rng)).collect();
    let (alice_pk, bob_pk) = (users[0].pk(), users[1].pk());
    users[0].start_conversation(bob_pk);
    users[1].start_conversation(alice_pk);
    users[0].queue_chat(b"hello Bob - meet at the crossroads".to_vec());
    users[1].queue_chat(b"hi Alice!".to_vec());

    let (report, fetched) = deployment.run_round(&mut rng, &mut users);
    println!(
        "round {}: {} messages mixed, {} delivered",
        report.round, report.messages_mixed, report.delivered
    );

    for (i, name) in ["Alice", "Bob", "Carol", "Dave"].iter().enumerate() {
        let received = &fetched[&users[i].mailbox_id()];
        let loopbacks = received
            .iter()
            .filter(|r| **r == Received::Loopback)
            .count();
        let chats: Vec<String> = received
            .iter()
            .filter_map(|r| match r {
                Received::Chat { data, .. } => Some(String::from_utf8_lossy(data).into_owned()),
                _ => None,
            })
            .collect();
        println!(
            "{name}: {} messages in mailbox ({} loopbacks{})",
            received.len(),
            loopbacks,
            if chats.is_empty() {
                String::new()
            } else {
                format!(", chat: {chats:?}")
            }
        );
    }

    println!(
        "\nnote: every user received exactly l = {} messages - an observer \
         of the mailboxes cannot tell who is conversing.",
        deployment.topology().ell()
    );
}
