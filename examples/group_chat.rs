//! The §9 extension: multi-user (group) conversations built from
//! pairwise conversations on distinct chains.
//!
//! "Consider three users Alice, Bob, and Charlie who wish to have a
//! private group conversation.  If (Alice, Bob), (Alice, Charlie), and
//! (Bob, Charlie) all intersect at different chains, then each user
//! could carry out one-to-one conversation on two different chains to
//! have a group conversation."
//!
//! ```sh
//! cargo run --release --example group_chat
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd::core::{Deployment, DeploymentConfig, Received, User};
use xrd::topology::Topology;

/// Sample three users whose pairwise meeting chains are all distinct
/// (the §9 requirement; resample on collision).
fn three_group_members(rng: &mut StdRng, topo: &Topology) -> [User; 3] {
    loop {
        let a = User::new(rng);
        let b = User::new(rng);
        let c = User::new(rng);
        let ab = topo.meeting_chain_of_users(&a.mailbox_id(), &b.mailbox_id());
        let ac = topo.meeting_chain_of_users(&a.mailbox_id(), &c.mailbox_id());
        let bc = topo.meeting_chain_of_users(&b.mailbox_id(), &c.mailbox_id());
        if ab != ac && ab != bc && ac != bc {
            return [a, b, c];
        }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut deployment = Deployment::new(&mut rng, DeploymentConfig::small(10, 2));
    let topo = deployment.topology().clone();

    let [mut alice, mut bob, mut charlie] = three_group_members(&mut rng, &topo);
    println!(
        "pairwise meeting chains: AB={:?} AC={:?} BC={:?} (all distinct)",
        topo.meeting_chain_of_users(&alice.mailbox_id(), &bob.mailbox_id()),
        topo.meeting_chain_of_users(&alice.mailbox_id(), &charlie.mailbox_id()),
        topo.meeting_chain_of_users(&bob.mailbox_id(), &charlie.mailbox_id()),
    );

    // Wire the triangle: every member converses with both others.
    alice.add_conversation(&topo, bob.pk()).unwrap();
    alice.add_conversation(&topo, charlie.pk()).unwrap();
    bob.add_conversation(&topo, alice.pk()).unwrap();
    bob.add_conversation(&topo, charlie.pk()).unwrap();
    charlie.add_conversation(&topo, alice.pk()).unwrap();
    charlie.add_conversation(&topo, bob.pk()).unwrap();

    // "Group send" = queue the same message to every member.
    let (bob_id, charlie_id) = (bob.mailbox_id(), charlie.mailbox_id());
    alice.queue_chat_for(&bob_id, b"team: ship it tonight");
    alice.queue_chat_for(&charlie_id, b"team: ship it tonight");

    let mut users = vec![alice, bob, charlie];
    let (report, fetched) = deployment.run_round(&mut rng, &mut users);
    println!(
        "round {}: {} mixed, {} delivered",
        report.round, report.messages_mixed, report.delivered
    );

    for (i, name) in ["Alice", "Bob", "Charlie"].iter().enumerate() {
        let received = &fetched[&users[i].mailbox_id()];
        println!("{name}: {} messages (l = {})", received.len(), topo.ell());
        for r in received {
            if let Received::Chat { from, data } = r {
                if !data.is_empty() {
                    let sender = users
                        .iter()
                        .position(|u| u.mailbox_id() == *from)
                        .map(|j| ["Alice", "Bob", "Charlie"][j])
                        .unwrap_or("?");
                    println!("  <- from {sender}: {:?}", String::from_utf8_lossy(data));
                }
            }
        }
    }

    let bob_got = fetched[&users[1].mailbox_id()]
        .iter()
        .any(|r| matches!(r, Received::Chat { data, .. } if data == b"team: ship it tonight"));
    let charlie_got = fetched[&users[2].mailbox_id()]
        .iter()
        .any(|r| matches!(r, Received::Chat { data, .. } if data == b"team: ship it tonight"));
    assert!(bob_got && charlie_got);
    println!("\ngroup message delivered to both members; all mailbox counts stayed l.");
}
