//! The client-side reactor: one thread driving tens of thousands of
//! per-user connection state machines — the §8-scale counterpart of the
//! daemon reactor in [`crate::reactor`].
//!
//! The swarm used to pump blocking client sockets from a worker-thread
//! pool, which caps one load-generator process at a few thousand
//! emulated users (a thread apiece, or coarse chunking that serializes
//! them).  Here a single event loop owns every user's connection:
//!
//! * each session is a [`SessionMachine`] — a pure state machine fed
//!   one decoded response [`Frame`] at a time, answering with what to
//!   send next ([`Step`]);
//! * the loop reuses the daemon reactor's syscall layer (`epoll` on
//!   Linux/x86-64, the sweep poller elsewhere) and the incremental
//!   [`FrameDecoder`], so a daemon that dribbles responses or stalls
//!   mid-frame costs the client nothing but a buffer;
//! * writes are buffered and flushed as the socket accepts them, so a
//!   full kernel send buffer never blocks the loop;
//! * a session whose machine panics fails *that session* — the loop
//!   and every other session keep running (the storm cannot deadlock
//!   on one bad worker, which the old barrier-synchronized thread pool
//!   could);
//! * a session whose connection is lost mid-exchange is retried from
//!   the top of its current exchange, a bounded number of times.
//!
//! Sessions are sequential dialers: a machine talks to one address at
//! a time (submit to hop 0, then hop 1, …, then page its mailbox
//! shard), which mirrors a real client device and keeps the file
//! descriptor count at one per *user*, not one per (user, daemon)
//! pair.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use crate::codec::{error_code, Frame, FrameDecoder};
use crate::conn::NetError;
use crate::reactor::interest;
use crate::reactor::sys::Poller;

/// What a [`SessionMachine`] wants done after handling one frame.
#[derive(Debug)]
pub enum Step {
    /// Send these frames on the current connection, then keep reading.
    Send(Vec<Frame>),
    /// Nothing to send; keep reading.
    Continue,
    /// The current exchange is complete: hang up and dial
    /// [`SessionMachine::target`]'s next address (session complete if
    /// it returns `None`).
    NextTarget,
    /// The session failed; the error is recorded and the connection
    /// dropped.
    Fail(NetError),
}

/// One emulated client: a state machine the reactor drives through a
/// sequence of connect → request/response exchanges.
///
/// The driver calls [`target`](SessionMachine::target) to learn where
/// to dial, [`on_connect`](SessionMachine::on_connect) once the
/// connection is up (the frames it returns are the exchange's opening
/// requests), then [`on_frame`](SessionMachine::on_frame) per decoded
/// response.  After a [`Step::NextTarget`], `target` is consulted
/// again — a new address continues the session, `None` completes it.
///
/// **Restart discipline**: a connection lost mid-exchange is retried
/// by reconnecting and calling `on_connect` again, so an exchange must
/// be written to be restartable from its opening requests (the XRD
/// client exchanges all are: submissions are deduplicated server-side,
/// fetch pages are non-destructive reads, acks are idempotent
/// watermarks).
pub trait SessionMachine {
    /// Where the session wants to dial now (`None`: session complete).
    fn target(&self) -> Option<SocketAddr>;

    /// The connection to [`target`](SessionMachine::target) is up;
    /// returns the exchange's opening request frames.
    fn on_connect(&mut self) -> Vec<Frame>;

    /// One response frame arrived.
    fn on_frame(&mut self, frame: Frame) -> Step;
}

/// Knobs for one [`drive_sessions`] run.
#[derive(Clone, Debug)]
pub struct DriveConfig {
    /// Reconnect attempts per session after a lost connection (each
    /// retry restarts the session's current exchange).
    pub max_retries: u32,
    /// Per-dial connect timeout.
    pub connect_timeout: Duration,
    /// Whole-run deadline: sessions still incomplete when it expires
    /// fail with [`NetError::Timeout`].
    pub deadline: Duration,
    /// Per-connection idle ceiling: a wire that moves no bytes in
    /// either direction for this long mid-exchange is torn down and the
    /// session redialed against its retry budget — the event-loop
    /// analog of [`crate::ConnTimeouts::read`].  Without it a response
    /// lost in transit (a lossy network, a wedged daemon) leaves the
    /// socket open but forever silent, and the session hangs until the
    /// whole-run `deadline` fails it outright instead of retrying.
    pub exchange_timeout: Duration,
    /// Most sessions concurrently holding a live connection.  Sessions
    /// beyond the cap wait in the dial queue until completions free
    /// slots, so a population larger than the process's fd budget
    /// drains in waves instead of dying on `EMFILE` mid-storm.  The
    /// default leaves comfortable headroom under the common 16k–64k
    /// `RLIMIT_NOFILE` hard caps; [`drive_sessions`] callers that
    /// raise the limit can raise this to match.
    pub max_in_flight: usize,
    /// Dial every session's first target up front — the whole
    /// population concurrently connected — before any frame is sent,
    /// and report the connect wall clock separately.  The connection
    /// storm measurement mode.  The `max_in_flight` cap applies to the
    /// up-front dial too; a population beyond it dials the remainder
    /// during the drive phase.
    pub connect_first: bool,
    /// New dials per loop iteration (staggers reconnect bursts so the
    /// daemon's accept backlog absorbs them).
    pub connects_per_tick: usize,
}

impl Default for DriveConfig {
    fn default() -> DriveConfig {
        DriveConfig {
            max_retries: 3,
            connect_timeout: Duration::from_secs(5),
            deadline: Duration::from_secs(300),
            exchange_timeout: Duration::from_secs(60),
            max_in_flight: 12_000,
            connect_first: false,
            connects_per_tick: 512,
        }
    }
}

/// What one [`drive_sessions`] run produced.  The driven machines come
/// back in input order so callers can harvest per-session results.
pub struct RunOutcome<S> {
    /// The machines, in the order they were passed in.
    pub sessions: Vec<S>,
    /// Sessions that ran to completion.
    pub completed: usize,
    /// `(session index, error)` for every failed session.
    pub failed: Vec<(usize, NetError)>,
    /// Wall clock dialing the initial population (only meaningful with
    /// [`DriveConfig::connect_first`]; zero otherwise).
    pub connect_elapsed: Duration,
    /// Wall clock driving the event loop to quiescence.
    pub drive_elapsed: Duration,
}

/// How long one poller wait may block (shutdown/deadline latency
/// bound).
const WAIT_MS: i32 = 100;

/// Socket read chunk (mailbox pages are the largest client-bound
/// frames; 64 KiB amortizes syscalls on them).
const READ_CHUNK: usize = 64 * 1024;

/// Frames one session may consume per visit before yielding the loop
/// to the other sessions.
const FRAMES_PER_VISIT: usize = 32;

/// How often the idle sweep walks the active wires.  Bounds how much a
/// wire can overstay [`DriveConfig::exchange_timeout`]; the walk is a
/// tag-match and clock compare per slot, noise even at 50k sessions.
const SWEEP_EVERY: Duration = Duration::from_millis(100);

/// Run a session's callback, converting a panic into a session
/// failure instead of a crashed (and, with the old thread-pool driver,
/// deadlocked) storm.
fn guard<T>(f: impl FnOnce() -> T) -> Result<T, NetError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        .map_err(|_| NetError::Protocol("session state machine panicked".into()))
}

/// One live client connection.
struct Wire {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbuf: Vec<u8>,
    outpos: usize,
    registered: u32,
    /// Last instant any byte moved on this wire (either direction);
    /// the idle sweep compares it against
    /// [`DriveConfig::exchange_timeout`].
    last_progress: Instant,
}

impl Wire {
    fn new(stream: TcpStream) -> Wire {
        Wire {
            stream,
            decoder: FrameDecoder::new(),
            outbuf: Vec::new(),
            outpos: 0,
            registered: 0,
            last_progress: Instant::now(),
        }
    }

    fn queue(&mut self, frame: &Frame) {
        self.outbuf.extend_from_slice(&frame.encode());
    }

    fn has_pending_output(&self) -> bool {
        self.outpos < self.outbuf.len()
    }

    fn wanted_interest(&self) -> u32 {
        let base = interest::READ | interest::READ_HANGUP;
        if self.has_pending_output() {
            base | interest::WRITE
        } else {
            base
        }
    }
}

enum SlotState {
    /// Waiting in the dial queue.
    Dialing,
    Active(Wire),
    Finished,
    Failed,
}

struct Slot<S> {
    session: S,
    state: SlotState,
    retries_left: u32,
}

/// What driving one connection as far as its socket allows concluded.
enum Drove {
    /// Blocked on readiness.
    Keep,
    /// Frame budget spent with bytes still buffered; revisit next tick.
    Yield,
    /// The machine finished its exchange; consult `target` and redial
    /// (or complete).
    StageDone,
    /// The connection died mid-exchange (candidate for a retry).
    Lost(NetError),
    /// The machine failed the session.
    Failed(NetError),
}

/// Drive every session to completion (or failure) on the calling
/// thread — one poller, zero spawned threads, any number of sessions.
///
/// Failures are per-session: a machine that panics, a daemon that
/// rejects a request, a connection that dies past its retry budget —
/// each marks *its* session failed in [`RunOutcome::failed`] and the
/// rest of the swarm keeps running.  Only a poller-level error (fd
/// exhaustion at registration time, say) aborts the run as a whole.
pub fn drive_sessions<S: SessionMachine>(
    sessions: Vec<S>,
    config: &DriveConfig,
) -> std::io::Result<RunOutcome<S>> {
    let started = Instant::now();
    let mut poller = Poller::new()?;
    let mut slots: Vec<Slot<S>> = sessions
        .into_iter()
        .map(|session| Slot {
            session,
            state: SlotState::Dialing,
            retries_left: config.max_retries,
        })
        .collect();

    let mut completed = 0usize;
    let mut failed: Vec<(usize, NetError)> = Vec::new();
    let mut dial_queue: VecDeque<usize> = VecDeque::new();
    // Live connections right now; the `max_in_flight` dial gate.
    let mut active = 0usize;

    // Sessions with no target at all complete on the spot.
    for (i, slot) in slots.iter_mut().enumerate() {
        match guard(|| slot.session.target()) {
            Ok(Some(_)) => dial_queue.push_back(i),
            Ok(None) => {
                slot.state = SlotState::Finished;
                completed += 1;
            }
            Err(e) => {
                slot.state = SlotState::Failed;
                failed.push((i, e));
            }
        }
    }

    // The connection-storm mode: the entire population is dialed (and
    // held) before a single request goes out, so the connect and
    // request phases are measured separately — without a barrier in
    // sight.
    let mut connect_elapsed = Duration::ZERO;
    if config.connect_first {
        let connect_start = Instant::now();
        while active < config.max_in_flight {
            let Some(i) = dial_queue.pop_front() else {
                break;
            };
            dial(
                &mut poller,
                &mut slots,
                i,
                config,
                &mut dial_queue,
                &mut completed,
                &mut failed,
                &mut active,
            );
        }
        connect_elapsed = connect_start.elapsed();
        // The held population spent the connect phase deliberately
        // silent; the idle clock starts with the drive phase.
        for slot in &mut slots {
            if let SlotState::Active(wire) = &mut slot.state {
                wire.last_progress = Instant::now();
            }
        }
    }

    let drive_start = Instant::now();
    let mut read_buf = vec![0u8; READ_CHUNK];
    let mut events: Vec<(u64, u32)> = Vec::with_capacity(1024);
    let mut yielded: Vec<u64> = Vec::new();
    let mut last_sweep = Instant::now();

    loop {
        // Dial (and redial) in bounded batches per tick, gated by the
        // in-flight cap so the wave never outruns the fd budget.
        for _ in 0..config.connects_per_tick {
            if active >= config.max_in_flight {
                break;
            }
            let Some(i) = dial_queue.pop_front() else {
                break;
            };
            dial(
                &mut poller,
                &mut slots,
                i,
                config,
                &mut dial_queue,
                &mut completed,
                &mut failed,
                &mut active,
            );
        }

        let live = slots
            .iter()
            .any(|s| matches!(s.state, SlotState::Active(_)));
        if !live && dial_queue.is_empty() {
            break;
        }

        if started.elapsed() > config.deadline {
            for (i, slot) in slots.iter_mut().enumerate() {
                if matches!(slot.state, SlotState::Active(_) | SlotState::Dialing) {
                    if let SlotState::Active(wire) = &slot.state {
                        let _ = poller.remove(wire.stream.as_raw_fd());
                    }
                    slot.state = SlotState::Failed;
                    failed.push((
                        i,
                        NetError::Timeout {
                            op: "swarm reactor deadline",
                        },
                    ));
                }
            }
            break;
        }

        // The idle sweep: a silent wire gets no readiness events, so
        // only a clock can notice it.  Idle past the exchange timeout
        // is handled exactly like a lost connection — tear down,
        // charge a retry, redial (the machines restart their current
        // exchange) — so a dropped response heals instead of pinning
        // its session until the whole-run deadline.
        if last_sweep.elapsed() >= SWEEP_EVERY {
            last_sweep = Instant::now();
            for (i, slot) in slots.iter_mut().enumerate() {
                let SlotState::Active(wire) = &mut slot.state else {
                    continue;
                };
                if wire.last_progress.elapsed() <= config.exchange_timeout {
                    continue;
                }
                let _ = poller.remove(wire.stream.as_raw_fd());
                active -= 1;
                if slot.retries_left > 0 {
                    slot.retries_left -= 1;
                    slot.state = SlotState::Dialing;
                    dial_queue.push_back(i);
                } else {
                    slot.state = SlotState::Failed;
                    failed.push((
                        i,
                        NetError::Timeout {
                            op: "client exchange idle",
                        },
                    ));
                }
            }
        }

        events.clear();
        // Ready dials and yielded sessions demand an immediate pass;
        // a dial queue blocked on the in-flight cap does not — only a
        // completion (a readiness event) can unblock it.
        let dials_ready = !dial_queue.is_empty() && active < config.max_in_flight;
        let timeout = if yielded.is_empty() && !dials_ready {
            WAIT_MS
        } else {
            0
        };
        poller.wait(&mut events, timeout)?;
        events.splice(0..0, yielded.drain(..).map(|t| (t, 0)));

        for &(token, _readiness) in &events {
            let i = token as usize;
            let Some(slot) = slots.get_mut(i) else {
                continue;
            };
            let SlotState::Active(wire) = &mut slot.state else {
                continue; // stale readiness for a closed connection
            };
            match drive_wire(wire, &mut slot.session, &mut read_buf) {
                Drove::Keep => {
                    let wanted = wire.wanted_interest();
                    if wanted != wire.registered
                        && poller
                            .modify(wire.stream.as_raw_fd(), token, wanted)
                            .is_ok()
                    {
                        wire.registered = wanted;
                    }
                }
                Drove::Yield => yielded.push(token),
                Drove::StageDone => {
                    let _ = poller.remove(wire.stream.as_raw_fd());
                    active -= 1;
                    match guard(|| slot.session.target()) {
                        Ok(Some(_)) => {
                            slot.state = SlotState::Dialing;
                            dial_queue.push_back(i);
                        }
                        Ok(None) => {
                            slot.state = SlotState::Finished;
                            completed += 1;
                        }
                        Err(e) => {
                            slot.state = SlotState::Failed;
                            failed.push((i, e));
                        }
                    }
                }
                Drove::Lost(e) => {
                    let _ = poller.remove(wire.stream.as_raw_fd());
                    active -= 1;
                    if slot.retries_left > 0 {
                        slot.retries_left -= 1;
                        slot.state = SlotState::Dialing;
                        dial_queue.push_back(i);
                    } else {
                        slot.state = SlotState::Failed;
                        failed.push((i, e));
                    }
                }
                Drove::Failed(e) => {
                    let _ = poller.remove(wire.stream.as_raw_fd());
                    active -= 1;
                    slot.state = SlotState::Failed;
                    failed.push((i, e));
                }
            }
        }
    }

    failed.sort_by_key(|(i, _)| *i);
    Ok(RunOutcome {
        sessions: slots.into_iter().map(|s| s.session).collect(),
        completed,
        failed,
        connect_elapsed,
        drive_elapsed: drive_start.elapsed(),
    })
}

/// Dial slot `i`'s current target and register the connection (or
/// charge a retry / fail the session).  `active` counts live
/// connections; a successful dial increments it.
#[allow(clippy::too_many_arguments)]
fn dial<S: SessionMachine>(
    poller: &mut Poller,
    slots: &mut [Slot<S>],
    i: usize,
    config: &DriveConfig,
    dial_queue: &mut VecDeque<usize>,
    completed: &mut usize,
    failed: &mut Vec<(usize, NetError)>,
    active: &mut usize,
) {
    let slot = &mut slots[i];
    let addr = match guard(|| slot.session.target()) {
        Ok(Some(addr)) => addr,
        Ok(None) => {
            slot.state = SlotState::Finished;
            *completed += 1;
            return;
        }
        Err(e) => {
            slot.state = SlotState::Failed;
            failed.push((i, e));
            return;
        }
    };
    let stream = TcpStream::connect_timeout(&addr, config.connect_timeout).and_then(|s| {
        s.set_nonblocking(true)?;
        s.set_nodelay(true)?;
        Ok(s)
    });
    let stream = match stream {
        Ok(s) => s,
        Err(e) => {
            if slot.retries_left > 0 {
                slot.retries_left -= 1;
                dial_queue.push_back(i);
            } else {
                slot.state = SlotState::Failed;
                failed.push((i, NetError::Io(e)));
            }
            return;
        }
    };
    let mut wire = Wire::new(stream);
    match guard(|| slot.session.on_connect()) {
        Ok(frames) => {
            for frame in &frames {
                wire.queue(frame);
            }
        }
        Err(e) => {
            slot.state = SlotState::Failed;
            failed.push((i, e));
            return;
        }
    }
    let wanted = wire.wanted_interest();
    if poller
        .add(wire.stream.as_raw_fd(), i as u64, wanted)
        .is_err()
    {
        slot.state = SlotState::Failed;
        failed.push((
            i,
            NetError::Protocol("poller registration failed (fd limit?)".into()),
        ));
        return;
    }
    wire.registered = wanted;
    slot.state = SlotState::Active(wire);
    *active += 1;
}

/// Drive one connection as far as its socket and frame budget allow:
/// flush, process decoded frames through the machine, read, repeat.
fn drive_wire<S: SessionMachine>(wire: &mut Wire, session: &mut S, read_buf: &mut [u8]) -> Drove {
    let mut frames_this_visit = 0;
    loop {
        // 1. Flush pending output.
        while wire.has_pending_output() {
            match wire.stream.write(&wire.outbuf[wire.outpos..]) {
                Ok(0) => return Drove::Lost(NetError::Disconnected),
                Ok(n) => {
                    wire.outpos += n;
                    wire.last_progress = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Drove::Keep,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Drove::Lost(NetError::Io(e)),
            }
        }
        wire.outbuf.clear();
        wire.outpos = 0;

        // 2. Hand one decoded frame to the machine.
        if frames_this_visit >= FRAMES_PER_VISIT {
            return Drove::Yield;
        }
        match wire.decoder.try_frame() {
            Some(Ok(frame)) => {
                frames_this_visit += 1;
                match guard(|| session.on_frame(frame)) {
                    Ok(Step::Send(frames)) => {
                        for frame in &frames {
                            wire.queue(frame);
                        }
                        continue;
                    }
                    Ok(Step::Continue) => continue,
                    Ok(Step::NextTarget) => return Drove::StageDone,
                    Ok(Step::Fail(e)) => return Drove::Failed(e),
                    Err(e) => return Drove::Failed(e),
                }
            }
            Some(Err(e)) => return Drove::Failed(NetError::Codec(e)),
            None => {}
        }

        // 3. Pull newly arrived bytes off the socket.
        match wire.stream.read(read_buf) {
            Ok(0) => return Drove::Lost(NetError::Disconnected),
            Ok(n) => {
                wire.decoder.feed(&read_buf[..n]);
                wire.last_progress = Instant::now();
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Drove::Keep,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Drove::Lost(NetError::Io(e)),
        }
    }
}

// ---------------------------------------------------------------------
// The XRD client machines
// ---------------------------------------------------------------------

/// A user's submission leg: one sealed submission delivered to every
/// daemon of its chain (the §4 input-agreement fan-out), for each of
/// the user's submissions, one exchange at a time.
pub struct SubmitSession {
    /// `(daemon, Submit frame)` exchanges, in order; each awaits `Ok`.
    exchanges: Vec<(SocketAddr, Frame)>,
    next: usize,
}

impl SubmitSession {
    /// A session delivering each `(addr, frame)` exchange in order.
    pub fn new(exchanges: Vec<(SocketAddr, Frame)>) -> SubmitSession {
        SubmitSession { exchanges, next: 0 }
    }

    /// Exchanges acknowledged so far.
    pub fn acknowledged(&self) -> usize {
        self.next
    }
}

impl SessionMachine for SubmitSession {
    fn target(&self) -> Option<SocketAddr> {
        self.exchanges.get(self.next).map(|(addr, _)| *addr)
    }

    fn on_connect(&mut self) -> Vec<Frame> {
        match self.exchanges.get(self.next) {
            Some((_, frame)) => vec![frame.clone()],
            None => Vec::new(),
        }
    }

    fn on_frame(&mut self, frame: Frame) -> Step {
        match frame {
            // Pong closes an exchange too: tests (and health sweeps)
            // drive sessions of bare Pings through the same machinery.
            Frame::Ok | Frame::Pong => {
                self.next += 1;
                Step::NextTarget
            }
            Frame::Error { code, message } => Step::Fail(NetError::Remote { code, message }),
            other => Step::Fail(NetError::Protocol(format!(
                "expected Ok for submission, got {other:?}"
            ))),
        }
    }
}

/// A user's fetch leg: page the mailbox down from its shard with
/// cursor-bounded [`Frame::FetchPage`]s, then ack the watermark —
/// restartable at any point (reads are non-destructive, acks are
/// idempotent).
pub struct FetchSession {
    shard: SocketAddr,
    mailbox: [u8; 32],
    page_max: u32,
    cursor: u64,
    entries: Vec<(u64, Vec<u8>)>,
    /// The ack went out; only its `Ok` is outstanding.
    acked: bool,
    done: bool,
}

impl FetchSession {
    /// A session draining `mailbox` from the shard daemon at `shard`.
    pub fn new(shard: SocketAddr, mailbox: [u8; 32], page_max: u32) -> FetchSession {
        FetchSession {
            shard,
            mailbox,
            page_max,
            cursor: 0,
            entries: Vec::new(),
            acked: false,
            done: false,
        }
    }

    /// The mailbox this session drains.
    pub fn mailbox(&self) -> [u8; 32] {
        self.mailbox
    }

    /// The fetched `(delivery_round, sealed)` entries, oldest first.
    pub fn into_entries(self) -> Vec<(u64, Vec<u8>)> {
        self.entries
    }
}

impl SessionMachine for FetchSession {
    fn target(&self) -> Option<SocketAddr> {
        if self.done {
            None
        } else {
            Some(self.shard)
        }
    }

    fn on_connect(&mut self) -> Vec<Frame> {
        if self.acked {
            // The walk finished and the ack may or may not have been
            // applied before the connection died: resend it (an
            // idempotent watermark).
            return vec![Frame::FetchAck {
                mailbox: self.mailbox,
                upto: self.cursor,
            }];
        }
        // (Re)start the walk from the shard's watermark: nothing has
        // been acked, so a retry re-reads everything.
        self.cursor = 0;
        self.entries.clear();
        vec![Frame::FetchPage {
            mailbox: self.mailbox,
            cursor: 0,
            max: self.page_max,
        }]
    }

    fn on_frame(&mut self, frame: Frame) -> Step {
        match frame {
            Frame::MailboxPage {
                sealed,
                next_cursor,
                remaining,
            } => {
                if self.acked || next_cursor < self.cursor {
                    return Step::Fail(NetError::Protocol("mailbox page out of sequence".into()));
                }
                self.entries.extend(sealed);
                self.cursor = next_cursor;
                if remaining > 0 {
                    Step::Send(vec![Frame::FetchPage {
                        mailbox: self.mailbox,
                        cursor: self.cursor,
                        max: self.page_max,
                    }])
                } else if self.entries.is_empty() {
                    self.done = true;
                    Step::NextTarget
                } else {
                    self.acked = true;
                    Step::Send(vec![Frame::FetchAck {
                        mailbox: self.mailbox,
                        upto: self.cursor,
                    }])
                }
            }
            Frame::Ok if self.acked => {
                self.done = true;
                Step::NextTarget
            }
            Frame::Error { code, .. } if code == error_code::UNKNOWN_MAILBOX => {
                // Never delivered to: empty from this user's point of
                // view.
                self.done = true;
                Step::NextTarget
            }
            Frame::Error { code, message } => Step::Fail(NetError::Remote { code, message }),
            other => Step::Fail(NetError::Protocol(format!(
                "unexpected fetch response: {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// File-descriptor headroom
// ---------------------------------------------------------------------

/// Best-effort `RLIMIT_NOFILE` raise (a 50k-user reactor wants 50k+
/// descriptors; typical soft limits sit far lower).  Returns the
/// resulting soft limit — unchanged if the raise was refused — via raw
/// `prlimit64`, mirroring the reactor's no-libc discipline.  On
/// targets without the syscall, a no-op returning `want`.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn raise_nofile_limit(want: u64) -> u64 {
    const SYS_PRLIMIT64: i64 = 302;
    const RLIMIT_NOFILE: i64 = 7;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct RLimit64 {
        cur: u64,
        max: u64,
    }

    /// `prlimit64(0, RLIMIT_NOFILE, new, old)` — pid 0 is "this
    /// process".
    unsafe fn prlimit(new: *const RLimit64, old: *mut RLimit64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_PRLIMIT64 => ret,
            in("rdi") 0i64,
            in("rsi") RLIMIT_NOFILE,
            in("rdx") new as i64,
            in("r10") old as i64,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    let mut current = RLimit64 { cur: 0, max: 0 };
    if unsafe { prlimit(std::ptr::null(), &mut current) } < 0 {
        return 0;
    }
    if current.cur >= want {
        return current.cur;
    }
    // Privileged processes may raise the hard limit too; unprivileged
    // ones can still lift the soft limit to the hard cap.
    let attempts = [
        RLimit64 {
            cur: want,
            max: current.max.max(want),
        },
        RLimit64 {
            cur: want.min(current.max),
            max: current.max,
        },
    ];
    for attempt in &attempts {
        if unsafe { prlimit(attempt, std::ptr::null_mut()) } == 0 {
            return attempt.cur;
        }
    }
    current.cur
}

/// Best-effort `RLIMIT_NOFILE` raise — no-op on this target.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn raise_nofile_limit(want: u64) -> u64 {
    want
}
