//! A client swarm for load-driving a networked deployment: hundreds of
//! users submitting concurrently over TCP, with per-round wall-clock
//! latency and throughput reporting — the reproduction's stand-in for
//! the paper's §8 client fleet.
//!
//! Three drivers live here:
//!
//! * [`run_swarm`] — a full-deployment swarm: real users, whole rounds,
//!   delivery verification;
//! * [`submit_storm`] — a single-daemon connection storm: N concurrent
//!   submitter connections (tens of thousands) against *one* mix
//!   daemon, measuring the submission window plus one mix hop.  This is
//!   the connection-scalability probe for the event-driven daemons;
//! * [`mailbox_storm`] — the mailbox-tier probe: paper-scale mailbox
//!   counts delivered to and paged back out of a set of shard daemons,
//!   serial vs shard-parallel, with a user-churn leg exercising
//!   ack-driven retention at scale.
//!
//! All client connections are pumped by the single-threaded client
//! reactor in [`reactor`] — one epoll loop emulating the whole user
//! population — rather than a pool of blocking worker threads.

pub mod reactor;

use std::time::{Duration, Instant};

use rand::RngCore;

use xrd_core::user::{Received, User};
use xrd_mixnet::chain_keys::{generate_chain_keys, rotate_inner_keys};
use xrd_mixnet::client::{seal_ahs, Submission};
use xrd_mixnet::message::{MailboxMessage, MixEntry, MAILBOX_MSG_LEN};
use xrd_mixnet::server::verify_hop;

use crate::codec::{BatchAssembler, ChunkedBatch, Frame, STREAM_CHUNK};
use crate::conn::{Conn, NetError};
use crate::daemon::MixServerDaemon;
use crate::remote::RemoteDeployment;

/// Swarm shape.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Number of users.
    pub n_users: usize,
    /// Rounds to run.
    pub rounds: u64,
    /// Fraction of users in pairwise conversations (the rest idle and
    /// send loopback cover traffic only).
    pub conversing_fraction: f64,
    /// Concurrent submitter connections.
    pub submit_workers: usize,
}

impl Default for SwarmConfig {
    fn default() -> SwarmConfig {
        SwarmConfig {
            n_users: 128,
            rounds: 3,
            conversing_fraction: 0.5,
            submit_workers: 8,
        }
    }
}

/// Timing and delivery accounting for one swarm round.
#[derive(Clone, Debug)]
pub struct SwarmRoundStats {
    /// Round number.
    pub round: u64,
    /// Wall-clock latency of the whole round (submit → fetch).
    pub latency: Duration,
    /// Submissions mixed.
    pub messages_mixed: usize,
    /// Messages delivered to mailboxes.
    pub delivered: usize,
    /// Chat payloads received by the intended partners this round.
    pub chats_received: usize,
    /// End-to-end mailbox messages per second for this round.
    pub msgs_per_sec: f64,
}

/// Whole-run accounting.
#[derive(Clone, Debug)]
pub struct SwarmReport {
    /// Per-round stats.
    pub rounds: Vec<SwarmRoundStats>,
    /// Total bytes exchanged with the daemons.
    pub bytes_on_wire: u64,
    /// Total users driven.
    pub n_users: usize,
    /// End-of-run snapshot of the process-wide metrics registry —
    /// round spans, hop-phase histograms and reactor counters for the
    /// rounds this swarm drove (the deployment's daemons run in this
    /// process, so their series are all here).
    pub stats: xrd_obs::Snapshot,
}

impl SwarmReport {
    /// Mean round latency.
    pub fn mean_latency(&self) -> Duration {
        if self.rounds.is_empty() {
            return Duration::ZERO;
        }
        self.rounds.iter().map(|r| r.latency).sum::<Duration>() / self.rounds.len() as u32
    }

    /// Mean delivered messages per second across rounds.
    pub fn mean_throughput(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.msgs_per_sec).sum::<f64>() / self.rounds.len() as f64
    }
}

/// Drive a swarm of users through `config.rounds` rounds of the
/// networked deployment, verifying chat delivery along the way.
/// Returns an error if the deployment loses a whole round
/// ([`xrd_core::RoundError`]); single-chain degradation only shows up
/// in the per-round numbers.
///
/// Panics if a conversing user fails to receive a queued chat — the
/// swarm doubles as an end-to-end correctness check under load.
pub fn run_swarm<R: RngCore + ?Sized>(
    rng: &mut R,
    deployment: &mut RemoteDeployment,
    config: &SwarmConfig,
) -> Result<SwarmReport, xrd_core::RoundError> {
    deployment.set_submit_workers(config.submit_workers);

    let mut users: Vec<User> = (0..config.n_users).map(|_| User::new(rng)).collect();
    // Pair the first `conversing_fraction` of users: (0,1), (2,3), …
    let paired = ((config.n_users as f64 * config.conversing_fraction) as usize) & !1;
    for i in (0..paired).step_by(2) {
        let (a, b) = (users[i].pk(), users[i + 1].pk());
        users[i].start_conversation(b);
        users[i + 1].start_conversation(a);
    }

    let mut rounds = Vec::with_capacity(config.rounds as usize);
    for _ in 0..config.rounds {
        let round = deployment.round();
        // Fresh chat content every round, tagged for verification.
        for i in (0..paired).step_by(2) {
            users[i].queue_chat(format!("r{round} {i}→{}", i + 1).into_bytes());
            users[i + 1].queue_chat(format!("r{round} {}→{i}", i + 1).into_bytes());
        }

        let start = Instant::now();
        let (report, fetched) = deployment.run_round(rng, &mut users)?;
        let latency = start.elapsed();

        // Verify: every paired user received their partner's tagged
        // chat; every user received exactly ℓ messages.
        let ell = deployment.topology().ell();
        let mut chats_received = 0;
        for (i, user) in users.iter().enumerate() {
            let got = &fetched[&user.mailbox_id()];
            assert_eq!(got.len(), ell, "user {i} mailbox count");
            if i < paired {
                let partner = if i % 2 == 0 { i + 1 } else { i - 1 };
                let expect = format!("r{round} {partner}→{i}").into_bytes();
                assert!(
                    got.iter().any(|r| matches!(
                        r,
                        Received::Chat { data, .. } if *data == expect
                    )),
                    "user {i} missing chat from {partner} in round {round}"
                );
                chats_received += 1;
            }
        }

        rounds.push(SwarmRoundStats {
            round,
            latency,
            messages_mixed: report.messages_mixed,
            delivered: report.delivered,
            chats_received,
            msgs_per_sec: report.delivered as f64 / latency.as_secs_f64().max(1e-9),
        });
    }

    Ok(SwarmReport {
        rounds,
        bytes_on_wire: deployment.bytes_on_wire(),
        n_users: config.n_users,
        stats: xrd_obs::global().snapshot(),
    })
}

// ---------------------------------------------------------------------
// Single-daemon connection storm
// ---------------------------------------------------------------------

/// Shape of a [`submit_storm`] run.
#[derive(Clone, Debug)]
pub struct StormConfig {
    /// Concurrent submitter connections (one submission each).  All of
    /// them are open against the daemon at the same time.
    pub n_conns: usize,
    /// Legacy knob from the blocking thread-pool driver, kept so
    /// existing configs still parse.  The storm now runs every
    /// connection from one client reactor thread; this field changes
    /// nothing.
    pub workers: usize,
    /// Chain length `k` the submissions are sealed for.
    pub chain_len: usize,
}

impl Default for StormConfig {
    fn default() -> StormConfig {
        StormConfig {
            n_conns: 1000,
            workers: 8,
            chain_len: 3,
        }
    }
}

/// What one [`submit_storm`] measured.
#[derive(Clone, Debug)]
pub struct StormReport {
    /// Connections driven (all concurrently open).
    pub n_conns: usize,
    /// Size of the daemon's canonical batch after the window closed —
    /// every accepted submission, deduplicated.
    pub accepted: u64,
    /// Wall clock for opening all connections.
    pub connect_elapsed: Duration,
    /// Wall clock for the submission phase (every connection submits
    /// once, with its proof of knowledge verified by the daemon).
    pub submit_elapsed: Duration,
    /// Wall clock for one *whole-batch* mix hop over the full batch
    /// (one monolithic `MixBatch` frame, one monolithic response).
    pub hop_elapsed: Duration,
    /// Wall clock for the same hop *streamed*: the batch shipped as
    /// chunks the daemon starts decrypting on arrival, the output
    /// streamed back in chunks.
    pub hop_streamed_elapsed: Duration,
    /// Verified submissions per second during the submission phase.
    pub submits_per_sec: f64,
    /// The daemon's metrics, scraped *over the wire* (a
    /// [`Frame::StatsRequest`] on the control connection) while the
    /// storm's connections were still open — the very numbers
    /// `xrd-netd stats` would show an operator mid-storm.  Because the
    /// storm daemon runs in-process, the registry is process-wide:
    /// client-side `conn.*` counters appear next to the daemon's
    /// `reactor.*` and `hop.*` series.
    pub stats: xrd_obs::Snapshot,
}

/// `n` distinct, fully valid sealed submissions for `round` (distinct
/// mailbox → distinct onion).  The fixture builder behind
/// [`submit_storm`], exported so stress tests drive the daemons with
/// exactly the storm's submissions.
pub fn sealed_submissions<R: RngCore + ?Sized>(
    rng: &mut R,
    public: &xrd_mixnet::chain_keys::ChainPublicKeys,
    round: u64,
    n: usize,
) -> Vec<Submission> {
    (0..n)
        .map(|i| {
            let mut mailbox = [0u8; 32];
            mailbox[..8].copy_from_slice(&(i as u64).to_le_bytes());
            let msg = MailboxMessage {
                mailbox,
                sealed: vec![0u8; MAILBOX_MSG_LEN - 32],
            };
            seal_ahs(rng, public, round, &msg)
        })
        .collect()
}

/// Drive `config.n_conns` *concurrent* submitter connections against a
/// single [`MixServerDaemon`] through one submission window, then run
/// one mix hop over the accepted batch and verify its attestation —
/// the per-daemon slice of a round, at paper-scale client counts.
///
/// Every submission is a real sealed AHS onion with a valid proof of
/// knowledge, so the daemon does full verification work per connection.
/// Returns an error if any connection fails, if the daemon rejects a
/// submission, or if the hop attestation does not verify.
pub fn submit_storm<R: RngCore + ?Sized>(
    rng: &mut R,
    config: &StormConfig,
) -> Result<StormReport, NetError> {
    if config.n_conns == 0 {
        return Err(NetError::Protocol(
            "storm needs at least one connection".into(),
        ));
    }
    let k = config.chain_len.max(1);
    let round = 0u64;
    let (mut secrets, mut public) = generate_chain_keys(rng, k, 0);
    rotate_inner_keys(rng, &mut secrets, &mut public, round);
    let daemon = MixServerDaemon::spawn(
        "127.0.0.1:0",
        secrets.remove(0),
        public.clone(),
        rng.next_u64(),
    )?;
    let addr = daemon.addr();

    let mut control = Conn::connect(addr)?;
    control.request_ok(&Frame::OpenRound { round })?;

    // One distinct sealed submission per connection, prepared up front
    // so the timed phases measure the wire and the daemon, not
    // client-side sealing.
    let submissions = sealed_submissions(rng, &public, round, config.n_conns);

    // One session machine per emulated user, all driven from *this*
    // thread by the client reactor.  `connect_first` keeps the old
    // phase semantics — the whole population concurrently connected
    // before anyone submits — without the barrier choreography the
    // thread-pool driver needed (whose sizing was a standing footgun:
    // a barrier sized by `workers` instead of threads-actually-spawned
    // parked the storm forever, and a panicking worker stranded the
    // rest at the rendezvous).  Here a failed or panicking session
    // fails alone; the loop keeps draining the others.
    reactor::raise_nofile_limit(config.n_conns as u64 + 256);
    let sessions: Vec<reactor::SubmitSession> = submissions
        .iter()
        .map(|submission| {
            reactor::SubmitSession::new(vec![(
                addr,
                Frame::Submit {
                    round,
                    submission: submission.clone(),
                },
            )])
        })
        .collect();
    let drive = reactor::DriveConfig {
        connect_first: true,
        ..reactor::DriveConfig::default()
    };
    let outcome = reactor::drive_sessions(sessions, &drive).map_err(NetError::Io)?;
    if let Some((i, e)) = outcome.failed.into_iter().next() {
        return Err(NetError::Protocol(format!(
            "storm submitter {i} failed: {e}"
        )));
    }
    let connect_elapsed = outcome.connect_elapsed;
    let submit_elapsed = outcome.drive_elapsed;

    // Close the window: the digest count is the daemon's own statement
    // of how many distinct submissions landed.
    let accepted = match control.request(&Frame::CloseSubmissions { round })? {
        Frame::BatchDigest { count, .. } => count,
        other => {
            return Err(NetError::Protocol(format!(
                "expected BatchDigest, got {other:?}"
            )))
        }
    };

    // One mix hop over the whole batch, attestation verified locally —
    // the daemon's other per-round duty at this scale.
    let batch = match control.request(&Frame::GetBatch { round })? {
        Frame::SubmissionBatch { submissions, .. } => submissions,
        other => {
            return Err(NetError::Protocol(format!(
                "expected SubmissionBatch, got {other:?}"
            )))
        }
    };
    let entries: Vec<MixEntry> = batch.iter().map(|s| s.to_entry()).collect();
    let hop_start = Instant::now();
    let hop = control.request(&Frame::MixBatch {
        round,
        entries: entries.clone(),
    })?;
    let hop_elapsed = hop_start.elapsed();
    match hop {
        Frame::HopOutput { outputs, proof, .. } => {
            if !verify_hop(&public, 0, round, &entries, &outputs, &proof) {
                return Err(NetError::Protocol(
                    "storm hop attestation failed verification".into(),
                ));
            }
        }
        other => {
            return Err(NetError::Protocol(format!(
                "expected HopOutput, got {other:?}"
            )))
        }
    }

    // The same hop *streamed*: chunks hit the daemon's worker pool as
    // they arrive, the shuffled output streams back in chunks.
    let stream = ChunkedBatch::build(round, &entries, STREAM_CHUNK);
    let hop_streamed_start = Instant::now();
    for bytes in stream.frames() {
        control.send_encoded(bytes)?;
    }
    let total = match control.recv()? {
        Frame::HopOutputStart {
            round: r,
            position: 0,
            total,
        } if r == round => total,
        other => {
            return Err(NetError::Protocol(format!(
                "expected HopOutputStart, got {other:?}"
            )))
        }
    };
    let mut assembler = BatchAssembler::begin(round, total)
        .map_err(|e| NetError::Protocol(format!("storm hop stream: {e}")))?;
    let (outputs, proof) = loop {
        match control.recv()? {
            Frame::HopOutputChunk { entries } => {
                assembler
                    .absorb(entries)
                    .map_err(|e| NetError::Protocol(format!("storm hop stream: {e}")))?;
            }
            Frame::HopOutputEnd { digest, proof } => {
                let outputs = assembler
                    .finish(digest)
                    .map_err(|e| NetError::Protocol(format!("storm hop stream: {e}")))?;
                break (outputs, proof);
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "expected HopOutputChunk/End, got {other:?}"
                )))
            }
        }
    };
    let hop_streamed_elapsed = hop_streamed_start.elapsed();
    if !verify_hop(&public, 0, round, &entries, &outputs, &proof) {
        return Err(NetError::Protocol(
            "storm streamed-hop attestation failed verification".into(),
        ));
    }

    // Scrape the daemon before tearing the storm down, over the same
    // wire path an operator would use.  The report's numbers *are* the
    // registry's numbers — there is no separate bench-only accounting.
    let stats = match control.request(&Frame::StatsRequest)? {
        Frame::StatsReport { snapshot } => *snapshot,
        other => {
            return Err(NetError::Protocol(format!(
                "expected StatsReport, got {other:?}"
            )))
        }
    };

    Ok(StormReport {
        n_conns: config.n_conns,
        accepted,
        connect_elapsed,
        submit_elapsed,
        hop_elapsed,
        hop_streamed_elapsed,
        submits_per_sec: config.n_conns as f64 / submit_elapsed.as_secs_f64().max(1e-9),
        stats,
    })
}

// ---------------------------------------------------------------------
// Mailbox storm
// ---------------------------------------------------------------------

/// Shape of a [`mailbox_storm`] run.
#[derive(Clone, Debug)]
pub struct MailboxStormConfig {
    /// Mailbox shard daemons to spawn.
    pub shards: usize,
    /// Distinct mailboxes (paper-scale runs use 100 000+).
    pub mailboxes: usize,
    /// Messages delivered per mailbox per round.
    pub per_box: usize,
    /// Fraction of mailboxes whose owner is offline for the serial
    /// round: their mail is *not* fetched (so it must survive, acked by
    /// nobody) until the parallel round fetches both rounds' worth.
    pub offline_fraction: f64,
    /// Largest page a fetch requests.
    pub page_max: u32,
    /// Spawn the shards on the log-structured persistent store rooted
    /// here instead of in memory.
    pub persist_dir: Option<std::path::PathBuf>,
    /// Seed for the synthetic sealed payloads.
    pub seed: u64,
}

impl Default for MailboxStormConfig {
    fn default() -> MailboxStormConfig {
        MailboxStormConfig {
            shards: 4,
            mailboxes: 100_000,
            per_box: 1,
            offline_fraction: 0.1,
            page_max: 256,
            persist_dir: None,
            seed: 7,
        }
    }
}

/// What one [`mailbox_storm`] measured.
#[derive(Clone, Debug)]
pub struct MailboxStormReport {
    /// Shards driven.
    pub shards: usize,
    /// Distinct mailboxes.
    pub mailboxes: usize,
    /// Messages delivered per round (mailboxes × per_box).
    pub messages_per_round: usize,
    /// Serial delivery: one thread walks the shards one at a time.
    pub deliver_serial: Duration,
    /// Shard-parallel delivery: one worker thread per shard.
    pub deliver_parallel: Duration,
    /// Serial fetch of the online mailboxes (one thread, shard by
    /// shard), pagination and acks included.
    pub fetch_serial: Duration,
    /// Shard-parallel fetch of *every* mailbox — the churned ones
    /// return two rounds of mail.
    pub fetch_parallel: Duration,
    /// Entries read by the serial fetch leg.
    pub fetched_serial: u64,
    /// Entries read by the parallel fetch leg.
    pub fetched_parallel: u64,
    /// Entries that should have arrived but did not (must be 0).
    pub lost: u64,
    /// Entries that arrived more than once (must be 0).
    pub duplicated: u64,
}

impl MailboxStormReport {
    /// Delivery speedup of the shard-parallel leg over the serial one.
    pub fn deliver_speedup(&self) -> f64 {
        self.deliver_serial.as_secs_f64() / self.deliver_parallel.as_secs_f64().max(1e-9)
    }

    /// Fetch speedup, normalized per entry read (the parallel leg reads
    /// the churned backlog on top of its own round).
    pub fn fetch_speedup(&self) -> f64 {
        let serial = self.fetch_serial.as_secs_f64() / (self.fetched_serial.max(1) as f64);
        let parallel = self.fetch_parallel.as_secs_f64() / (self.fetched_parallel.max(1) as f64);
        serial / parallel.max(1e-12)
    }
}

/// The `i`-th storm mailbox id.
fn storm_mailbox(i: usize) -> [u8; 32] {
    let mut id = [0u8; 32];
    id[..8].copy_from_slice(&(i as u64).to_le_bytes());
    id[8..16].copy_from_slice(&(!(i as u64)).to_le_bytes());
    id
}

/// One round's synthetic deliveries, partitioned by owning shard.
fn storm_deliveries(
    config: &MailboxStormConfig,
    rng: &mut impl RngCore,
) -> Vec<Vec<MailboxMessage>> {
    let mut per_shard: Vec<Vec<MailboxMessage>> = vec![Vec::new(); config.shards];
    for i in 0..config.mailboxes {
        let mailbox = storm_mailbox(i);
        let shard = xrd_core::mailbox::shard_of(&mailbox, config.shards);
        for _ in 0..config.per_box {
            let mut sealed = vec![0u8; MAILBOX_MSG_LEN - 32];
            rng.fill_bytes(&mut sealed);
            per_shard[shard].push(MailboxMessage { mailbox, sealed });
        }
    }
    per_shard
}

/// Drive the mailbox tier at paper scale: two rounds of `mailboxes ×
/// per_box` deliveries into `shards` shard daemons, fetched back out
/// with cursor pagination and acks — round 0 serial (the baseline),
/// round 1 shard-parallel (the [`RemoteDeployment`] fast path) — while
/// an `offline_fraction` of users sits out round 0 and drains a
/// two-round backlog in round 1 (§5.3.3 churn at scale).
///
/// Every entry is accounted: the report's `lost`/`duplicated` are hard
/// zeros or the storm's invariants are broken.
pub fn mailbox_storm<R: RngCore + ?Sized>(
    rng: &mut R,
    config: &MailboxStormConfig,
) -> Result<MailboxStormReport, NetError> {
    use crate::coordinator::RetryPolicy;
    use crate::daemon::MailboxDaemon;
    use crate::remote::{deliver_shard, fetch_mailbox, fetch_shard};

    assert!(config.shards >= 1 && config.mailboxes >= 1);
    let retry = RetryPolicy::default();

    // Spawn the shard daemons (in-memory or persistent).
    let mut daemons = Vec::with_capacity(config.shards);
    for shard in 0..config.shards {
        let daemon = match &config.persist_dir {
            Some(dir) => MailboxDaemon::spawn_persistent(
                "127.0.0.1:0",
                shard,
                config.shards,
                dir.join(format!("shard-{shard}")),
                xrd_core::mailbox::LogStoreConfig::default(),
            )?,
            None => MailboxDaemon::spawn("127.0.0.1:0", shard, config.shards)?,
        };
        daemons.push(daemon);
    }
    let mut conns = daemons
        .iter()
        .map(|d| Conn::connect(d.addr()))
        .collect::<Result<Vec<_>, _>>()?;

    // Offline set: the tail of the id space sits out round 0.
    let n_offline = ((config.mailboxes as f64) * config.offline_fraction.clamp(0.0, 1.0)) as usize;
    let first_offline = config.mailboxes - n_offline;

    use rand::SeedableRng;
    let mut rng_seeded = rand::rngs::StdRng::seed_from_u64(config.seed);
    let _ = rng.next_u64(); // caller rng participates only as entropy
    let round0 = storm_deliveries(config, &mut rng_seeded);
    let round1 = storm_deliveries(config, &mut rng_seeded);

    // Round 0: serial deliver, then serial fetch of the online boxes.
    let start = Instant::now();
    for (conn, messages) in conns.iter_mut().zip(round0) {
        deliver_shard(conn, 0, messages, retry)?;
    }
    let deliver_serial = start.elapsed();

    let mut fetched_serial = 0u64;
    let start = Instant::now();
    for i in 0..first_offline {
        let mailbox = storm_mailbox(i);
        let shard = xrd_core::mailbox::shard_of(&mailbox, config.shards);
        fetched_serial +=
            fetch_mailbox(&mut conns[shard], &mailbox, config.page_max, retry)?.len() as u64;
    }
    let fetch_serial = start.elapsed();

    // Round 1: shard-parallel deliver, then shard-parallel fetch of
    // everything (the churned users drain their backlog too).
    let start = Instant::now();
    let results: Vec<Result<(), NetError>> = std::thread::scope(|scope| {
        conns
            .iter_mut()
            .zip(round1)
            .map(|(conn, messages)| scope.spawn(move || deliver_shard(conn, 1, messages, retry)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(NetError::Protocol("deliver worker panicked".into())))
            })
            .collect()
    });
    results.into_iter().collect::<Result<(), NetError>>()?;
    let deliver_parallel = start.elapsed();

    let mut by_shard: Vec<Vec<(usize, [u8; 32])>> = vec![Vec::new(); config.shards];
    for i in 0..config.mailboxes {
        let mailbox = storm_mailbox(i);
        by_shard[xrd_core::mailbox::shard_of(&mailbox, config.shards)].push((i, mailbox));
    }
    let page_max = config.page_max;
    let start = Instant::now();
    let results: Vec<Result<Vec<(usize, u64)>, NetError>> = std::thread::scope(|scope| {
        conns
            .iter_mut()
            .zip(by_shard)
            .map(|(conn, boxes)| {
                scope.spawn(move || {
                    let ids: Vec<[u8; 32]> = boxes.iter().map(|(_, m)| *m).collect();
                    let fetched = fetch_shard(conn, ids, page_max, retry)?;
                    Ok(boxes
                        .into_iter()
                        .map(|(i, mailbox)| {
                            (i, fetched.get(&mailbox).map_or(0, |v| v.len() as u64))
                        })
                        .collect())
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(NetError::Protocol("fetch worker panicked".into())))
            })
            .collect()
    });
    let fetch_parallel = start.elapsed();

    // Exact accounting: every entry once, churn backlog included.
    let per_box = config.per_box as u64;
    let mut lost = 0u64;
    let mut duplicated = 0u64;
    let mut fetched_parallel = 0u64;
    for result in results {
        for (i, got) in result? {
            fetched_parallel += got;
            let expected = if i < first_offline {
                per_box
            } else {
                2 * per_box
            };
            lost += expected.saturating_sub(got);
            duplicated += got.saturating_sub(expected);
        }
    }

    Ok(MailboxStormReport {
        shards: config.shards,
        mailboxes: config.mailboxes,
        messages_per_round: config.mailboxes * config.per_box,
        deliver_serial,
        deliver_parallel,
        fetch_serial,
        fetch_parallel,
        fetched_serial,
        fetched_parallel,
        lost,
        duplicated,
    })
}
