//! Deployment manifests: a parsed, validated description of where
//! every daemon of an XRD deployment runs — hosts, processes, chain
//! and hop placement, mailbox shards, listen ports, and the
//! daemon-to-daemon forwarding links — in a line-based text format an
//! operator can write by hand and a launcher
//! ([`crate::launcher::launch_manifest`]) can spawn real processes
//! from.
//!
//! # Format
//!
//! One directive per line; `#` starts a comment; blank lines are
//! ignored.
//!
//! ```text
//! # header — deployment shape (must come first)
//! seed 42
//! servers 4
//! faults 0.2
//! chain-len 3
//! shards 2
//!
//! # hosts — a name and an IP address each
//! host alpha 127.0.0.1
//! host beta  127.0.0.1
//!
//! # processes — one daemon each
//! process mix chain=0 hop=0 host=alpha port=7100
//! process mix chain=0 hop=1 host=alpha port=7101 successor=127.0.0.1:7102
//! process mix chain=0 hop=2 host=beta  port=7102
//! process mailbox shard=0 host=alpha port=7200
//! ```
//!
//! The *placement* is not free-form: chain membership is derived from
//! the `seed` through the same beacon-driven [`Topology`] every
//! deployment uses (§4), so validation rejects any manifest whose
//! process list does not cover exactly the chains/hops/shards the
//! header implies.  `port 0` asks the launcher for an OS-assigned
//! port (the daemon announces the real one); fixed ports are checked
//! for duplicates per host address.
//!
//! `successor=HOST:PORT` pins the daemon-to-daemon forwarding link of
//! a mix hop (where its output chunks go under
//! [`crate::Transport::Forwarded`]).  It is derivable — hop `i`
//! forwards to hop `i+1` of its chain — so an explicit value must
//! agree with the declared address of that next hop, and a successor
//! on a chain's last hop is rejected.  The redundancy is deliberate:
//! a manifest that *says* where chunks flow can be audited by eye,
//! and a typo becomes a parse-time error instead of a silently
//! mis-wired mix chain.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::net::{IpAddr, SocketAddr};

use xrd_topology::{Beacon, Topology};

/// A named machine in the deployment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Host {
    /// The manifest-local name processes refer to.
    pub name: String,
    /// The address daemons on this host bind (and are dialed at).
    pub addr: IpAddr,
}

/// What one process serves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Role {
    /// One mix hop of one chain.
    Mix {
        /// Chain index (into the seed-derived topology's chains).
        chain: usize,
        /// Hop position within the chain, `0..chain_len`.
        hop: usize,
        /// Explicit forwarding link: where this hop streams its output
        /// under [`crate::Transport::Forwarded`].  Must agree with the
        /// declared address of hop `hop + 1`; `None` derives it.
        successor: Option<SocketAddr>,
    },
    /// One mailbox shard.
    Mailbox {
        /// Shard index, `0..shards`.
        shard: usize,
    },
}

/// One daemon process: a role pinned to a host and port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessSpec {
    /// What the process serves.
    pub role: Role,
    /// Name of the declared [`Host`] it runs on.
    pub host: String,
    /// Listen port; `0` asks the launcher for an OS-assigned port.
    pub port: u16,
}

/// A parsed, validated deployment manifest.
///
/// Construct with [`Manifest::parse`] (which validates) or
/// [`Manifest::single_host`] (which generates a valid one); mutate
/// freely and re-check with [`Manifest::validate`].  [`fmt::Display`]
/// serializes back to the text format, and
/// `Manifest::parse(&m.to_string())` round-trips exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Beacon seed the topology (chain membership) derives from.
    pub seed: u64,
    /// Mix servers in the deployment (the topology draws chains from
    /// these).
    pub n_servers: usize,
    /// Assumed malicious-server fraction `f` (sizes the chains'
    /// honesty guarantee, §4).
    pub f: f64,
    /// Hops per chain, `k`.
    pub chain_len: usize,
    /// Mailbox shards.
    pub n_shards: usize,
    /// Crash-restart budget per daemon process: how many times the
    /// launcher's supervisor will respawn a crashed daemon before
    /// declaring it dead.  `0` (the default) disables supervision —
    /// daemons run unjournaled and a crash is permanent, the
    /// pre-supervision behavior.
    pub restart: u32,
    /// Declared machines.
    pub hosts: Vec<Host>,
    /// Declared daemon processes.
    pub processes: Vec<ProcessSpec>,
}

/// Why a manifest failed to parse or validate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based source line, when the failure is tied to one.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl ManifestError {
    fn at(line: usize, message: impl Into<String>) -> ManifestError {
        ManifestError {
            line: Some(line),
            message: message.into(),
        }
    }

    fn global(message: impl Into<String>) -> ManifestError {
        ManifestError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(out, "manifest line {n}: {}", self.message),
            None => write!(out, "manifest: {}", self.message),
        }
    }
}

impl std::error::Error for ManifestError {}

impl Manifest {
    /// Parse and validate a manifest from its text form.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let mut seed: Option<u64> = None;
        let mut n_servers: Option<usize> = None;
        let mut f: Option<f64> = None;
        let mut chain_len: Option<usize> = None;
        let mut n_shards: Option<usize> = None;
        let mut restart: u32 = 0;
        let mut hosts: Vec<Host> = Vec::new();
        let mut processes: Vec<ProcessSpec> = Vec::new();

        for (i, raw) in text.lines().enumerate() {
            let n = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let directive = words.next().expect("non-empty line has a first word");
            match directive {
                "seed" => seed = Some(parse_value(n, "seed", words.next())?),
                "servers" => n_servers = Some(parse_value(n, "servers", words.next())?),
                "faults" => f = Some(parse_value(n, "faults", words.next())?),
                "chain-len" => chain_len = Some(parse_value(n, "chain-len", words.next())?),
                "shards" => n_shards = Some(parse_value(n, "shards", words.next())?),
                "restart" => restart = parse_value(n, "restart", words.next())?,
                "host" => {
                    let name = words
                        .next()
                        .ok_or_else(|| ManifestError::at(n, "host needs a name"))?;
                    let addr: IpAddr = parse_value(n, "host address", words.next())?;
                    hosts.push(Host {
                        name: name.to_string(),
                        addr,
                    });
                }
                "process" => processes.push(parse_process(n, &mut words)?),
                other => {
                    return Err(ManifestError::at(n, format!("unknown directive `{other}`")));
                }
            }
            if let Some(extra) = words.next() {
                return Err(ManifestError::at(n, format!("trailing `{extra}`")));
            }
        }

        let manifest = Manifest {
            seed: seed.ok_or_else(|| ManifestError::global("missing `seed`"))?,
            n_servers: n_servers.ok_or_else(|| ManifestError::global("missing `servers`"))?,
            f: f.ok_or_else(|| ManifestError::global("missing `faults`"))?,
            chain_len: chain_len.ok_or_else(|| ManifestError::global("missing `chain-len`"))?,
            n_shards: n_shards.ok_or_else(|| ManifestError::global("missing `shards`"))?,
            restart,
            hosts,
            processes,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Generate the manifest of a complete single-host deployment:
    /// every daemon the header implies on `addr`, mix hops at
    /// `base_port`, `base_port + 1`, … then mailbox shards (all ports
    /// `0` — OS-assigned — when `base_port` is `0`).
    // One parameter per manifest header field, deliberately.
    #[allow(clippy::too_many_arguments)]
    pub fn single_host(
        name: &str,
        addr: IpAddr,
        seed: u64,
        n_servers: usize,
        f: f64,
        chain_len: usize,
        n_shards: usize,
        base_port: u16,
    ) -> Manifest {
        let beacon = Beacon::from_u64(seed);
        let topo = Topology::build_with(&beacon, 0, n_servers, n_servers, chain_len, f);
        let mut next_port = base_port;
        let mut port = move || {
            if base_port == 0 {
                0
            } else {
                let p = next_port;
                next_port += 1;
                p
            }
        };
        let mut processes = Vec::new();
        for chain in 0..topo.n_chains() {
            for hop in 0..chain_len {
                processes.push(ProcessSpec {
                    role: Role::Mix {
                        chain,
                        hop,
                        successor: None,
                    },
                    host: name.to_string(),
                    port: port(),
                });
            }
        }
        for shard in 0..n_shards {
            processes.push(ProcessSpec {
                role: Role::Mailbox { shard },
                host: name.to_string(),
                port: port(),
            });
        }
        Manifest {
            seed,
            n_servers,
            f,
            chain_len,
            n_shards,
            restart: 0,
            hosts: vec![Host {
                name: name.to_string(),
                addr,
            }],
            processes,
        }
    }

    /// The topology the header implies — the same beacon-driven chain
    /// formation every deployment runs, so a manifest-launched cluster
    /// and `Deployment::new` agree on who serves which chain.
    pub fn topology(&self) -> Topology {
        let beacon = Beacon::from_u64(self.seed);
        Topology::build_with(
            &beacon,
            0,
            self.n_servers,
            self.n_servers,
            self.chain_len,
            self.f,
        )
    }

    /// The declared address of the host `name`, if declared.
    pub fn host_addr(&self, name: &str) -> Option<IpAddr> {
        self.hosts.iter().find(|h| h.name == name).map(|h| h.addr)
    }

    /// The declared listen address of a process (port may be `0`).
    pub fn addr_of(&self, process: &ProcessSpec) -> Option<SocketAddr> {
        self.host_addr(&process.host)
            .map(|ip| SocketAddr::new(ip, process.port))
    }

    /// Declared daemon addresses per chain, hop order.  Only
    /// meaningful on a validated manifest with fixed (nonzero) ports.
    pub fn chain_addrs(&self) -> Vec<Vec<SocketAddr>> {
        let topo = self.topology();
        let mut addrs = vec![vec![None; self.chain_len]; topo.n_chains()];
        for p in &self.processes {
            if let Role::Mix { chain, hop, .. } = p.role {
                addrs[chain][hop] = self.addr_of(p);
            }
        }
        addrs
            .into_iter()
            .map(|chain| chain.into_iter().map(|a| a.expect("validated")).collect())
            .collect()
    }

    /// Declared mailbox shard addresses, shard order.  Only meaningful
    /// on a validated manifest with fixed (nonzero) ports.
    pub fn mailbox_addrs(&self) -> Vec<SocketAddr> {
        let mut addrs = vec![None; self.n_shards];
        for p in &self.processes {
            if let Role::Mailbox { shard } = p.role {
                addrs[shard] = self.addr_of(p);
            }
        }
        addrs.into_iter().map(|a| a.expect("validated")).collect()
    }

    /// Where hop `hop` of `chain` forwards its output chunks under
    /// [`crate::Transport::Forwarded`]: the explicit `successor=` pin
    /// if one is declared, otherwise the declared address of hop
    /// `hop + 1`; `None` on the last hop (its output goes to the
    /// coordinator).
    pub fn successor_of(&self, chain: usize, hop: usize) -> Option<SocketAddr> {
        if hop + 1 >= self.chain_len {
            return None;
        }
        let pinned = self.processes.iter().find_map(|p| match p.role {
            Role::Mix {
                chain: c,
                hop: h,
                successor,
            } if c == chain && h == hop => successor,
            _ => None,
        });
        if pinned.is_some() {
            return pinned;
        }
        self.processes.iter().find_map(|p| match p.role {
            Role::Mix {
                chain: c, hop: h, ..
            } if c == chain && h == hop + 1 => self.addr_of(p),
            _ => None,
        })
    }

    /// Check every invariant the launcher (and the protocol) relies
    /// on; [`Manifest::parse`] calls this, so a parsed manifest is
    /// always valid.
    ///
    /// * header sanity: at least one server, `chain_len ≥ 1` and
    ///   `≤ servers`, at least one shard, `f` in `[0, 1)`;
    /// * hosts: names unique and non-empty;
    /// * processes: every referenced host declared; no two processes
    ///   on the same declared address (fixed ports only — port `0` is
    ///   OS-assigned and cannot collide);
    /// * placement: every chain of the seed-derived topology has
    ///   exactly one process per hop `0..chain_len`, every shard
    ///   exactly one owner, and nothing outside those ranges;
    /// * forwarding: a `successor=` pin only on a non-last hop, and it
    ///   must equal the declared address of the next hop of the same
    ///   chain.
    pub fn validate(&self) -> Result<(), ManifestError> {
        if self.n_servers == 0 {
            return Err(ManifestError::global("needs at least one server"));
        }
        if self.chain_len == 0 || self.chain_len > self.n_servers {
            return Err(ManifestError::global(format!(
                "chain-len {} must be in 1..={} (servers)",
                self.chain_len, self.n_servers
            )));
        }
        if self.n_shards == 0 {
            return Err(ManifestError::global("needs at least one mailbox shard"));
        }
        if !(0.0..1.0).contains(&self.f) {
            return Err(ManifestError::global(format!(
                "faults {} must be in [0, 1)",
                self.f
            )));
        }

        let mut names = HashSet::new();
        for host in &self.hosts {
            if host.name.is_empty() {
                return Err(ManifestError::global("empty host name"));
            }
            if !names.insert(host.name.as_str()) {
                return Err(ManifestError::global(format!(
                    "duplicate host `{}`",
                    host.name
                )));
            }
        }

        let mut bound: HashMap<SocketAddr, String> = HashMap::new();
        for p in &self.processes {
            let Some(addr) = self.addr_of(p) else {
                return Err(ManifestError::global(format!(
                    "process references undeclared host `{}`",
                    p.host
                )));
            };
            if p.port != 0 {
                if let Some(prev) = bound.insert(addr, describe(p)) {
                    return Err(ManifestError::global(format!(
                        "{} and {} both bind {addr}",
                        prev,
                        describe(p)
                    )));
                }
            }
        }

        // Placement: exactly the topology's chains × hops and the
        // header's shards, each exactly once.
        let topo = self.topology();
        let mut hops: HashMap<(usize, usize), usize> = HashMap::new();
        let mut shards: HashMap<usize, usize> = HashMap::new();
        for p in &self.processes {
            match p.role {
                Role::Mix { chain, hop, .. } => *hops.entry((chain, hop)).or_default() += 1,
                Role::Mailbox { shard } => *shards.entry(shard).or_default() += 1,
            }
        }
        for chain in 0..topo.n_chains() {
            for hop in 0..self.chain_len {
                match hops.remove(&(chain, hop)) {
                    Some(1) => {}
                    Some(n) => {
                        return Err(ManifestError::global(format!(
                            "chain {chain} hop {hop} declared {n} times"
                        )));
                    }
                    None => {
                        return Err(ManifestError::global(format!(
                            "chain {chain} hop {hop} has no process"
                        )));
                    }
                }
            }
        }
        if let Some(((chain, hop), _)) = hops.into_iter().next() {
            return Err(ManifestError::global(format!(
                "process for chain {chain} hop {hop} outside the topology \
                 ({} chains × {} hops)",
                topo.n_chains(),
                self.chain_len
            )));
        }
        for shard in 0..self.n_shards {
            match shards.remove(&shard) {
                Some(1) => {}
                Some(n) => {
                    return Err(ManifestError::global(format!(
                        "shard {shard} declared {n} times"
                    )));
                }
                None => {
                    return Err(ManifestError::global(format!("shard {shard} has no owner")));
                }
            }
        }
        if let Some((shard, _)) = shards.into_iter().next() {
            return Err(ManifestError::global(format!(
                "shard {shard} outside 0..{}",
                self.n_shards
            )));
        }

        // Forwarding pins: only on non-last hops, and agreeing with
        // the next hop's declared address.
        for p in &self.processes {
            let Role::Mix {
                chain,
                hop,
                successor: Some(successor),
            } = p.role
            else {
                continue;
            };
            if hop + 1 >= self.chain_len {
                return Err(ManifestError::global(format!(
                    "chain {chain} hop {hop} is the last hop; its successor \
                     is the coordinator, not {successor}"
                )));
            }
            let next = self
                .processes
                .iter()
                .find_map(|q| match q.role {
                    Role::Mix {
                        chain: c, hop: h, ..
                    } if c == chain && h == hop + 1 => self.addr_of(q),
                    _ => None,
                })
                .expect("placement check guarantees the next hop exists");
            if successor != next {
                return Err(ManifestError::global(format!(
                    "chain {chain} hop {hop} forwards to {successor}, but hop {} \
                     is declared at {next} — dangling successor",
                    hop + 1
                )));
            }
        }
        Ok(())
    }
}

/// Short human label for a process, for error messages.
fn describe(p: &ProcessSpec) -> String {
    match p.role {
        Role::Mix { chain, hop, .. } => format!("mix chain={chain} hop={hop}"),
        Role::Mailbox { shard } => format!("mailbox shard={shard}"),
    }
}

/// Parse one `key value` header word.
fn parse_value<T: std::str::FromStr>(
    line: usize,
    what: &str,
    word: Option<&str>,
) -> Result<T, ManifestError> {
    let word = word.ok_or_else(|| ManifestError::at(line, format!("{what} needs a value")))?;
    word.parse()
        .map_err(|_| ManifestError::at(line, format!("bad {what} `{word}`")))
}

/// Parse the `key=value` tail of a `process` line.
fn parse_process<'a>(
    line: usize,
    words: impl Iterator<Item = &'a str>,
) -> Result<ProcessSpec, ManifestError> {
    let mut words = words;
    let kind = words
        .next()
        .ok_or_else(|| ManifestError::at(line, "process needs a kind (mix | mailbox)"))?;
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for word in words {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| ManifestError::at(line, format!("expected key=value, got `{word}`")))?;
        if fields.insert(key, value).is_some() {
            return Err(ManifestError::at(line, format!("duplicate `{key}=`")));
        }
    }
    let mut take = |key: &str| fields.remove(key);
    let host = take("host")
        .ok_or_else(|| ManifestError::at(line, "process needs host="))?
        .to_string();
    let port: u16 = parse_value(line, "port", take("port"))?;
    let role = match kind {
        "mix" => {
            let chain = parse_value(line, "chain", take("chain"))?;
            let hop = parse_value(line, "hop", take("hop"))?;
            let successor = match take("successor") {
                None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| ManifestError::at(line, format!("bad successor `{v}`")))?,
                ),
            };
            Role::Mix {
                chain,
                hop,
                successor,
            }
        }
        "mailbox" => Role::Mailbox {
            shard: parse_value(line, "shard", take("shard"))?,
        },
        other => {
            return Err(ManifestError::at(
                line,
                format!("unknown process kind `{other}`"),
            ));
        }
    };
    if let Some(key) = fields.into_keys().next() {
        return Err(ManifestError::at(line, format!("unknown field `{key}=`")));
    }
    Ok(ProcessSpec { role, host, port })
}

impl fmt::Display for Manifest {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(out, "seed {}", self.seed)?;
        writeln!(out, "servers {}", self.n_servers)?;
        writeln!(out, "faults {}", self.f)?;
        writeln!(out, "chain-len {}", self.chain_len)?;
        writeln!(out, "shards {}", self.n_shards)?;
        if self.restart > 0 {
            writeln!(out, "restart {}", self.restart)?;
        }
        for host in &self.hosts {
            writeln!(out, "host {} {}", host.name, host.addr)?;
        }
        for p in &self.processes {
            match &p.role {
                Role::Mix {
                    chain,
                    hop,
                    successor,
                } => {
                    write!(
                        out,
                        "process mix chain={chain} hop={hop} host={} port={}",
                        p.host, p.port
                    )?;
                    if let Some(successor) = successor {
                        write!(out, " successor={successor}")?;
                    }
                    writeln!(out)?;
                }
                Role::Mailbox { shard } => {
                    writeln!(
                        out,
                        "process mailbox shard={shard} host={} port={}",
                        p.host, p.port
                    )?;
                }
            }
        }
        Ok(())
    }
}
