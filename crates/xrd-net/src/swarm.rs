//! A client swarm for load-driving a networked deployment: hundreds of
//! users submitting concurrently over TCP, with per-round wall-clock
//! latency and throughput reporting — the reproduction's stand-in for
//! the paper's §8 client fleet.

use std::time::{Duration, Instant};

use rand::RngCore;

use xrd_core::user::{Received, User};

use crate::remote::RemoteDeployment;

/// Swarm shape.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Number of users.
    pub n_users: usize,
    /// Rounds to run.
    pub rounds: u64,
    /// Fraction of users in pairwise conversations (the rest idle and
    /// send loopback cover traffic only).
    pub conversing_fraction: f64,
    /// Concurrent submitter connections.
    pub submit_workers: usize,
}

impl Default for SwarmConfig {
    fn default() -> SwarmConfig {
        SwarmConfig {
            n_users: 128,
            rounds: 3,
            conversing_fraction: 0.5,
            submit_workers: 8,
        }
    }
}

/// Timing and delivery accounting for one swarm round.
#[derive(Clone, Debug)]
pub struct SwarmRoundStats {
    /// Round number.
    pub round: u64,
    /// Wall-clock latency of the whole round (submit → fetch).
    pub latency: Duration,
    /// Submissions mixed.
    pub messages_mixed: usize,
    /// Messages delivered to mailboxes.
    pub delivered: usize,
    /// Chat payloads received by the intended partners this round.
    pub chats_received: usize,
    /// End-to-end mailbox messages per second for this round.
    pub msgs_per_sec: f64,
}

/// Whole-run accounting.
#[derive(Clone, Debug)]
pub struct SwarmReport {
    /// Per-round stats.
    pub rounds: Vec<SwarmRoundStats>,
    /// Total bytes exchanged with the daemons.
    pub bytes_on_wire: u64,
    /// Total users driven.
    pub n_users: usize,
}

impl SwarmReport {
    /// Mean round latency.
    pub fn mean_latency(&self) -> Duration {
        if self.rounds.is_empty() {
            return Duration::ZERO;
        }
        self.rounds.iter().map(|r| r.latency).sum::<Duration>() / self.rounds.len() as u32
    }

    /// Mean delivered messages per second across rounds.
    pub fn mean_throughput(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.msgs_per_sec).sum::<f64>() / self.rounds.len() as f64
    }
}

/// Drive a swarm of users through `config.rounds` rounds of the
/// networked deployment, verifying chat delivery along the way.
///
/// Panics if a conversing user fails to receive a queued chat — the
/// swarm doubles as an end-to-end correctness check under load.
pub fn run_swarm<R: RngCore + ?Sized>(
    rng: &mut R,
    deployment: &mut RemoteDeployment,
    config: &SwarmConfig,
) -> SwarmReport {
    deployment.set_submit_workers(config.submit_workers);

    let mut users: Vec<User> = (0..config.n_users).map(|_| User::new(rng)).collect();
    // Pair the first `conversing_fraction` of users: (0,1), (2,3), …
    let paired = ((config.n_users as f64 * config.conversing_fraction) as usize) & !1;
    for i in (0..paired).step_by(2) {
        let (a, b) = (users[i].pk(), users[i + 1].pk());
        users[i].start_conversation(b);
        users[i + 1].start_conversation(a);
    }

    let mut rounds = Vec::with_capacity(config.rounds as usize);
    for _ in 0..config.rounds {
        let round = deployment.round();
        // Fresh chat content every round, tagged for verification.
        for i in (0..paired).step_by(2) {
            users[i].queue_chat(format!("r{round} {i}→{}", i + 1).into_bytes());
            users[i + 1].queue_chat(format!("r{round} {}→{i}", i + 1).into_bytes());
        }

        let start = Instant::now();
        let (report, fetched) = deployment.run_round(rng, &mut users);
        let latency = start.elapsed();

        // Verify: every paired user received their partner's tagged
        // chat; every user received exactly ℓ messages.
        let ell = deployment.topology().ell();
        let mut chats_received = 0;
        for (i, user) in users.iter().enumerate() {
            let got = &fetched[&user.mailbox_id()];
            assert_eq!(got.len(), ell, "user {i} mailbox count");
            if i < paired {
                let partner = if i % 2 == 0 { i + 1 } else { i - 1 };
                let expect = format!("r{round} {partner}→{i}").into_bytes();
                assert!(
                    got.iter().any(|r| matches!(
                        r,
                        Received::Chat { data, .. } if *data == expect
                    )),
                    "user {i} missing chat from {partner} in round {round}"
                );
                chats_received += 1;
            }
        }

        rounds.push(SwarmRoundStats {
            round,
            latency,
            messages_mixed: report.messages_mixed,
            delivered: report.delivered,
            chats_received,
            msgs_per_sec: report.delivered as f64 / latency.as_secs_f64().max(1e-9),
        });
    }

    SwarmReport {
        rounds,
        bytes_on_wire: deployment.bytes_on_wire(),
        n_users: config.n_users,
    }
}
