//! [`RemoteDeployment`]: the full XRD round protocol against networked
//! daemons, presenting the same [`RoundBackend`] face as the in-process
//! `Deployment` — plus [`launch_local`], which spins a whole deployment
//! up on loopback TCP (one daemon per mix-server hop and per mailbox
//! shard, each on its own port).

use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;

use rand::RngCore;

use xrd_core::backend::{collect_submissions, open_fetched, CoverStore, RoundBackend, RoundError};
use xrd_core::deployment::{DeploymentConfig, FetchResults, RoundReport};
use xrd_core::mailbox::shard_of;
use xrd_core::user::User;
use xrd_mixnet::chain_keys::{generate_chain_keys, rotate_inner_keys, ChainPublicKeys};
use xrd_mixnet::client::Submission;
use xrd_mixnet::message::MailboxMessage;
use xrd_mixnet::{verify_hops_batched_multi, ChainAudit, ChainRoundOutcome, HopRecord};
use xrd_topology::{Beacon, Topology};

use crate::codec::{error_code, Frame, MAX_BATCH};
use crate::conn::{Conn, ConnTimeouts, NetError};
use crate::coordinator::{request_retry, ChainClient, MixPhase, PendingChainRound, RetryPolicy};
use crate::daemon::{DaemonHandle, MailboxDaemon, MixServerDaemon};
use crate::faults::{FaultPlan, FaultProxy};
use crate::swarm::reactor as client_reactor;

/// A chain's result from a scoped parallel phase: the outer `String`
/// is a panicked worker thread, the inner `Result` the chain's own
/// transport outcome.
type ChainPhase<T> = Result<Result<T, NetError>, String>;

/// Round-progress metric handles, resolved once per process.
fn round_metrics() -> &'static RoundMetrics {
    static METRICS: std::sync::OnceLock<RoundMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| RoundMetrics {
        degraded: xrd_obs::counter("round.degraded"),
        chain_failures: xrd_obs::counter("round.chain_failures"),
    })
}

struct RoundMetrics {
    /// Rounds that completed without one or more chains.
    degraded: &'static xrd_obs::Counter,
    /// Individual chain failures across all rounds.
    chain_failures: &'static xrd_obs::Counter,
}

/// A deployment whose chains and mailboxes live behind TCP endpoints.
pub struct RemoteDeployment {
    topo: Topology,
    chains: Vec<ChainClient>,
    /// Daemon addresses per chain (hop order) — what submitting clients
    /// connect to.
    chain_addrs: Vec<Vec<SocketAddr>>,
    mailbox_addrs: Vec<SocketAddr>,
    /// Coordinator-side connections to the mailbox daemons (delivery +
    /// fetching).
    mailbox_conns: Vec<Conn>,
    round: u64,
    current_keys: Vec<ChainPublicKeys>,
    next_keys: Vec<ChainPublicKeys>,
    cover_store: CoverStore,
    /// Concurrent submitter connections during the submission window.
    submit_workers: usize,
    /// Raw submissions injected for the next round (attack testing).
    injected: Vec<(xrd_topology::ChainId, Submission)>,
    /// Chains whose key schedule fell out of sync after a failed
    /// rotation: excluded from every subsequent round.
    dead: Vec<bool>,
    /// Retry policy for mailbox exchanges (delivery batches, fetch
    /// pages, acks) — all idempotent on the daemon side.
    retry: RetryPolicy,
    /// Per-connection deadlines, shared by the blocking coordinator
    /// conns and (as connect/idle ceilings) the client reactor.
    timeouts: ConnTimeouts,
    /// Largest page a fetch asks a shard for.
    fetch_page_max: u32,
    /// Drive client-side exchanges (submissions, mailbox fetches) from
    /// the single-threaded client reactor instead of blocking worker
    /// threads.
    reactor_clients: bool,
}

impl RemoteDeployment {
    /// Connect to a running deployment: `chain_addrs[c]` are chain `c`'s
    /// daemons in hop order with active bundle `chain_keys[c]`;
    /// `mailbox_addrs[s]` is shard `s`.  Prepares the round-1 inner-key
    /// rotation so §5.3.3 covers can be sealed immediately.
    pub fn connect(
        topo: Topology,
        chain_addrs: Vec<Vec<SocketAddr>>,
        chain_keys: Vec<ChainPublicKeys>,
        mailbox_addrs: Vec<SocketAddr>,
    ) -> Result<RemoteDeployment, NetError> {
        RemoteDeployment::connect_with(
            topo,
            chain_addrs,
            chain_keys,
            mailbox_addrs,
            ConnTimeouts::default(),
            RetryPolicy::default(),
        )
    }

    /// [`RemoteDeployment::connect`] with explicit per-connection
    /// deadlines and retry policy, applied to every coordinator
    /// connection (chain daemons and mailbox shards alike).  Chaos
    /// tests and latency-sensitive deployments shrink the deadlines so
    /// a stalled daemon is detected in milliseconds rather than the
    /// defaults' minutes.
    pub fn connect_with(
        topo: Topology,
        chain_addrs: Vec<Vec<SocketAddr>>,
        chain_keys: Vec<ChainPublicKeys>,
        mailbox_addrs: Vec<SocketAddr>,
        timeouts: ConnTimeouts,
        retry: RetryPolicy,
    ) -> Result<RemoteDeployment, NetError> {
        assert_eq!(chain_addrs.len(), topo.n_chains());
        assert_eq!(chain_keys.len(), topo.n_chains());
        let n_chains = topo.n_chains();
        let mut chains = Vec::with_capacity(chain_addrs.len());
        for (addrs, keys) in chain_addrs.iter().zip(chain_keys.iter()) {
            assert!(keys.verify(), "chain bundle must verify");
            chains.push(ChainClient::connect_with(
                addrs,
                keys.clone(),
                timeouts,
                retry,
            )?);
        }
        let mailbox_conns = mailbox_addrs
            .iter()
            .map(|&a| Conn::connect_with(a, timeouts))
            .collect::<Result<Vec<_>, _>>()?;

        let mut deployment = RemoteDeployment {
            topo,
            chains,
            chain_addrs,
            mailbox_addrs,
            mailbox_conns,
            round: 0,
            current_keys: chain_keys,
            next_keys: Vec::new(),
            cover_store: CoverStore::new(),
            // Since the daemons went event-driven, connections cost the
            // server nothing but a buffer: worker count is purely a
            // client-side CPU knob (sealed frames per second), so scale
            // it with the client's cores.
            submit_workers: std::thread::available_parallelism()
                .map(|n| (2 * n.get()).min(16))
                .unwrap_or(4),
            injected: Vec::new(),
            dead: vec![false; n_chains],
            retry,
            timeouts,
            fetch_page_max: 256,
            reactor_clients: true,
        };
        // Pre-publish round-1 inner keys (§5.3.3: covers for ρ+1 are
        // sealed while ρ runs).
        deployment.next_keys = deployment
            .chains
            .iter_mut()
            .map(|c| c.prepare_rotation(1))
            .collect::<Result<_, _>>()?;
        Ok(deployment)
    }

    /// The deployment's topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The public key bundles of all chains for the current round.
    pub fn chain_keys(&self) -> &[ChainPublicKeys] {
        &self.current_keys
    }

    /// The pre-published bundles for the next round.
    pub fn next_chain_keys(&self) -> &[ChainPublicKeys] {
        &self.next_keys
    }

    /// Daemon addresses per chain, hop order (for external submitters).
    pub fn chain_addrs(&self) -> &[Vec<SocketAddr>] {
        &self.chain_addrs
    }

    /// Mailbox shard addresses (for external fetchers).
    pub fn mailbox_addrs(&self) -> &[SocketAddr] {
        &self.mailbox_addrs
    }

    /// Total bytes exchanged with all daemons so far.
    pub fn bytes_on_wire(&self) -> u64 {
        let chain_bytes: u64 = self.chains.iter().map(|c| c.bytes_on_wire()).sum();
        let mailbox_bytes: u64 = self
            .mailbox_conns
            .iter()
            .map(|c| c.bytes_sent() + c.bytes_received())
            .sum();
        chain_bytes + mailbox_bytes
    }

    /// Set the number of concurrent submitter connections.  The
    /// event-driven daemons hold thousands of connections each (see
    /// `submit_storm` for the single-daemon probe), so this only trades
    /// client-side threads against submission-window wall clock.  Only
    /// meaningful for the legacy blocking client path
    /// ([`RemoteDeployment::set_reactor_clients`]`(false)`); the
    /// reactor drives every session from one thread regardless.
    pub fn set_submit_workers(&mut self, n: usize) {
        self.submit_workers = n.max(1);
    }

    /// Choose the client-side driver for submissions and mailbox
    /// fetches.  `true` (the default) pumps one state machine per
    /// emulated client connection from a single epoll thread —
    /// [`crate::swarm::reactor`] — which is what lets one process
    /// emulate a 10k–100k-user population.  `false` restores the
    /// blocking drivers: a thread-pool fan-out for submissions and the
    /// pipelined per-shard walk for fetches (the latter is stricter
    /// about desync detection, so fault-injection tests still use it).
    pub fn set_reactor_clients(&mut self, on: bool) {
        self.reactor_clients = on;
    }

    /// Largest page a fetch asks a mailbox shard for (default 256
    /// entries).  Tests shrink it to force multi-page walks; the wire
    /// cost per round is unchanged either way.
    pub fn set_fetch_page_max(&mut self, max: u32) {
        self.fetch_page_max = max.max(1);
    }

    /// Select how every chain ships batches hop to hop (default
    /// [`crate::Transport::Auto`]: stream large batches, ship small
    /// ones whole).
    pub fn set_transport(&mut self, transport: crate::Transport) {
        for chain in &mut self.chains {
            chain.set_transport(transport);
        }
    }

    /// Queue a raw submission for the next round (simulating a user
    /// that does not follow the protocol).  Fault-injection hook for
    /// tests, mirroring `Deployment::inject_submission`.
    #[doc(hidden)]
    pub fn inject_submission(&mut self, chain: xrd_topology::ChainId, submission: Submission) {
        self.injected.push((chain, submission));
    }

    /// Execute one full round over the wire: submission window → k hops
    /// with cross-server verification (and blame) → inner-key reveal →
    /// mailbox delivery → fetch → key rotation.
    ///
    /// A chain that fails — transport trouble its bounded retries could
    /// not heal, a convicted server, a coordinator-side panic — is
    /// *dropped from the round*, recorded in
    /// [`RoundReport::failed_chains`], and the round completes for the
    /// surviving chains (`round.degraded` counter).  Only deployment-
    /// wide trouble is an error: every chain failing at once
    /// ([`RoundError::AllChainsFailed`]) or the shared mailbox layer
    /// failing ([`RoundError::Infrastructure`]).
    pub fn run_round<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        users: &mut [User],
    ) -> Result<(RoundReport, FetchResults), RoundError> {
        let round = self.round;
        let n_chains = self.chains.len();
        // Per-chain failure slots for this round: a `Some` drops the
        // chain from every later phase.
        let mut failed: Vec<Option<String>> = (0..n_chains)
            .map(|c| {
                self.dead[c].then(|| "chain dead since an earlier failed rotation".to_string())
            })
            .collect();

        // Client side: seal ℓ submissions per user (+ covers for ρ+1).
        let mut per_chain = collect_submissions(
            rng,
            &self.topo,
            &self.current_keys,
            &self.next_keys,
            round,
            &mut self.cover_store,
            users,
        );
        for (chain, sub) in self.injected.drain(..) {
            per_chain[chain.0 as usize].push(sub);
        }

        // Submission window: open on every live chain, submit
        // concurrently, then close and run input agreement.
        {
            let _span = xrd_obs::span_timer("round.submit_window", round);
            for (c, chain) in self.chains.iter_mut().enumerate() {
                if failed[c].is_some() {
                    continue;
                }
                if let Err(e) = chain.open_round(round) {
                    failed[c] = Some(format!("opening the window: {e}"));
                }
            }
            if self.reactor_clients {
                self.submit_reactor(round, &per_chain, &mut failed);
            } else {
                self.submit_concurrently(round, &per_chain, &mut failed);
            }
        }

        // Drive every chain's mix in parallel — each chain is an
        // independent set of machines.  The coordinator's own audit is
        // deferred: each chain returns its clean pass's attestations,
        // and all `n_chains × k` hop proofs of the round are folded
        // into ONE batched multiscalar mul below before any chain
        // reveals its inner keys.
        let mut report = RoundReport {
            round,
            ..Default::default()
        };
        let mix_span = xrd_obs::span_timer("round.mix", round);
        let phases: Vec<(usize, ChainPhase<(usize, MixPhase)>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .chains
                .iter_mut()
                .enumerate()
                .filter(|(c, _)| failed[*c].is_none())
                .map(|(c, chain)| {
                    let handle = scope.spawn(move || {
                        let batch = chain.close_and_agree(round)?;
                        let phase = chain.mix_round_deferred(round, &batch)?;
                        Ok((batch.len(), phase))
                    });
                    (c, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(c, h)| {
                    // A panicking coordinator thread fails its
                    // chain, not the process.
                    (
                        c,
                        h.join()
                            .map_err(|_| "chain coordinator thread panicked".to_string()),
                    )
                })
                .collect()
        });

        drop(mix_span);

        // Split final outcomes from audit-pending chains; transport
        // failures and panics drop their chain from the round.
        let mut outcomes: Vec<(usize, ChainRoundOutcome)> = Vec::new();
        let mut pendings: Vec<(usize, PendingChainRound)> = Vec::new();
        for (c, result) in phases {
            match result {
                Ok(Ok((mixed, phase))) => {
                    report.messages_mixed += mixed;
                    match phase {
                        MixPhase::Done(outcome) => outcomes.push((c, outcome)),
                        MixPhase::AwaitingAudit(pending) => pendings.push((c, pending)),
                    }
                }
                Ok(Err(e)) => failed[c] = Some(format!("mix phase: {e}")),
                Err(msg) => failed[c] = Some(msg),
            }
        }

        // The deployment-level audit: every pending chain's hop proofs
        // in a single batched DLEQ verification.
        let audit_ok = {
            let _span = xrd_obs::span_timer("round.audit", round);
            let record_sets: Vec<(usize, Vec<HopRecord>)> = pendings
                .iter()
                .map(|(c, pending)| (*c, pending.records()))
                .collect();
            let audits: Vec<ChainAudit> = record_sets
                .iter()
                .map(|(c, records)| ChainAudit {
                    public: self.chains[*c].public(),
                    round,
                    hops: records,
                })
                .collect();
            verify_hops_batched_multi(&audits)
        };
        // Conclude audited chains in parallel again (reveal RTTs +
        // envelope opening are per-chain independent; only the audit
        // itself needed the barrier).
        let reveal_span = xrd_obs::span_timer("round.reveal", round);
        let concluded: Vec<(usize, ChainPhase<ChainRoundOutcome>)> = std::thread::scope(|scope| {
            let mut slots: Vec<Option<&mut ChainClient>> =
                self.chains.iter_mut().map(Some).collect();
            let handles: Vec<_> = pendings
                .into_iter()
                .map(|(c, pending)| {
                    let chain = slots[c].take().expect("one pending per chain");
                    let handle =
                        scope.spawn(move || chain.conclude_audited(round, pending, audit_ok));
                    (c, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(c, h)| {
                    (
                        c,
                        h.join()
                            .map_err(|_| "chain conclusion thread panicked".to_string()),
                    )
                })
                .collect()
        });
        drop(reveal_span);
        for (c, result) in concluded {
            match result {
                Ok(Ok(outcome)) => outcomes.push((c, outcome)),
                Ok(Err(e)) => failed[c] = Some(format!("concluding the round: {e}")),
                Err(msg) => failed[c] = Some(msg),
            }
        }

        let mut delivered: Vec<MailboxMessage> = Vec::new();
        for (c, outcome) in outcomes {
            // A chain only counts as aborted if server misbehavior
            // actually cost it the round; a chain that convicted a
            // lying verifier and still delivered merely shrank.
            if !outcome.misbehaving_servers.is_empty() && outcome.delivered.is_empty() {
                report.aborted_chains.push(c as u32);
            }
            if !outcome.malicious_users.is_empty() {
                report
                    .malicious_by_chain
                    .insert(c as u32, outcome.malicious_users.len());
            }
            report.delivered += outcome.delivered.len();
            delivered.extend(outcome.delivered);
        }

        // Fold the dispute/blame verdicts every chain accumulated into
        // the report (chains that later failed still localized liars).
        for (c, chain) in self.chains.iter_mut().enumerate() {
            let (convicted, suspected) = chain.take_round_verdicts();
            if !convicted.is_empty() {
                report
                    .convicted_by_chain
                    .insert(c as u32, convicted.into_iter().map(|p| p as u32).collect());
            }
            if !suspected.is_empty() {
                report
                    .suspected_by_chain
                    .insert(c as u32, suspected.into_iter().map(|p| p as u32).collect());
            }
        }

        // Record this round's chain failures before touching the
        // shared mailbox layer; an entirely failed round is an error,
        // a partially failed one only degrades.
        for (c, failure) in failed.iter().enumerate() {
            if let Some(msg) = failure {
                round_metrics().chain_failures.incr();
                xrd_obs::error!("round {round}: chain {c} failed: {msg}");
                report.failed_chains.push(c as u32);
            }
        }
        if !report.failed_chains.is_empty() {
            round_metrics().degraded.incr();
            if report.failed_chains.len() == n_chains {
                return Err(RoundError::AllChainsFailed { round });
            }
        }

        // Deliver to mailbox shards, one worker thread per shard.  The
        // mailbox layer is shared by every chain, so trouble here is
        // deployment infrastructure failure, not chain degradation.
        let n_shards = self.mailbox_conns.len();
        {
            let _span = xrd_obs::span_timer("round.deliver", round);
            let mut per_shard: Vec<Vec<MailboxMessage>> = vec![Vec::new(); n_shards];
            for msg in delivered {
                per_shard[shard_of(&msg.mailbox, n_shards)].push(msg);
            }
            let retry = self.retry;
            let results: Vec<Result<(), NetError>> = std::thread::scope(|scope| {
                self.mailbox_conns
                    .iter_mut()
                    .zip(per_shard)
                    .map(|(conn, messages)| {
                        scope.spawn(move || deliver_shard(conn, round, messages, retry))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(NetError::Protocol("delivery worker panicked".into()))
                        })
                    })
                    .collect()
            });
            for result in results {
                result.map_err(|e| RoundError::Infrastructure {
                    round,
                    message: format!("mailbox delivery: {e}"),
                })?;
            }
        }

        // Fetch, one worker thread per shard: every online user's
        // mailbox is paged down (and acked once safely read) over that
        // shard's connection, then decryption runs from the prefetched
        // map.
        let fetch_span = xrd_obs::span_timer("round.fetch", round);
        let mut prefetched: Prefetched = if self.reactor_clients {
            self.fetch_reactor(round, users)?
        } else {
            let mut by_shard: Vec<Vec<[u8; 32]>> = vec![Vec::new(); n_shards];
            for user in users.iter().filter(|u| u.online) {
                let mailbox = user.mailbox_id();
                by_shard[shard_of(&mailbox, n_shards)].push(mailbox);
            }
            let retry = self.retry;
            let page_max = self.fetch_page_max;
            let results: Vec<Result<Prefetched, NetError>> = std::thread::scope(|scope| {
                self.mailbox_conns
                    .iter_mut()
                    .zip(by_shard)
                    .map(|(conn, boxes)| {
                        scope.spawn(move || fetch_shard(conn, boxes, page_max, retry))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(NetError::Protocol("fetch worker panicked".into()))
                        })
                    })
                    .collect()
            });
            let mut prefetched: Prefetched = HashMap::new();
            for result in results {
                prefetched.extend(result.map_err(|e| RoundError::Infrastructure {
                    round,
                    message: format!("mailbox fetch: {e}"),
                })?);
            }
            prefetched
        };
        let fetched = open_fetched(&self.topo, round, users, |mailbox| {
            Ok(prefetched.remove(mailbox).unwrap_or_default())
        })?;
        drop(fetch_span);

        // Advance the key schedule: activate ρ+1, pre-publish ρ+2.
        // Rotation is attempted even for chains that failed this round
        // (their daemons may be healthy again); a chain whose rotation
        // fails is out of sync with its daemons and stays dead.
        self.round += 1;
        for (c, chain) in self.chains.iter_mut().enumerate() {
            if self.dead[c] {
                continue;
            }
            let rotated = chain
                .activate_rotation()
                .and_then(|()| chain.prepare_rotation(self.round + 1));
            match rotated {
                Ok(next) => {
                    self.current_keys[c] = chain.public().clone();
                    self.next_keys[c] = next;
                }
                Err(e) => {
                    round_metrics().chain_failures.incr();
                    xrd_obs::error!("round {round}: chain {c} failed to rotate, now dead: {e}");
                    self.dead[c] = true;
                    if !report.failed_chains.contains(&(c as u32)) {
                        report.failed_chains.push(c as u32);
                    }
                }
            }
        }
        if self.dead.iter().all(|&d| d) {
            return Err(RoundError::AllChainsFailed { round });
        }

        Ok((report, fetched))
    }

    /// Submit every sealed submission to every daemon of its chain (the
    /// paper's input-agreement fan-out), spread across
    /// `submit_workers` concurrent client connections.
    ///
    /// A chain whose daemons cannot be reached (after one reconnect
    /// retry per failure) is marked failed in `failed` and its
    /// remaining submissions skipped; a daemon *rejecting* one
    /// submission (bad PoK, quota) skips that submission for that
    /// chain without failing it.
    fn submit_concurrently(
        &self,
        round: u64,
        per_chain: &[Vec<Submission>],
        failed: &mut [Option<String>],
    ) {
        let tasks: Vec<(usize, &Submission)> = per_chain
            .iter()
            .enumerate()
            .filter(|(c, _)| failed[*c].is_none())
            .flat_map(|(c, subs)| subs.iter().map(move |s| (c, s)))
            .collect();
        if tasks.is_empty() {
            return;
        }
        let workers = self.submit_workers.min(tasks.len());
        let chunk = tasks.len().div_ceil(workers);
        let chain_addrs = &self.chain_addrs;
        // Workers share the failure slate so one chain going down stops
        // every worker's traffic to it, not just the discoverer's.
        let shared: std::sync::Mutex<&mut [Option<String>]> = std::sync::Mutex::new(failed);

        std::thread::scope(|scope| {
            for chunk_tasks in tasks.chunks(chunk) {
                let shared = &shared;
                scope.spawn(move || {
                    // Each worker keeps one connection per daemon it
                    // talks to (a client device in miniature).
                    let mut conns: HashMap<SocketAddr, Conn> = HashMap::new();
                    'tasks: for &(c, submission) in chunk_tasks {
                        if shared.lock().expect("failure slate poisoned")[c].is_some() {
                            continue;
                        }
                        for &addr in &chain_addrs[c] {
                            let frame = Frame::Submit {
                                round,
                                submission: submission.clone(),
                            };
                            let mut result = submit_once(&mut conns, addr, &frame);
                            if matches!(&result, Err(e) if e.retryable()) {
                                conns.remove(&addr);
                                result = submit_once(&mut conns, addr, &frame);
                            }
                            match result {
                                Ok(()) => {}
                                Err(NetError::Remote { code, message }) => {
                                    // The daemon rejected this one
                                    // submission; the window stays up.
                                    xrd_obs::debug!(
                                        "round {round}: chain {c} daemon rejected a \
                                         submission ({code}: {message})"
                                    );
                                    continue 'tasks;
                                }
                                Err(e) => {
                                    shared.lock().expect("failure slate poisoned")[c]
                                        .get_or_insert(format!("submission window: {e}"));
                                    continue 'tasks;
                                }
                            }
                        }
                    }
                });
            }
        });
    }

    /// The reactor-driven submission window: one
    /// [`client_reactor::SubmitSession`] per sealed submission, each
    /// fanning out to every daemon of its chain, all pumped
    /// concurrently from a single epoll thread.  Failure semantics
    /// match [`RemoteDeployment::submit_concurrently`]: a daemon
    /// *rejecting* a submission (bad PoK, quota) skips that submission
    /// without failing the chain; transport trouble the session's
    /// bounded retries could not heal fails the chain.
    /// The reactor drive knobs, derived from the deployment's own
    /// deadlines and retry policy so reactor-driven clients fail (and
    /// heal) on the same clock as the blocking coordinator conns: the
    /// connect/read deadlines become the dial and idle ceilings, the
    /// retry budget matches the request policy.  Chaos tests shrink
    /// the deployment's timeouts to milliseconds — a dropped response
    /// must redial immediately, not stall until the reactor's
    /// whole-run deadline.  `fd_limit` is the achieved
    /// `RLIMIT_NOFILE` (what [`client_reactor::raise_nofile_limit`]
    /// returned): the in-flight cap stays under it with headroom for
    /// the coordinator's own connections, so a population larger than
    /// the fd budget drains in waves instead of dying on `EMFILE`.
    fn drive_config_within(&self, fd_limit: u64) -> client_reactor::DriveConfig {
        let headroom = fd_limit.saturating_sub(256).max(64) as usize;
        let defaults = client_reactor::DriveConfig::default();
        client_reactor::DriveConfig {
            max_retries: self.retry.attempts.saturating_sub(1),
            connect_timeout: self.timeouts.connect,
            exchange_timeout: self.timeouts.read,
            max_in_flight: defaults.max_in_flight.min(headroom),
            // A deployment configured for long silent stretches (scale
            // runs on oversubscribed hosts) needs the whole-run cap to
            // sit above its own idle ceiling, or healthy-but-slow runs
            // die on the deadline instead.
            deadline: defaults.deadline.max(self.timeouts.read * 4),
            ..defaults
        }
    }

    fn submit_reactor(
        &self,
        round: u64,
        per_chain: &[Vec<Submission>],
        failed: &mut [Option<String>],
    ) {
        let mut chain_of: Vec<usize> = Vec::new();
        let mut sessions: Vec<client_reactor::SubmitSession> = Vec::new();
        for (c, subs) in per_chain.iter().enumerate() {
            if failed[c].is_some() {
                continue;
            }
            for submission in subs {
                let exchanges: Vec<(SocketAddr, Frame)> = self.chain_addrs[c]
                    .iter()
                    .map(|&addr| {
                        (
                            addr,
                            Frame::Submit {
                                round,
                                submission: submission.clone(),
                            },
                        )
                    })
                    .collect();
                chain_of.push(c);
                sessions.push(client_reactor::SubmitSession::new(exchanges));
            }
        }
        if sessions.is_empty() {
            return;
        }
        let limit = client_reactor::raise_nofile_limit(sessions.len() as u64 + 64);
        match client_reactor::drive_sessions(sessions, &self.drive_config_within(limit)) {
            Ok(outcome) => {
                for (i, e) in outcome.failed {
                    let c = chain_of[i];
                    match e {
                        // The daemon refusing a *malformed* onion is
                        // the protocol working: only injected attack
                        // traffic can trip it (the coordinator seals
                        // real users' onions correctly), and the
                        // round must proceed without the reject.
                        NetError::Remote {
                            code: error_code::REJECTED_SUBMISSION,
                            message,
                        } => {
                            xrd_obs::debug!(
                                "round {round}: chain {c} daemon rejected a \
                                 submission ({message})"
                            );
                        }
                        // Any other rejection of well-formed traffic
                        // (quota, closed window) means the message
                        // definitively did NOT land — swallowing it
                        // would be silent per-user message loss at
                        // fetch time.  An undersized submission
                        // window surfaces as a failed chain instead.
                        e => {
                            failed[c].get_or_insert(format!("submission window: {e}"));
                        }
                    }
                }
            }
            // Only the poller itself failing to come up lands here;
            // without it no chain got any traffic.
            Err(e) => {
                for slot in failed.iter_mut() {
                    slot.get_or_insert(format!("submission reactor: {e}"));
                }
            }
        }
    }

    /// The reactor-driven fetch phase: one
    /// [`client_reactor::FetchSession`] per online user — page down the
    /// mailbox from its owning shard, ack the watermark — all pumped
    /// from a single epoll thread.  The mailbox tier is shared
    /// infrastructure, so any session failing beyond its bounded
    /// retries is a round-level [`RoundError::Infrastructure`].
    fn fetch_reactor(&self, round: u64, users: &[User]) -> Result<Prefetched, RoundError> {
        let n_shards = self.mailbox_addrs.len();
        let sessions: Vec<client_reactor::FetchSession> = users
            .iter()
            .filter(|u| u.online)
            .map(|user| {
                let mailbox = user.mailbox_id();
                let shard = self.mailbox_addrs[shard_of(&mailbox, n_shards)];
                client_reactor::FetchSession::new(shard, mailbox, self.fetch_page_max)
            })
            .collect();
        if sessions.is_empty() {
            return Ok(HashMap::new());
        }
        let limit = client_reactor::raise_nofile_limit(sessions.len() as u64 + 64);
        let outcome = client_reactor::drive_sessions(sessions, &self.drive_config_within(limit))
            .map_err(|e| RoundError::Infrastructure {
                round,
                message: format!("mailbox fetch reactor: {e}"),
            })?;
        if let Some((i, e)) = outcome.failed.into_iter().next() {
            return Err(RoundError::Infrastructure {
                round,
                message: format!("mailbox fetch session {i}: {e}"),
            });
        }
        Ok(outcome
            .sessions
            .into_iter()
            .map(|s| (s.mailbox(), s.into_entries()))
            .collect())
    }
}

/// One submission to one daemon over the worker's cached connection
/// (dialing it first if needed).
fn submit_once(
    conns: &mut HashMap<SocketAddr, Conn>,
    addr: SocketAddr,
    frame: &Frame,
) -> Result<(), NetError> {
    let conn = match conns.entry(addr) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => e.insert(Conn::connect(addr)?),
    };
    conn.request_ok(frame)
}

/// What the shard-parallel fetch phase hands to decryption: each
/// online mailbox's `(delivery_round, sealed)` entries, oldest first.
type Prefetched = HashMap<[u8; 32], Vec<(u64, Vec<u8>)>>;

/// Deliver one shard's messages, in codec-bounded chunks.  Each chunk
/// carries a batch id unique within the round **on this shard's
/// daemon**, so a retry after a lost `Ok` is answered from the dedup
/// window instead of double-storing (which would break the per-user
/// message-count uniformity the protocol relies on).
pub(crate) fn deliver_shard(
    conn: &mut Conn,
    round: u64,
    messages: Vec<MailboxMessage>,
    retry: RetryPolicy,
) -> Result<(), NetError> {
    let mut messages = messages;
    let mut batch = 0u64;
    while !messages.is_empty() {
        let rest = messages.split_off(messages.len().min(MAX_BATCH));
        let frame = Frame::Deliver {
            round,
            batch,
            messages,
        };
        match request_retry(conn, &frame, retry)? {
            Frame::Ok => {}
            other => {
                return Err(NetError::Protocol(format!(
                    "expected Ok to Deliver, got {other:?}"
                )))
            }
        }
        messages = rest;
        batch += 1;
    }
    Ok(())
}

/// Requests a pipelined shard fetch keeps in flight at once.
const FETCH_WINDOW: usize = 64;

/// Why one pipelined pass over a shard connection did not complete.
enum PassError {
    /// The transport failed mid-pass.
    Wire(NetError),
    /// The response stream desynchronized from the request stream (a
    /// dropped or mangled frame on a faulty wire): positional pairing
    /// can no longer be trusted, so the pass's findings are discarded.
    Desync(String),
}

impl PassError {
    fn retryable(&self) -> bool {
        match self {
            PassError::Wire(e) => e.retryable(),
            PassError::Desync(_) => true,
        }
    }

    fn into_net(self) -> NetError {
        match self {
            PassError::Wire(e) => e,
            PassError::Desync(why) => {
                NetError::Protocol(format!("mailbox fetch pipeline desync: {why}"))
            }
        }
    }
}

/// Page down (and then ack) every listed mailbox over one shard
/// connection, **pipelined**: up to [`FETCH_WINDOW`] requests ride the
/// wire before their first response is awaited.  The daemon answers a
/// connection's requests strictly in order (PROTOCOL.md §6), so
/// responses pair up positionally; with the requests batched, both
/// sides coalesce small frames into few syscalls and the per-mailbox
/// round-trip wait disappears — this, not thread count, is what makes
/// the shard-parallel fetch beat the one-request-at-a-time baseline
/// even on a single core.
///
/// Positional pairing is only as good as the wire, so the exchange is
/// two-phase, each phase safe to restart wholesale:
///
/// 1. **Walk** — pipeline every mailbox's cursor walk (each mailbox
///    has at most one request outstanding).  Reads are
///    non-destructive, so a pass that does not finish cleanly — a
///    transport error, a response that doesn't match its request, a
///    missing response — is *discarded in full* and rerun; nothing a
///    desynchronized pairing might have mis-attributed survives.
/// 2. **Ack** — pipeline one `FetchAck` per non-empty mailbox.  All
///    responses are `Ok`, so only the *count* matters: the daemon
///    answers every request it receives, so a count-complete pass
///    proves every ack was applied, and acks are idempotent watermarks
///    so a failed pass is simply resent.
pub(crate) fn fetch_shard(
    conn: &mut Conn,
    boxes: Vec<[u8; 32]>,
    page_max: u32,
    retry: RetryPolicy,
) -> Result<Prefetched, NetError> {
    let mut attempt = 0;
    let walked = loop {
        match fetch_pass(conn, &boxes, page_max) {
            Ok(walked) => break walked,
            Err(e) if e.retryable() && attempt + 1 < retry.attempts => {
                xrd_obs::debug!("mailbox fetch pass retrying: {}", e.into_net());
                attempt += 1;
                retry.sleep(attempt);
                let _ = conn.reconnect();
            }
            Err(e) => return Err(e.into_net()),
        }
    };

    let acks: Vec<([u8; 32], u64)> = walked
        .iter()
        .filter(|(_, entries, _)| !entries.is_empty())
        .map(|(mailbox, _, cursor)| (*mailbox, *cursor))
        .collect();
    let mut attempt = 0;
    while !acks.is_empty() {
        match ack_pass(conn, &acks) {
            Ok(()) => break,
            Err(e) if e.retryable() && attempt + 1 < retry.attempts => {
                xrd_obs::debug!("mailbox ack pass retrying: {}", e.into_net());
                attempt += 1;
                retry.sleep(attempt);
                let _ = conn.reconnect();
            }
            Err(e) => return Err(e.into_net()),
        }
    }

    Ok(walked
        .into_iter()
        .map(|(mailbox, entries, _)| (mailbox, entries))
        .collect())
}

/// One pipelined walk pass: every mailbox paged from cursor 0 to
/// `remaining == 0`.  Returns `(mailbox, entries, end_cursor)` per
/// mailbox, or the reason the whole pass must be discarded.
#[allow(clippy::type_complexity)]
fn fetch_pass(
    conn: &mut Conn,
    boxes: &[[u8; 32]],
    page_max: u32,
) -> Result<Vec<([u8; 32], Vec<(u64, Vec<u8>)>, u64)>, PassError> {
    struct BoxWalk {
        cursor: u64,
        entries: Vec<(u64, Vec<u8>)>,
        done: bool,
    }
    let mut state: Vec<BoxWalk> = boxes
        .iter()
        .map(|_| BoxWalk {
            cursor: 0,
            entries: Vec::new(),
            done: false,
        })
        .collect();

    let mut todo: VecDeque<usize> = (0..boxes.len()).collect();
    let mut inflight: VecDeque<usize> = VecDeque::new();
    loop {
        // Refill the window in batches, one flush per refill.
        if !todo.is_empty() && inflight.len() <= FETCH_WINDOW / 2 {
            while inflight.len() < FETCH_WINDOW {
                let Some(i) = todo.pop_front() else { break };
                conn.send_buffered(&Frame::FetchPage {
                    mailbox: boxes[i],
                    cursor: state[i].cursor,
                    max: page_max,
                })
                .map_err(PassError::Wire)?;
                inflight.push_back(i);
            }
            conn.flush().map_err(PassError::Wire)?;
        }
        let Some(i) = inflight.pop_front() else {
            break;
        };
        match conn.recv().map_err(PassError::Wire)? {
            Frame::MailboxPage {
                sealed,
                next_cursor,
                remaining,
            } => {
                let b = &mut state[i];
                if next_cursor < b.cursor {
                    return Err(PassError::Desync(format!(
                        "cursor went backwards ({} < {})",
                        next_cursor, b.cursor
                    )));
                }
                b.entries.extend(sealed);
                b.cursor = next_cursor;
                if remaining > 0 {
                    todo.push_back(i);
                } else {
                    b.done = true;
                }
            }
            // Never delivered to: empty from the client's point of view.
            Frame::Error { code, .. } if code == error_code::UNKNOWN_MAILBOX => {
                state[i].done = true;
            }
            Frame::Error { code, message } => {
                return Err(PassError::Wire(NetError::Remote { code, message }));
            }
            other => {
                return Err(PassError::Desync(format!(
                    "expected MailboxPage, got {other:?}"
                )));
            }
        }
    }
    if state.iter().any(|b| !b.done) {
        return Err(PassError::Desync("walk ended with unfinished boxes".into()));
    }
    Ok(boxes
        .iter()
        .zip(state)
        .map(|(mailbox, b)| (*mailbox, b.entries, b.cursor))
        .collect())
}

/// One pipelined ack pass: a `FetchAck` per mailbox, count-verified.
fn ack_pass(conn: &mut Conn, acks: &[([u8; 32], u64)]) -> Result<(), PassError> {
    let mut sent = 0;
    let mut confirmed = 0;
    while confirmed < acks.len() {
        while sent < acks.len() && sent - confirmed < FETCH_WINDOW {
            let (mailbox, upto) = acks[sent];
            conn.send_buffered(&Frame::FetchAck { mailbox, upto })
                .map_err(PassError::Wire)?;
            sent += 1;
        }
        conn.flush().map_err(PassError::Wire)?;
        match conn.recv().map_err(PassError::Wire)? {
            Frame::Ok => confirmed += 1,
            Frame::Error { code, message } => {
                return Err(PassError::Wire(NetError::Remote { code, message }));
            }
            other => {
                return Err(PassError::Desync(format!("expected Ok, got {other:?}")));
            }
        }
    }
    Ok(())
}

/// Fetch one mailbox completely: follow `next_cursor` until the shard
/// reports nothing remaining, then ack everything read.  A mailbox the
/// shard has never heard of is simply empty from the client's point of
/// view (first round, or a user whose partners all went silent).
///
/// The ack goes out only after every page has safely arrived, so a
/// client (or connection) dying mid-walk re-reads from its previous
/// watermark next round instead of losing mail — at-least-once, with
/// redelivery across failures.
pub(crate) fn fetch_mailbox(
    conn: &mut Conn,
    mailbox: &[u8; 32],
    page_max: u32,
    retry: RetryPolicy,
) -> Result<Vec<(u64, Vec<u8>)>, NetError> {
    let mut out = Vec::new();
    let mut cursor = 0u64;
    loop {
        let frame = Frame::FetchPage {
            mailbox: *mailbox,
            cursor,
            max: page_max,
        };
        match request_retry(conn, &frame, retry) {
            Ok(Frame::MailboxPage {
                sealed,
                next_cursor,
                remaining,
            }) => {
                out.extend(sealed);
                cursor = next_cursor;
                if remaining == 0 {
                    break;
                }
            }
            Ok(other) => {
                return Err(NetError::Protocol(format!(
                    "expected MailboxPage, got {other:?}"
                )))
            }
            Err(NetError::Remote { code, .. }) if code == error_code::UNKNOWN_MAILBOX => {
                return Ok(Vec::new());
            }
            Err(e) => return Err(e),
        }
    }
    if !out.is_empty() {
        match request_retry(
            conn,
            &Frame::FetchAck {
                mailbox: *mailbox,
                upto: cursor,
            },
            retry,
        )? {
            Frame::Ok => {}
            other => {
                return Err(NetError::Protocol(format!(
                    "expected Ok to FetchAck, got {other:?}"
                )))
            }
        }
    }
    Ok(out)
}

impl RoundBackend for RemoteDeployment {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn chain_keys(&self) -> &[ChainPublicKeys] {
        &self.current_keys
    }

    fn run_round(
        &mut self,
        rng: &mut dyn RngCore,
        users: &mut [User],
    ) -> Result<(RoundReport, FetchResults), RoundError> {
        RemoteDeployment::run_round(self, rng, users)
    }
}

/// Handles for a deployment launched by [`launch_local`]; dropping it
/// shuts every daemon down.
pub struct LocalCluster {
    /// `mix[c][i]` is hop `i` of chain `c`.
    pub mix: Vec<Vec<DaemonHandle>>,
    /// One handle per mailbox shard.
    pub mailboxes: Vec<DaemonHandle>,
}

impl LocalCluster {
    /// Total daemon count (mix servers + mailbox shards).
    pub fn n_daemons(&self) -> usize {
        self.mix.iter().map(|c| c.len()).sum::<usize>() + self.mailboxes.len()
    }

    /// Stop every daemon.
    pub fn shutdown(&mut self) {
        for chain in &mut self.mix {
            for daemon in chain {
                daemon.shutdown();
            }
        }
        for daemon in &mut self.mailboxes {
            daemon.shutdown();
        }
    }
}

/// Launch a complete deployment on loopback TCP: one daemon per mix
/// hop (`n_chains × k` of them) and one per mailbox shard, each bound
/// to its own OS-assigned port — then connect a [`RemoteDeployment`]
/// to it.
///
/// The topology and key schedule match `Deployment::new` for the same
/// config, so the two backends are directly comparable.
pub fn launch_local<R: RngCore + ?Sized>(
    rng: &mut R,
    config: &DeploymentConfig,
) -> std::io::Result<(LocalCluster, RemoteDeployment)> {
    let spawned = spawn_cluster(rng, config)?;
    let deployment = RemoteDeployment::connect(
        spawned.topo,
        spawned.chain_addrs,
        spawned.chain_keys,
        spawned.mailbox_addrs,
    )
    .map_err(|e| std::io::Error::other(format!("connect failed: {e}")))?;
    Ok((spawned.cluster, deployment))
}

/// Like [`launch_local`], but every mix daemon sits behind its own
/// [`FaultProxy`] running a copy of `plan` (seeds offset per proxy so
/// corrupt-byte choices differ), and the deployment dials the proxies.
/// All coordinator and submission traffic crosses the fault layer;
/// mailbox shards are left unproxied so delivered-mail assertions
/// measure the mix path, not the fetch path.
///
/// Dropping the returned proxies severs the deployment from its
/// daemons — keep them alive alongside the cluster.
pub fn launch_local_faulty<R: RngCore + ?Sized>(
    rng: &mut R,
    config: &DeploymentConfig,
    plan: &FaultPlan,
) -> std::io::Result<(LocalCluster, Vec<FaultProxy>, RemoteDeployment)> {
    launch_local_faulty_with(
        rng,
        config,
        plan,
        ConnTimeouts::default(),
        RetryPolicy::default(),
    )
}

/// [`launch_local_faulty`] with explicit coordinator deadlines and
/// retry policy — chaos tests shrink both so injected stalls and drops
/// are detected in milliseconds.
pub fn launch_local_faulty_with<R: RngCore + ?Sized>(
    rng: &mut R,
    config: &DeploymentConfig,
    plan: &FaultPlan,
    timeouts: ConnTimeouts,
    retry: RetryPolicy,
) -> std::io::Result<(LocalCluster, Vec<FaultProxy>, RemoteDeployment)> {
    let mut spawned = spawn_cluster(rng, config)?;
    let mut proxies: Vec<FaultProxy> = Vec::new();
    for chain in &mut spawned.chain_addrs {
        for addr in chain.iter_mut() {
            let mut plan = plan.clone();
            plan.seed = plan.seed.wrapping_add(proxies.len() as u64);
            let proxy = FaultProxy::spawn("127.0.0.1:0", *addr, plan)?;
            *addr = proxy.addr();
            proxies.push(proxy);
        }
    }
    let deployment = RemoteDeployment::connect_with(
        spawned.topo,
        spawned.chain_addrs,
        spawned.chain_keys,
        spawned.mailbox_addrs,
        timeouts,
        retry,
    )
    .map_err(|e| std::io::Error::other(format!("connect failed: {e}")))?;
    Ok((spawned.cluster, proxies, deployment))
}

/// Like [`launch_local`], but every **mailbox shard** sits behind its
/// own [`FaultProxy`] running a copy of `plan` (seeds offset per
/// proxy), while mix daemons are dialed directly — the mirror image of
/// [`launch_local_faulty`], for exercising the fetch/delivery path's
/// loss and duplication tolerance in isolation from the mix path.
pub fn launch_local_with_mailbox_faults<R: RngCore + ?Sized>(
    rng: &mut R,
    config: &DeploymentConfig,
    plan: &FaultPlan,
    timeouts: ConnTimeouts,
    retry: RetryPolicy,
) -> std::io::Result<(LocalCluster, Vec<FaultProxy>, RemoteDeployment)> {
    let mut spawned = spawn_cluster(rng, config)?;
    let mut proxies: Vec<FaultProxy> = Vec::new();
    for addr in spawned.mailbox_addrs.iter_mut() {
        let mut plan = plan.clone();
        plan.seed = plan.seed.wrapping_add(proxies.len() as u64);
        let proxy = FaultProxy::spawn("127.0.0.1:0", *addr, plan)?;
        *addr = proxy.addr();
        proxies.push(proxy);
    }
    let deployment = RemoteDeployment::connect_with(
        spawned.topo,
        spawned.chain_addrs,
        spawned.chain_keys,
        spawned.mailbox_addrs,
        timeouts,
        retry,
    )
    .map_err(|e| std::io::Error::other(format!("connect failed: {e}")))?;
    Ok((spawned.cluster, proxies, deployment))
}

/// The daemons of a loopback deployment before anything connects to
/// them: handles plus the addresses/keys a [`RemoteDeployment`] (or a
/// fault-proxy layer) needs.
struct SpawnedCluster {
    topo: Topology,
    cluster: LocalCluster,
    chain_addrs: Vec<Vec<SocketAddr>>,
    chain_keys: Vec<ChainPublicKeys>,
    mailbox_addrs: Vec<SocketAddr>,
}

fn spawn_cluster<R: RngCore + ?Sized>(
    rng: &mut R,
    config: &DeploymentConfig,
) -> std::io::Result<SpawnedCluster> {
    let beacon = Beacon::from_u64(config.seed);
    let k = config
        .chain_len
        .unwrap_or_else(|| xrd_topology::chain_length(config.f, config.n_servers, 64));
    let topo = Topology::build_with(&beacon, 0, config.n_servers, config.n_servers, k, config.f);

    let mut mix = Vec::with_capacity(topo.n_chains());
    let mut chain_addrs = Vec::with_capacity(topo.n_chains());
    let mut chain_keys = Vec::with_capacity(topo.n_chains());
    for c in 0..topo.n_chains() {
        // Long-term keys for epoch `c` (chain identity), inner keys
        // rotated to round 0 — the same schedule as the in-process
        // deployment.
        let (mut secrets, mut public) = generate_chain_keys(rng, k, c as u64);
        rotate_inner_keys(rng, &mut secrets, &mut public, 0);
        // Spawn in reverse hop order so each daemon knows its
        // successor's bound address; the links sit unused until a
        // round runs under [`crate::Transport::Forwarded`].
        let mut daemons = Vec::with_capacity(k);
        let mut addrs = Vec::with_capacity(k);
        let mut successor: Option<SocketAddr> = None;
        for server_secrets in secrets.into_iter().rev() {
            let daemon = MixServerDaemon::spawn_with_successor(
                "127.0.0.1:0",
                server_secrets,
                public.clone(),
                rng.next_u64(),
                successor,
            )?;
            successor = Some(daemon.addr());
            addrs.push(daemon.addr());
            daemons.push(daemon);
        }
        daemons.reverse();
        addrs.reverse();
        mix.push(daemons);
        chain_addrs.push(addrs);
        chain_keys.push(public);
    }

    let mut mailboxes = Vec::with_capacity(config.n_mailbox_shards);
    let mut mailbox_addrs = Vec::with_capacity(config.n_mailbox_shards);
    for shard in 0..config.n_mailbox_shards {
        let daemon = MailboxDaemon::spawn("127.0.0.1:0", shard, config.n_mailbox_shards)?;
        mailbox_addrs.push(daemon.addr());
        mailboxes.push(daemon);
    }

    Ok(SpawnedCluster {
        topo,
        cluster: LocalCluster { mix, mailboxes },
        chain_addrs,
        chain_keys,
        mailbox_addrs,
    })
}
