//! `xrd-netd`: the standalone XRD daemon launcher.
//!
//! Subcommands:
//!
//! * `keygen --chain-len K --epoch E --out-dir DIR` — run the §6.1 key
//!   ceremony for one chain and write `server-<i>.cfg` (secrets +
//!   public bundle; distribute each to its server, keep it secret) —
//!   in a real deployment each server would generate its own keys;
//! * `mix --config FILE [--listen ADDR] [--journal FILE]` — serve one
//!   mix hop, optionally with a durable state journal it resumes from
//!   after a crash;
//! * `byzantine --config FILE --mode MODE [--listen ADDR]` — serve one
//!   *misbehaving* mix hop (`lie-verify`, `equivocate-digest`,
//!   `corrupt-hop`) for adversarial deployments; honest coordinators
//!   are expected to localize and convict it via the dispute path;
//! * `proxy --upstream ADDR [--listen ADDR] [--plan FILE]` — a
//!   fault-injecting relay in front of any daemon, driven by a
//!   [`FaultPlan`] config file (see
//!   `docs/FAULTS.md`); with no plan it forwards faithfully;
//! * `demo [--users N] [--rounds R] [--faults FILE]` — spin a full
//!   loopback deployment (daemons, coordinator, client swarm) in one
//!   process and print round latency/throughput; `--faults` inserts a
//!   fault proxy (running the given plan) in front of every mix
//!   daemon, turning the demo into a chaos run;
//! * `stress [--conns N] [--workers W] [--chain-len K]` — storm one
//!   mix daemon with N concurrent submitter connections (default
//!   1000) and print connect/submit/hop wall clock — the
//!   connection-scalability probe for the event-driven reactor;
//! * `mailbox-storm [--shards S] [--mailboxes M] [--per-box P]
//!   [--offline F] [--page-max N] [--dir DIR] [--seed X]` — drive the
//!   mailbox tier at paper scale (default 100 000 mailboxes across 4
//!   shards): serial vs shard-parallel deliver/paginated-fetch, with an
//!   offline fraction draining a two-round backlog — fails on any lost
//!   or duplicated entry;
//! * `launch --manifest FILE [--users N] [--rounds R] [--transport T]`
//!   — spawn the deployment a manifest describes as real `xrd-netd`
//!   child processes (key ceremony, config files, daemon-to-daemon
//!   `--successor` wiring), drive a client-reactor swarm against it,
//!   print per-round latency/throughput, and shut everything down over
//!   the wire (see `docs/DEPLOYMENT.md`);
//! * `scale [--users N[,N...]] [--rounds R]` — the §8 scaling curve:
//!   for each population size, launch a fresh multi-process deployment
//!   and drive the emulated-user swarm through `R` rounds under the
//!   forwarded transport and again under coordinator-relayed
//!   streaming, emitting one JSON object per size (round latency,
//!   msgs/s, per-phase span timings).  Multiple sizes re-invoke this
//!   binary once per size so each measurement gets a clean process-
//!   global metrics registry;
//! * `stats ADDR` — scrape any running daemon's metrics over the wire
//!   (a `StatsRequest` frame) and print the human-readable dump: frame
//!   counters, hop-phase latency histograms, round span timeline.
//!
//! Daemons print `LISTENING <addr>` once bound, so launchers (and
//! tests) binding port 0 can discover the assigned port.  Error paths
//! log through the leveled `xrd-obs` logger (`XRD_LOG=warn|info|debug`,
//! default `warn`).

use std::io::Write;
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use xrd_core::DeploymentConfig;
use xrd_net::codec::{decode_server_config, encode_server_config};
use xrd_net::{
    launch_local, launch_local_faulty, launch_manifest, mailbox_storm, run_swarm, submit_storm,
    ByzantineMode, FaultPlan, FaultProxy, MailboxDaemon, MailboxStormConfig, Manifest,
    MixServerDaemon, StormConfig, SwarmConfig, Transport,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  xrd-netd keygen --chain-len K [--epoch E] --out-dir DIR\n  \
         xrd-netd mix --config FILE [--listen ADDR] [--successor ADDR] [--journal FILE]\n  \
         xrd-netd byzantine --config FILE --mode lie-verify|equivocate-digest|corrupt-hop \
         [--listen ADDR]\n  \
         xrd-netd proxy --upstream ADDR [--listen ADDR] [--plan FILE]\n  \
         xrd-netd mailbox --shard S --shards N [--listen ADDR] [--dir DIR]\n  \
         xrd-netd mailbox-storm [--shards S] [--mailboxes M] [--per-box P] [--offline F] \
         [--page-max N] [--dir DIR] [--seed X]\n  \
         xrd-netd demo [--servers N] [--chain-len K] [--shards S] [--users U] [--rounds R] \
         [--faults FILE]\n  \
         xrd-netd launch --manifest FILE [--users N] [--rounds R] \
         [--transport forwarded|streamed]\n  \
         xrd-netd scale [--users N[,N...]] [--rounds R] [--servers S] [--chain-len K] \
         [--shards M] [--json FILE]\n  \
         xrd-netd stress [--conns N] [--workers W] [--chain-len K]\n  \
         xrd-netd stats ADDR"
    );
    ExitCode::FAILURE
}

/// Pull `--name value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "keygen" => keygen(rest),
        "mix" => mix(rest),
        "byzantine" => byzantine(rest),
        "proxy" => proxy(rest),
        "mailbox" => mailbox(rest),
        "mailbox-storm" => mailbox_storm_cmd(rest),
        "demo" => demo(rest),
        "launch" => launch(rest),
        "scale" => scale(rest),
        "stress" => stress(rest),
        "stats" => stats(rest),
        _ => usage(),
    }
}

/// Scrape one daemon's metrics over the wire and print the dump.
fn stats(args: &[String]) -> ExitCode {
    let Some(addr) = args.first() else {
        return usage();
    };
    let addr: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            xrd_obs::error!("stats: bad address {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut conn = match xrd_net::Conn::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            xrd_obs::error!("stats: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match conn.request(&xrd_net::codec::Frame::StatsRequest) {
        Ok(xrd_net::codec::Frame::StatsReport { snapshot }) => {
            print!("{}", snapshot.render());
            ExitCode::SUCCESS
        }
        Ok(other) => {
            xrd_obs::error!("stats: {addr} answered {other:?} instead of a StatsReport");
            ExitCode::FAILURE
        }
        Err(e) => {
            xrd_obs::error!("stats: scrape of {addr} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn stress(args: &[String]) -> ExitCode {
    let config = StormConfig {
        n_conns: flag(args, "--conns")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1000),
        workers: flag(args, "--workers")
            .and_then(|v| v.parse().ok())
            .unwrap_or(8),
        chain_len: flag(args, "--chain-len")
            .and_then(|v| v.parse().ok())
            .unwrap_or(3),
    };
    let mut rng = StdRng::seed_from_u64(rand::rngs::OsRng.next_u64());
    println!(
        "stress: {} concurrent submitter connections against one mix daemon \
         ({} client pump threads, k = {})",
        config.n_conns, config.workers, config.chain_len
    );
    let report = match submit_storm(&mut rng, &config) {
        Ok(r) => r,
        Err(e) => {
            xrd_obs::error!("stress: storm failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.accepted != report.n_conns as u64 {
        xrd_obs::error!(
            "stress: only {} of {} submissions accepted",
            report.accepted,
            report.n_conns
        );
        return ExitCode::FAILURE;
    }
    println!(
        "connect {:.1?} | submit {:.1?} ({:.0} verified submissions/s) | hop {:.1?}",
        report.connect_elapsed, report.submit_elapsed, report.submits_per_sec, report.hop_elapsed
    );
    // The same numbers an operator would get from `xrd-netd stats`,
    // scraped over the wire while the storm was still connected.
    let s = &report.stats;
    println!(
        "scrape: {} frames in ({} Submit), {} B in / {} B out, \
         decrypt+blind p95 {}µs, shuffle+prove p95 {}µs",
        s.counter("reactor.frames_in"),
        s.counter("frames.in.Submit"),
        s.counter("reactor.bytes_in"),
        s.counter("reactor.bytes_out"),
        s.hist("hop.decrypt_blind_us").map(|h| h.p95()).unwrap_or(0),
        s.hist("hop.shuffle_prove_us").map(|h| h.p95()).unwrap_or(0),
    );
    ExitCode::SUCCESS
}

fn keygen(args: &[String]) -> ExitCode {
    let Some(k) = flag(args, "--chain-len").and_then(|v| v.parse::<usize>().ok()) else {
        return usage();
    };
    let epoch = flag(args, "--epoch")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    let Some(out_dir) = flag(args, "--out-dir") else {
        return usage();
    };
    let mut rng = StdRng::seed_from_u64(rand::rngs::OsRng.next_u64());
    let (mut secrets, mut public) = xrd_mixnet::generate_chain_keys(&mut rng, k, epoch);
    // Activate round-0 inner keys, exactly as deployments expect.
    xrd_mixnet::chain_keys::rotate_inner_keys(&mut rng, &mut secrets, &mut public, 0);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        xrd_obs::error!("keygen: cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    for s in &secrets {
        let path = format!("{out_dir}/server-{}.cfg", s.position);
        let blob = encode_server_config(s, &public);
        if let Err(e) = std::fs::write(&path, blob) {
            xrd_obs::error!("keygen: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn mix(args: &[String]) -> ExitCode {
    let Some(config_path) = flag(args, "--config") else {
        return usage();
    };
    let listen = flag(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let successor = match flag(args, "--successor") {
        None => None,
        Some(addr) => match addr.parse::<std::net::SocketAddr>() {
            Ok(a) => Some(a),
            Err(e) => {
                xrd_obs::error!("mix: bad successor address {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let blob = match std::fs::read(&config_path) {
        Ok(b) => b,
        Err(e) => {
            xrd_obs::error!("mix: cannot read {config_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (secrets, public) = match decode_server_config(&blob) {
        Ok(v) => v,
        Err(e) => {
            xrd_obs::error!("mix: bad config: {e}");
            return ExitCode::FAILURE;
        }
    };
    let daemon = match flag(args, "--journal") {
        Some(journal) => MixServerDaemon::spawn_with_journal(
            listen.as_str(),
            secrets,
            public,
            rand::rngs::OsRng.next_u64(),
            successor,
            journal,
        ),
        None => MixServerDaemon::spawn_with_successor(
            listen.as_str(),
            secrets,
            public,
            rand::rngs::OsRng.next_u64(),
            successor,
        ),
    };
    let daemon = match daemon {
        Ok(d) => d,
        Err(e) => {
            xrd_obs::error!("mix: cannot listen on {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    announce(daemon.addr());
    park(daemon)
}

/// Serve one deliberately-misbehaving mix hop: the adversary side of
/// the chaos harness.  Same config as `mix`, plus `--mode`.
fn byzantine(args: &[String]) -> ExitCode {
    let Some(config_path) = flag(args, "--config") else {
        return usage();
    };
    let Some(mode) = flag(args, "--mode") else {
        return usage();
    };
    let mode: ByzantineMode = match mode.parse() {
        Ok(m) => m,
        Err(e) => {
            xrd_obs::error!("byzantine: {e}");
            return usage();
        }
    };
    let listen = flag(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let blob = match std::fs::read(&config_path) {
        Ok(b) => b,
        Err(e) => {
            xrd_obs::error!("byzantine: cannot read {config_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (secrets, public) = match decode_server_config(&blob) {
        Ok(v) => v,
        Err(e) => {
            xrd_obs::error!("byzantine: bad config: {e}");
            return ExitCode::FAILURE;
        }
    };
    let daemon = match MixServerDaemon::spawn_byzantine(
        listen.as_str(),
        secrets,
        public,
        rand::rngs::OsRng.next_u64(),
        mode,
    ) {
        Ok(d) => d,
        Err(e) => {
            xrd_obs::error!("byzantine: cannot listen on {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    announce(daemon.addr());
    park(daemon)
}

/// Relay all traffic for one daemon through a fault-injection plan.
fn proxy(args: &[String]) -> ExitCode {
    let Some(upstream) = flag(args, "--upstream") else {
        return usage();
    };
    let upstream: std::net::SocketAddr = match upstream.parse() {
        Ok(a) => a,
        Err(e) => {
            xrd_obs::error!("proxy: bad upstream address {upstream}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listen = flag(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let plan = match flag(args, "--plan") {
        None => FaultPlan::new(0),
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    xrd_obs::error!("proxy: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match FaultPlan::parse(&text) {
                Ok(p) => p,
                Err(e) => {
                    xrd_obs::error!("proxy: bad plan in {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let n_rules = plan.rules.len();
    let proxy = match FaultProxy::spawn(listen.as_str(), upstream, plan) {
        Ok(p) => p,
        Err(e) => {
            xrd_obs::error!("proxy: cannot listen on {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    announce(proxy.addr());
    println!("proxying to {upstream} under {n_rules} fault rule(s)");
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn mailbox(args: &[String]) -> ExitCode {
    let Some(shard) = flag(args, "--shard").and_then(|v| v.parse::<usize>().ok()) else {
        return usage();
    };
    let Some(shards) = flag(args, "--shards").and_then(|v| v.parse::<usize>().ok()) else {
        return usage();
    };
    let listen = flag(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let daemon = match flag(args, "--dir") {
        Some(dir) => MailboxDaemon::spawn_persistent(
            listen.as_str(),
            shard,
            shards,
            std::path::PathBuf::from(dir),
            xrd_core::mailbox::LogStoreConfig::default(),
        ),
        None => MailboxDaemon::spawn(listen.as_str(), shard, shards),
    };
    let daemon = match daemon {
        Ok(d) => d,
        Err(e) => {
            xrd_obs::error!("mailbox: cannot listen on {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    announce(daemon.addr());
    park(daemon)
}

fn mailbox_storm_cmd(args: &[String]) -> ExitCode {
    let config = MailboxStormConfig {
        shards: flag(args, "--shards")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4),
        mailboxes: flag(args, "--mailboxes")
            .and_then(|v| v.parse().ok())
            .unwrap_or(100_000),
        per_box: flag(args, "--per-box")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1),
        offline_fraction: flag(args, "--offline")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.1),
        page_max: flag(args, "--page-max")
            .and_then(|v| v.parse().ok())
            .unwrap_or(256),
        persist_dir: flag(args, "--dir").map(std::path::PathBuf::from),
        seed: flag(args, "--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(7),
    };
    let mut rng = StdRng::seed_from_u64(rand::rngs::OsRng.next_u64());
    println!(
        "mailbox-storm: {} mailboxes × {} msg/round across {} shard{} \
         ({:.0}% offline round 0{})",
        config.mailboxes,
        config.per_box,
        config.shards,
        if config.shards == 1 { "" } else { "s" },
        config.offline_fraction * 100.0,
        if config.persist_dir.is_some() {
            ", persistent store"
        } else {
            ""
        },
    );
    let report = match mailbox_storm(&mut rng, &config) {
        Ok(r) => r,
        Err(e) => {
            xrd_obs::error!("mailbox-storm: failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if report.lost != 0 || report.duplicated != 0 {
        xrd_obs::error!(
            "mailbox-storm: accounting broken — {} lost, {} duplicated",
            report.lost,
            report.duplicated
        );
        return ExitCode::FAILURE;
    }
    println!(
        "deliver: serial {:.1?} | parallel {:.1?} ({:.2}x)",
        report.deliver_serial,
        report.deliver_parallel,
        report.deliver_speedup(),
    );
    println!(
        "fetch:   serial {:.1?} ({} entries) | parallel {:.1?} ({} entries, churn backlog \
         included) — {:.2}x per entry",
        report.fetch_serial,
        report.fetched_serial,
        report.fetch_parallel,
        report.fetched_parallel,
        report.fetch_speedup(),
    );
    println!("loss 0 | duplication 0");
    ExitCode::SUCCESS
}

fn announce(addr: std::net::SocketAddr) {
    println!("LISTENING {addr}");
    let _ = std::io::stdout().flush();
}

/// Keep the process alive until the daemon is shut down over the wire.
fn park(mut daemon: xrd_net::DaemonHandle) -> ExitCode {
    daemon.wait();
    ExitCode::SUCCESS
}

fn demo(args: &[String]) -> ExitCode {
    let servers = flag(args, "--servers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(6usize);
    let chain_len = flag(args, "--chain-len")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize);
    let shards = flag(args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2usize);
    let users = flag(args, "--users")
        .and_then(|v| v.parse().ok())
        .unwrap_or(128usize);
    let rounds = flag(args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3u64);
    let faults = match flag(args, "--faults") {
        None => None,
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    xrd_obs::error!("demo: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match FaultPlan::parse(&text) {
                Ok(p) => Some(p),
                Err(e) => {
                    xrd_obs::error!("demo: bad fault plan in {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let mut rng = StdRng::seed_from_u64(7);
    let config = DeploymentConfig {
        n_servers: servers,
        chain_len: Some(chain_len),
        f: 0.2,
        n_mailbox_shards: shards,
        seed: 0,
    };
    let (mut cluster, _proxies, mut deployment) = match &faults {
        None => match launch_local(&mut rng, &config) {
            Ok((cluster, deployment)) => (cluster, Vec::new(), deployment),
            Err(e) => {
                xrd_obs::error!("demo: launch failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        Some(plan) => match launch_local_faulty(&mut rng, &config, plan) {
            Ok(v) => v,
            Err(e) => {
                xrd_obs::error!("demo: launch failed: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    println!(
        "demo: {} daemons up ({} chains × {} hops + {} mailbox shards){}",
        cluster.n_daemons(),
        deployment.topology().n_chains(),
        chain_len,
        shards,
        if faults.is_some() {
            " — every mix daemon behind a fault proxy"
        } else {
            ""
        }
    );
    let report = match run_swarm(
        &mut rng,
        &mut deployment,
        &SwarmConfig {
            n_users: users,
            rounds,
            ..Default::default()
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            xrd_obs::error!("demo: {e}");
            cluster.shutdown();
            return ExitCode::FAILURE;
        }
    };
    for r in &report.rounds {
        println!(
            "round {:>3}: {:>8.1?}  mixed {:>5}  delivered {:>5}  {:>8.0} msg/s",
            r.round, r.latency, r.messages_mixed, r.delivered, r.msgs_per_sec
        );
    }
    println!(
        "mean latency {:.1?}, mean throughput {:.0} msg/s, {:.2} MiB on the wire",
        report.mean_latency(),
        report.mean_throughput(),
        report.bytes_on_wire as f64 / (1024.0 * 1024.0)
    );
    if faults.is_some() {
        // The chaos ledger: injected faults and how the dispute/retry
        // machinery absorbed them (same names as `xrd-netd stats`).
        for name in [
            "fault.injected.drop",
            "fault.injected.corrupt",
            "fault.injected.delay",
            "fault.injected.truncate",
            "fault.injected.reorder",
            "fault.injected.stall",
            "fault.injected.disconnect",
            "chain.mix_retries",
            "chain.reconnects",
            "dispute.opened",
            "dispute.convicted",
            "round.degraded",
            "round.chain_failures",
        ] {
            let n = report.stats.counter(name);
            if n > 0 {
                println!("{name}: {n}");
            }
        }
    }
    // Per-phase hop latency, from the same registry `xrd-netd stats`
    // serves (the demo's daemons all run in this process).
    for name in ["hop.decrypt_blind_us", "hop.shuffle_prove_us"] {
        if let Some(h) = report.stats.hist(name) {
            println!(
                "{name}: n={} mean {}µs p50 {}µs p95 {}µs max {}µs",
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.max
            );
        }
    }
    cluster.shutdown();
    ExitCode::SUCCESS
}

/// Spawn a manifest-described deployment as real child processes and
/// drive a client swarm against it.
fn launch(args: &[String]) -> ExitCode {
    let Some(path) = flag(args, "--manifest") else {
        return usage();
    };
    let users = flag(args, "--users")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256usize);
    let rounds = flag(args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2u64);
    let transport = match flag(args, "--transport").as_deref() {
        None | Some("forwarded") => Transport::Forwarded { chunk: 64 },
        Some("streamed") => Transport::Streamed { chunk: 64 },
        Some(other) => {
            xrd_obs::error!("launch: unknown transport `{other}` (forwarded|streamed)");
            return usage();
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            xrd_obs::error!("launch: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match Manifest::parse(&text) {
        Ok(m) => m,
        Err(e) => {
            xrd_obs::error!("launch: bad manifest {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let netd = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            xrd_obs::error!("launch: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rng = StdRng::seed_from_u64(rand::rngs::OsRng.next_u64());
    let mut cluster = match launch_manifest(&mut rng, &manifest, &netd) {
        Ok(c) => c,
        Err(e) => {
            xrd_obs::error!("launch: spawn failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "launch: {} processes up ({} chains × {} hops + {} mailbox shards)",
        cluster.n_processes(),
        cluster.topology().n_chains(),
        manifest.chain_len,
        manifest.n_shards
    );
    let mut deployment = match cluster.connect() {
        Ok(d) => d,
        Err(e) => {
            xrd_obs::error!("launch: cannot connect coordinator: {e}");
            cluster.shutdown();
            return ExitCode::FAILURE;
        }
    };
    deployment.set_transport(transport);
    let report = match run_swarm(
        &mut rng,
        &mut deployment,
        &SwarmConfig {
            n_users: users,
            rounds,
            ..Default::default()
        },
    ) {
        Ok(r) => r,
        Err(e) => {
            xrd_obs::error!("launch: {e}");
            cluster.shutdown();
            return ExitCode::FAILURE;
        }
    };
    for r in &report.rounds {
        println!(
            "round {:>3}: {:>8.1?}  mixed {:>5}  delivered {:>5}  {:>8.0} msg/s",
            r.round, r.latency, r.messages_mixed, r.delivered, r.msgs_per_sec
        );
    }
    println!(
        "mean latency {:.1?}, mean throughput {:.0} msg/s, {:.2} MiB on the wire",
        report.mean_latency(),
        report.mean_throughput(),
        report.bytes_on_wire as f64 / (1024.0 * 1024.0)
    );
    let killed = cluster.shutdown();
    if killed > 0 {
        xrd_obs::error!("launch: {killed} daemon(s) ignored Shutdown and were killed");
        return ExitCode::FAILURE;
    }
    println!("launch: clean shutdown");
    ExitCode::SUCCESS
}

/// Span durations (ms) of one named round phase, restricted to the
/// given rounds.
fn spans_ms(stats: &xrd_obs::Snapshot, name: &str, rounds: &[u64]) -> Vec<f64> {
    stats
        .spans
        .iter()
        .filter(|s| s.name == name && rounds.contains(&s.round))
        .map(|s| s.dur_us as f64 / 1000.0)
        .collect()
}

fn json_f64s(v: &[f64]) -> String {
    let items: Vec<String> = v.iter().map(|x| format!("{x:.2}")).collect();
    format!("[{}]", items.join(", "))
}

/// One transport pass's measurements as a JSON object.  `stats` is the
/// snapshot to pull phase spans from (the final snapshot covers every
/// pass; the per-report round numbers keep them separable).
fn pass_json(report: &xrd_net::SwarmReport, stats: &xrd_obs::Snapshot) -> String {
    let rounds: Vec<u64> = report.rounds.iter().map(|r| r.round).collect();
    let latency_ms: Vec<f64> = report
        .rounds
        .iter()
        .map(|r| r.latency.as_secs_f64() * 1000.0)
        .collect();
    let msgs: Vec<f64> = report.rounds.iter().map(|r| r.msgs_per_sec).collect();
    format!(
        "{{\"round_ms\": {}, \"msgs_per_sec\": {}, \"submit_ms\": {}, \"mix_ms\": {}, \
         \"deliver_ms\": {}, \"fetch_ms\": {}}}",
        json_f64s(&latency_ms),
        json_f64s(&msgs),
        json_f64s(&spans_ms(stats, "round.submit_window", &rounds)),
        json_f64s(&spans_ms(stats, "round.mix", &rounds)),
        json_f64s(&spans_ms(stats, "round.deliver", &rounds)),
        json_f64s(&spans_ms(stats, "round.fetch", &rounds)),
    )
}

/// The §8 scaling curve: per population size, a fresh multi-process
/// deployment, the swarm under forwarded then streamed transport, one
/// JSON object on stdout.  Multiple sizes run as child invocations so
/// every measurement gets its own process-global metrics registry.
fn scale(args: &[String]) -> ExitCode {
    let users_arg = flag(args, "--users").unwrap_or_else(|| "1000,10000,50000".into());
    let sizes: Vec<usize> = match users_arg
        .split(',')
        .map(|s| s.trim().parse::<usize>())
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(v) if !v.is_empty() => v,
        _ => {
            xrd_obs::error!("scale: bad --users list `{users_arg}`");
            return usage();
        }
    };
    let rounds = flag(args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2u64);
    let servers = flag(args, "--servers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let chain_len = flag(args, "--chain-len")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize);
    let shards = flag(args, "--shards")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2usize);
    let json_path = flag(args, "--json");

    if sizes.len() > 1 {
        // Driver mode: one child process per size, clean registry each.
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                xrd_obs::error!("scale: cannot locate own binary: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut objects = Vec::new();
        for n in sizes {
            eprintln!("scale: measuring {n} users × {rounds} rounds...");
            let out = std::process::Command::new(&exe)
                .arg("scale")
                .arg("--users")
                .arg(n.to_string())
                .arg("--rounds")
                .arg(rounds.to_string())
                .arg("--servers")
                .arg(servers.to_string())
                .arg("--chain-len")
                .arg(chain_len.to_string())
                .arg("--shards")
                .arg(shards.to_string())
                .stderr(std::process::Stdio::inherit())
                .output();
            let out = match out {
                Ok(o) => o,
                Err(e) => {
                    xrd_obs::error!("scale: child for {n} users failed to start: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if !out.status.success() {
                xrd_obs::error!("scale: child for {n} users exited with {}", out.status);
                return ExitCode::FAILURE;
            }
            let stdout = String::from_utf8_lossy(&out.stdout);
            let Some(line) = stdout.lines().find(|l| l.starts_with('{')) else {
                xrd_obs::error!("scale: child for {n} users printed no measurement");
                return ExitCode::FAILURE;
            };
            objects.push(line.to_string());
        }
        let doc = format!("[\n{}\n]", objects.join(",\n"));
        if let Some(path) = &json_path {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                xrd_obs::error!("scale: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("{doc}");
        return ExitCode::SUCCESS;
    }

    // Single size: measure in this process.
    let n_users = sizes[0];
    let manifest = Manifest::single_host(
        "local",
        std::net::IpAddr::from([127, 0, 0, 1]),
        9,
        servers,
        0.2,
        chain_len,
        shards,
        0,
    );
    let netd = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            xrd_obs::error!("scale: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rng = StdRng::seed_from_u64(rand::rngs::OsRng.next_u64());
    let mut cluster = match launch_manifest(&mut rng, &manifest, &netd) {
        Ok(c) => c,
        Err(e) => {
            xrd_obs::error!("scale: spawn failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A mix hop is legitimately silent while it decrypts its whole
    // batch, and with every daemon timesharing this host that stretch
    // grows with the population — size the read ceiling to it.
    let timeouts = xrd_net::ConnTimeouts {
        read: std::cmp::max(
            std::time::Duration::from_secs(60),
            std::time::Duration::from_millis(10) * n_users as u32,
        ),
        write: std::cmp::max(
            std::time::Duration::from_secs(30),
            std::time::Duration::from_millis(5) * n_users as u32,
        ),
        ..xrd_net::ConnTimeouts::default()
    };
    let mut deployment = match cluster.connect_timeouts(timeouts, Default::default()) {
        Ok(d) => d,
        Err(e) => {
            xrd_obs::error!("scale: cannot connect coordinator: {e}");
            cluster.shutdown();
            return ExitCode::FAILURE;
        }
    };
    let config = SwarmConfig {
        n_users,
        rounds,
        conversing_fraction: 0.5,
        submit_workers: 8,
    };
    deployment.set_transport(Transport::Forwarded { chunk: 64 });
    let forwarded = match run_swarm(&mut rng, &mut deployment, &config) {
        Ok(r) => r,
        Err(e) => {
            xrd_obs::error!("scale: forwarded pass failed: {e}");
            cluster.shutdown();
            return ExitCode::FAILURE;
        }
    };
    deployment.set_transport(Transport::Streamed { chunk: 64 });
    let streamed = match run_swarm(&mut rng, &mut deployment, &config) {
        Ok(r) => r,
        Err(e) => {
            xrd_obs::error!("scale: streamed pass failed: {e}");
            cluster.shutdown();
            return ExitCode::FAILURE;
        }
    };
    cluster.shutdown();
    // The final snapshot has both passes' spans; report round numbers
    // keep them separable.
    println!(
        "{{\"users\": {n_users}, \"rounds\": {rounds}, \"servers\": {servers}, \
         \"chain_len\": {chain_len}, \"shards\": {shards}, \
         \"forwarded\": {}, \"streamed\": {}}}",
        pass_json(&forwarded, &streamed.stats),
        pass_json(&streamed, &streamed.stats),
    );
    ExitCode::SUCCESS
}
