//! The round coordinator for one networked mix chain.
//!
//! Drives the chain's `k` daemons through the round state machine over
//! the wire — the networked equivalent of
//! [`ChainRunner::run_round`](xrd_mixnet::ChainRunner::run_round):
//!
//! 1. **submission window** — open the window on every server, let
//!    clients submit (to *all* servers of the chain, per the paper's
//!    input-agreement step), close it, and check that every server
//!    fixed the same canonical batch (digest comparison, §6.3);
//! 2. **k hops** — each server mixes in turn; every *other* server
//!    verifies the hop's aggregate attestation before the pipeline
//!    advances (cross-server proof verification over the wire);
//! 3. **blame** (§6.4, only on decryption failure) — fetch the
//!    accusation, trace reveals upstream server by server, convict the
//!    user or server, and restart the hops with convicted users
//!    removed;
//! 4. **reveal** — collect and verify every server's inner key, then
//!    open the inner envelopes.
//!
//! The coordinator holds no key material beyond the public bundle; in a
//! real deployment this role is played by the servers gossiping among
//! themselves, and any party can replay the coordinator's checks.
//!
//! # Streamed hops
//!
//! Large batches are shipped as *chunk streams* ([`Transport`]): the
//! coordinator cuts the hop-0 batch into `MixBatchChunk`s, and as each
//! hop's output chunks come back it forwards them to the next hop
//! **verbatim** (a one-byte tag rewrite, no re-encode) before the
//! producing hop has finished emitting — the chain becomes a pipeline
//! whose per-hop serial cost is the shuffle + proof, not the whole
//! transfer.  Cross-server attestation checks then move to the end of
//! the chain (they would otherwise re-serialize the pipeline) and ship
//! only the DH-key columns ([`Frame::VerifyHopKeys`]); nothing is
//! revealed or delivered until every hop has verified, so the security
//! outcome is unchanged — inner keys stay sealed unless the whole
//! chain checks out, exactly as in the whole-batch path.

use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::Duration;

use xrd_crypto::nizk::DleqProof;
use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;
use xrd_mixnet::blame::{trace_blame, BlameVerdict};
use xrd_mixnet::chain_keys::{apply_rotation_shares, ChainPublicKeys, RotationShare};
use xrd_mixnet::client::Submission;
use xrd_mixnet::message::{MailboxMessage, MixEntry};
use xrd_mixnet::server::{
    input_digest, open_batch, verify_hop, verify_hop_keys, verify_hops_batched, verify_inner_key,
    HopRecord,
};
use xrd_mixnet::{ChainRoundOutcome, ChainRoundStats};

use crate::codec::{
    dispute_claim, dispute_context, reframe_output_chunk, BatchAssembler, ChunkedBatch, Frame,
    STREAM_CHUNK,
};
use crate::conn::{Conn, ConnTimeouts, NetError};

/// Bounded retry-with-backoff for chain exchanges that fail for
/// *transport* reasons (see [`NetError::retryable`]): the coordinator
/// reconnects and repeats the exchange instead of writing the chain
/// off over one dropped frame.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per exchange (1 = no retry).
    pub attempts: u32,
    /// Backoff before attempt `n+1`: `base_backoff << n`.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// Policy for supervised deployments ([`crate::launcher`] with a
    /// `restart` budget): a refused connection is a daemon being
    /// respawned from its journal, not a dead peer.  More attempts and
    /// a longer base backoff ride out the supervisor's respawn backoff
    /// plus the daemon's recovery and re-announcement.
    pub fn crash_recovery() -> RetryPolicy {
        RetryPolicy {
            attempts: 8,
            base_backoff: Duration::from_millis(50),
        }
    }

    pub(crate) fn sleep(&self, attempt: u32) {
        std::thread::sleep(self.base_backoff * 2u32.saturating_pow(attempt.min(8)));
    }
}

/// Coordinator metric handles, resolved once per process.
fn coord_metrics() -> &'static CoordMetrics {
    static METRICS: std::sync::OnceLock<CoordMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| CoordMetrics {
        disputes_opened: xrd_obs::counter("dispute.opened"),
        disputes_convicted: xrd_obs::counter("dispute.convicted"),
        digest_dissent: xrd_obs::counter("dispute.digest_dissent"),
        mix_retries: xrd_obs::counter("chain.mix_retries"),
        reconnects: xrd_obs::counter("chain.reconnects"),
    })
}

struct CoordMetrics {
    /// Disputes opened over rejected attestations.
    disputes_opened: &'static xrd_obs::Counter,
    /// Disputes that ended in a conviction (either party).
    disputes_convicted: &'static xrd_obs::Counter,
    /// Input-agreement digests that dissented from the majority.
    digest_dissent: &'static xrd_obs::Counter,
    /// Whole mix passes retried after a transport failure.
    mix_retries: &'static xrd_obs::Counter,
    /// Daemon connections re-dialed after a transport failure.
    reconnects: &'static xrd_obs::Counter,
}

/// One request/response exchange with bounded retry: on a retryable
/// failure the connection is re-dialed and the request repeated.
/// Only safe for idempotent requests (every coordinator-side exchange
/// is: window control, digest queries, reveals, rotation shares — and
/// the mailbox exchanges, which are idempotent by construction:
/// batch-deduped delivery, non-destructive paging, watermark acks).
pub(crate) fn request_retry(
    conn: &mut Conn,
    frame: &Frame,
    retry: RetryPolicy,
) -> Result<Frame, NetError> {
    let mut attempt = 0;
    loop {
        match conn.request(frame) {
            Err(e) if e.retryable() && attempt + 1 < retry.attempts => {
                xrd_obs::debug!(
                    "retrying {} to {} after: {e}",
                    Frame::tag_name(frame.tag()).unwrap_or("?"),
                    conn.peer()
                );
                attempt += 1;
                retry.sleep(attempt);
                coord_metrics().reconnects.incr();
                let _ = conn.reconnect();
            }
            other => return other,
        }
    }
}

/// How the coordinator ships batches hop to hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Stream batches of at least [`Transport::AUTO_STREAM_MIN`]
    /// entries, ship smaller ones whole (the default).
    Auto,
    /// Always one monolithic [`Frame::MixBatch`] per hop, with
    /// per-hop cross-server verification — the pre-streaming wire
    /// behavior, kept for small batches and backward compatibility.
    Whole,
    /// Always stream, in chunks of the given entry count (clamped to
    /// ≥ 1; [`STREAM_CHUNK`] is the tuned default).
    Streamed {
        /// Entries per [`Frame::MixBatchChunk`].
        chunk: usize,
    },
    /// Daemon-to-daemon forwarding: the coordinator streams the batch
    /// to hop 0 only, and each hop pushes its output straight to its
    /// successor (configured at daemon spawn, typically from the
    /// deployment manifest).  The coordinator receives one keys-only
    /// [`Frame::HopForwarded`] attestation per intermediate hop and
    /// the final hop's full output stream — intermediate batches never
    /// cross the coordinator's wire at all.  Requires daemons spawned
    /// with successors; a failed pass falls back to
    /// [`Transport::Streamed`] on retry.
    Forwarded {
        /// Entries per [`Frame::MixBatchChunk`] on the hop-0 leg.
        chunk: usize,
    },
}

impl Transport {
    /// Smallest batch [`Transport::Auto`] streams: below two chunks
    /// there is no pipeline to overlap, and the whole-batch path has
    /// one fewer round trip.
    pub const AUTO_STREAM_MIN: usize = 2 * STREAM_CHUNK;
}

/// Coordinator-side handle for one chain: persistent connections to its
/// `k` mix daemons plus the active/pending key bundles.
pub struct ChainClient {
    conns: Vec<Conn>,
    public: ChainPublicKeys,
    pending: Option<ChainPublicKeys>,
    transport: Transport,
    retry: RetryPolicy,
    /// Positions convicted by the dispute/blame machinery since the
    /// last [`ChainClient::take_round_verdicts`].
    convicted: Vec<usize>,
    /// Positions whose input-agreement digest dissented from the
    /// majority since the last [`ChainClient::take_round_verdicts`] —
    /// suspects, not convictions (a dropped `Submit` frame produces
    /// the same divergence as byzantine equivocation).
    suspected: Vec<usize>,
    /// Verifiers convicted of a false verdict: their future rejections
    /// are ignored (the round continues without them).
    excluded: HashSet<usize>,
}

/// Outcome of one gossip dispute: the coordinator's own ground-truth
/// re-check plus the tally of signed witness evidence.
struct DisputeOutcome {
    /// The accused attestation really is invalid (local re-check).
    proof_invalid: bool,
    /// Witnesses whose signed evidence upheld the accusation.
    votes_upheld: u32,
    /// Witnesses that returned verifiable evidence at all.
    votes_cast: u32,
    /// Positions whose *signed* evidence upheld the accusation — a
    /// rejecting verifier is only convicted of a false verdict if it
    /// doubled down here, so a wire-corrupted `VerifyResult` (which an
    /// honest verifier recants under oath) never convicts anyone.
    upholders: Vec<usize>,
}

/// What a hop failure resolved to: retry the mix with the convicted
/// users removed, or abort the chain (a server misbehaved).
enum FailureVerdict {
    Retry,
    Abort,
}

/// Result of the mixing/blame phases when the audit is deferred to the
/// caller ([`ChainClient::mix_round_deferred`]).
pub enum MixPhase {
    /// The chain's outcome is already final (abort or conviction
    /// mid-mix); no attestations to audit, nothing will be revealed.
    Done(ChainRoundOutcome),
    /// A clean pass: the hop attestations await the caller's audit
    /// verdict before [`ChainClient::conclude_audited`] reveals keys.
    AwaitingAudit(PendingChainRound),
}

/// A clean mixing pass whose attestations have not been audited yet:
/// everything [`ChainClient::conclude_audited`] needs to finish the
/// round once the caller has folded this chain's proofs into its
/// (possibly deployment-wide) batched verification.
pub struct PendingChainRound {
    /// Per-hop `(position, inputs, outputs, proof)` of the clean pass.
    hop_audit: Vec<(usize, Vec<MixEntry>, Vec<MixEntry>, DleqProof)>,
    /// The chain's final mixed batch.
    final_entries: Vec<MixEntry>,
    /// Users convicted by blame during earlier (retried) passes.
    malicious_users: Vec<usize>,
    /// Servers convicted so far (empty on a clean pass).
    misbehaving_servers: Vec<usize>,
    /// Round statistics accumulated through the mix phase.
    stats: ChainRoundStats,
}

impl PendingChainRound {
    /// Borrow the clean pass's attestations as [`HopRecord`]s, the
    /// form [`verify_hops_batched_multi`](xrd_mixnet::verify_hops_batched_multi) consumes.
    pub fn records(&self) -> Vec<HopRecord<'_>> {
        self.hop_audit
            .iter()
            .map(|(pos, inputs, outputs, proof)| HopRecord {
                position: *pos,
                inputs,
                outputs,
                proof: *proof,
            })
            .collect()
    }
}

impl ChainClient {
    /// Connect to a chain's daemons (hop order) with its active bundle
    /// and the default deadlines/retry policy.
    pub fn connect(addrs: &[SocketAddr], public: ChainPublicKeys) -> Result<ChainClient, NetError> {
        ChainClient::connect_with(
            addrs,
            public,
            ConnTimeouts::default(),
            RetryPolicy::default(),
        )
    }

    /// Connect with explicit per-connection deadlines and retry policy.
    pub fn connect_with(
        addrs: &[SocketAddr],
        public: ChainPublicKeys,
        timeouts: ConnTimeouts,
        retry: RetryPolicy,
    ) -> Result<ChainClient, NetError> {
        assert_eq!(addrs.len(), public.len(), "one daemon per hop");
        let conns = addrs
            .iter()
            .map(|&a| Conn::connect_with(a, timeouts))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChainClient {
            conns,
            public,
            pending: None,
            transport: Transport::Auto,
            retry,
            convicted: Vec::new(),
            suspected: Vec::new(),
            excluded: HashSet::new(),
        })
    }

    /// Drain the verdicts accumulated since the last call: positions
    /// convicted (dispute or blame) and positions suspected (digest
    /// dissent).  Deployment drivers fold these into the round report.
    pub fn take_round_verdicts(&mut self) -> (Vec<usize>, Vec<usize>) {
        let mut convicted = std::mem::take(&mut self.convicted);
        convicted.sort_unstable();
        convicted.dedup();
        let mut suspected = std::mem::take(&mut self.suspected);
        suspected.sort_unstable();
        suspected.dedup();
        (convicted, suspected)
    }

    /// Re-dial every daemon connection (same peers, same deadlines).
    /// The recovery move after a transport failure mid-pass: streamed
    /// sessions keyed by the old connections die with them and the
    /// pass restarts clean.
    fn reconnect_all(&mut self) -> Result<(), NetError> {
        for conn in &mut self.conns {
            coord_metrics().reconnects.incr();
            conn.reconnect()?;
        }
        Ok(())
    }

    /// Select how this chain ships batches hop to hop (default
    /// [`Transport::Auto`]).
    pub fn set_transport(&mut self, transport: Transport) {
        self.transport = transport;
    }

    /// Chain length `k`.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True if the chain has no servers (never in practice).
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// The active public bundle.
    pub fn public(&self) -> &ChainPublicKeys {
        &self.public
    }

    /// The prepared next-round bundle, if any.
    pub fn pending_public(&self) -> Option<&ChainPublicKeys> {
        self.pending.as_ref()
    }

    /// Total bytes exchanged with this chain's daemons so far.
    pub fn bytes_on_wire(&self) -> u64 {
        self.conns
            .iter()
            .map(|c| c.bytes_sent() + c.bytes_received())
            .sum()
    }

    /// Open the submission window for `round` on every server.
    pub fn open_round(&mut self, round: u64) -> Result<(), NetError> {
        let retry = self.retry;
        for conn in &mut self.conns {
            match request_retry(conn, &Frame::OpenRound { round }, retry)? {
                Frame::Ok => {}
                other => {
                    return Err(NetError::Protocol(format!("expected Ok, got {other:?}")));
                }
            }
        }
        Ok(())
    }

    /// Close the window and run input agreement: every server reports
    /// its canonical-batch digest and the *majority* digest wins.  A
    /// dissenting server is recorded as suspected (equivocation and a
    /// dropped `Submit` frame are indistinguishable from here, so this
    /// never convicts) and announced to the chain as an un-upheld
    /// [`Frame::DisputeVerdict`].  Returns the agreed batch, fetched
    /// from a majority server and re-hashed locally.  Fails only when
    /// no strict majority exists.
    pub fn close_and_agree(&mut self, round: u64) -> Result<Vec<Submission>, NetError> {
        let retry = self.retry;
        let mut digests = Vec::with_capacity(self.conns.len());
        for conn in &mut self.conns {
            match request_retry(conn, &Frame::CloseSubmissions { round }, retry)? {
                Frame::BatchDigest {
                    round: r, digest, ..
                } if r == round => digests.push(digest),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected BatchDigest, got {other:?}"
                    )))
                }
            }
        }
        // Majority digest: the most common value, needing > k/2 votes.
        let majority = digests
            .iter()
            .max_by_key(|d| digests.iter().filter(|e| e == d).count())
            .copied()
            .expect("chain has at least one server");
        let votes = digests.iter().filter(|d| **d == majority).count();
        if votes * 2 <= digests.len() {
            return Err(NetError::Protocol(
                "input agreement failed: no majority batch digest".into(),
            ));
        }
        let dissenters: Vec<usize> = (0..digests.len())
            .filter(|&i| digests[i] != majority)
            .collect();
        for &pos in &dissenters {
            coord_metrics().digest_dissent.incr();
            xrd_obs::info!(
                "round {round}: server {pos} dissented from the majority input digest (suspect)"
            );
            self.suspected.push(pos);
        }
        if !dissenters.is_empty() {
            // Tell the chain who dissented — suspicion, not conviction,
            // so the verdict is announced as not upheld.
            for &pos in &dissenters {
                self.announce_verdict(round, pos, dispute_claim::EQUIVOCATION, false, votes as u32);
            }
        }
        let source = digests
            .iter()
            .position(|d| *d == majority)
            .expect("majority digest came from some server");
        let batch = match request_retry(&mut self.conns[source], &Frame::GetBatch { round }, retry)?
        {
            Frame::SubmissionBatch {
                round: r,
                submissions,
            } if r == round => submissions,
            other => {
                return Err(NetError::Protocol(format!(
                    "expected SubmissionBatch, got {other:?}"
                )))
            }
        };
        // Never trust one server's transcript blindly: re-derive the
        // digest locally and compare against the agreed one.
        let entries: Vec<MixEntry> = batch.iter().map(|s| s.to_entry()).collect();
        if input_digest(&entries) != majority {
            return Err(NetError::Protocol(format!(
                "server {source} returned a batch that does not match the agreed digest"
            )));
        }
        Ok(batch)
    }

    /// Drive the mixing/blame/reveal phases for an agreed batch and
    /// return the outcome (delivered messages still need mailbox
    /// delivery, which is deployment-level).  Ships batches per the
    /// configured [`Transport`].
    ///
    /// The coordinator's own end-of-chain audit runs here as one
    /// batched DLEQ verification over this chain's `k` proofs.  A
    /// deployment driving several chains should use
    /// [`ChainClient::mix_round_deferred`] instead and fold *all*
    /// chains' proofs into a single multiscalar mul
    /// ([`verify_hops_batched_multi`](xrd_mixnet::verify_hops_batched_multi)) before concluding each chain.
    pub fn mix_round(
        &mut self,
        round: u64,
        submissions: &[Submission],
    ) -> Result<ChainRoundOutcome, NetError> {
        match self.mix_round_deferred(round, submissions)? {
            MixPhase::Done(outcome) => Ok(outcome),
            MixPhase::AwaitingAudit(pending) => {
                let ok = verify_hops_batched(&self.public, round, &pending.records());
                self.conclude_audited(round, pending, ok)
            }
        }
    }

    /// The mixing/blame phases only: returns either a final outcome
    /// (the chain aborted or convicted someone mid-mix) or a
    /// [`PendingChainRound`] holding the clean pass's attestations.
    /// The caller audits those — typically across every chain of the
    /// round at once — and then calls
    /// [`ChainClient::conclude_audited`] to reveal and open.
    pub fn mix_round_deferred(
        &mut self,
        round: u64,
        submissions: &[Submission],
    ) -> Result<MixPhase, NetError> {
        let mut attempt = 0;
        let mut transport = self.transport;
        loop {
            let forwarded = matches!(transport, Transport::Forwarded { .. });
            let result = match transport {
                Transport::Whole => self.mix_round_whole(round, submissions),
                Transport::Streamed { chunk } => self.mix_round_streamed(round, submissions, chunk),
                Transport::Forwarded { chunk } => {
                    self.mix_round_forwarded(round, submissions, chunk)
                }
                Transport::Auto => {
                    if submissions.len() >= Transport::AUTO_STREAM_MIN {
                        self.mix_round_streamed(round, submissions, STREAM_CHUNK)
                    } else {
                        self.mix_round_whole(round, submissions)
                    }
                }
            };
            match result {
                // Forwarded-mode failures always downgrade: whatever
                // broke (a dead successor link, a decrypt failure the
                // blame machinery must localize), the relayed pipeline
                // can handle it — per-hop errors reach the coordinator
                // directly there instead of cascading through daemons.
                Err(e) if (e.retryable() || forwarded) && attempt + 1 < self.retry.attempts => {
                    attempt += 1;
                    coord_metrics().mix_retries.incr();
                    if forwarded {
                        transport = Transport::Streamed {
                            chunk: STREAM_CHUNK,
                        };
                        xrd_obs::info!(
                            "round {round}: forwarded mix pass failed ({e}), \
                             falling back to relayed streaming for attempt {}",
                            attempt + 1
                        );
                    } else {
                        xrd_obs::info!(
                            "round {round}: mix pass failed on transport ({e}), \
                             reconnecting for attempt {}",
                            attempt + 1
                        );
                    }
                    self.retry.sleep(attempt);
                    // A fresh pass needs fresh connections: streamed
                    // sessions and in-flight responses on the old ones
                    // are unsalvageable.  A refused re-dial is a
                    // daemon mid-reincarnation under supervision —
                    // burn the remaining retry attempts waiting for it
                    // to come back instead of aborting the pass.
                    while let Err(e) = self.reconnect_all() {
                        attempt += 1;
                        if !e.retryable() || attempt + 1 >= self.retry.attempts {
                            return Err(e);
                        }
                        xrd_obs::info!(
                            "round {round}: re-dial failed ({e}), waiting for \
                             daemon restart (attempt {})",
                            attempt + 1
                        );
                        self.retry.sleep(attempt);
                    }
                }
                other => return other,
            }
        }
    }

    /// [`ChainClient::mix_round`] over monolithic [`Frame::MixBatch`]s
    /// with per-hop cross-server verification — each hop is fully
    /// transferred, fully computed, fully verified before the next
    /// begins.
    fn mix_round_whole(
        &mut self,
        round: u64,
        submissions: &[Submission],
    ) -> Result<MixPhase, NetError> {
        let k = self.conns.len();
        let mut stats = ChainRoundStats::default();
        let mut malicious_users: Vec<usize> = Vec::new();
        let mut misbehaving_servers: Vec<usize> = Vec::new();
        let mut active: Vec<usize> = (0..submissions.len()).collect();

        // Per-hop (inputs, outputs, proof) records of the final clean
        // pass, for the coordinator's own batched end-of-chain audit.
        let mut hop_audit: Vec<(usize, Vec<MixEntry>, Vec<MixEntry>, DleqProof)> = Vec::new();

        // Mixing with blame-retry: repeat until a clean pass (§6.4).
        let final_entries: Vec<MixEntry> = 'retry: loop {
            hop_audit.clear();
            let mut entries: Vec<MixEntry> =
                active.iter().map(|&i| submissions[i].to_entry()).collect();
            for pos in 0..k {
                let _span = xrd_obs::span_timer(format!("coord.hop{pos}"), round);
                let inputs = entries.clone();
                let response = self.conns[pos].request(&Frame::MixBatch {
                    round,
                    entries: entries.clone(),
                })?;
                match response {
                    Frame::HopOutput {
                        round: r,
                        position,
                        outputs,
                        proof,
                    } => {
                        if r != round || position as usize != pos {
                            return Err(NetError::Protocol(
                                "hop output for wrong round/position".into(),
                            ));
                        }
                        stats.proofs_generated += 1;
                        // Every other server verifies the attestation,
                        // concurrently (they are independent machines).
                        // Verifiers already convicted of lying are out.
                        let excluded = self.excluded.clone();
                        let verdicts: Vec<(usize, Result<Frame, NetError>)> =
                            std::thread::scope(|scope| {
                                let handles: Vec<_> = self
                                    .conns
                                    .iter_mut()
                                    .enumerate()
                                    .filter(|(verifier, _)| {
                                        *verifier != pos && !excluded.contains(verifier)
                                    })
                                    .map(|(verifier, conn)| {
                                        let request = Frame::VerifyHop {
                                            round,
                                            position: pos as u32,
                                            inputs: inputs.clone(),
                                            outputs: outputs.clone(),
                                            proof,
                                        };
                                        scope.spawn(move || (verifier, conn.request(&request)))
                                    })
                                    .collect();
                                handles
                                    .into_iter()
                                    .map(|h| h.join().expect("verifier thread panicked"))
                                    .collect()
                            });
                        let mut rejecting: Vec<usize> = Vec::new();
                        for (verifier, verdict) in verdicts {
                            stats.proofs_verified += 1;
                            match verdict? {
                                Frame::VerifyResult { ok: true } => {}
                                Frame::VerifyResult { ok: false } => rejecting.push(verifier),
                                other => {
                                    return Err(NetError::Protocol(format!(
                                        "expected VerifyResult, got {other:?}"
                                    )))
                                }
                            }
                        }
                        if !rejecting.is_empty() {
                            // A rejection over the wire could be a bad
                            // proof *or* a lying verifier.  Instead of
                            // aborting, run the dispute protocol to
                            // convict the right party.
                            let input_dhs: Vec<GroupElement> =
                                inputs.iter().map(|e| e.dh).collect();
                            let output_dhs: Vec<GroupElement> =
                                outputs.iter().map(|e| e.dh).collect();
                            let outcome =
                                self.run_dispute(round, pos, &input_dhs, &output_dhs, &proof);
                            if outcome.proof_invalid {
                                self.announce_verdict(
                                    round,
                                    pos,
                                    dispute_claim::BAD_PROOF,
                                    true,
                                    outcome.votes_upheld,
                                );
                                self.convicted.push(pos);
                                misbehaving_servers.push(pos);
                                return Ok(MixPhase::Done(ChainRoundOutcome {
                                    delivered: Vec::new(),
                                    malicious_users,
                                    misbehaving_servers,
                                    stats,
                                }));
                            }
                            // The proof holds: a rejecting verifier that
                            // *signed* an upholding affidavit committed
                            // perjury — convict and exclude it; one that
                            // recanted under oath is forgiven (its
                            // rejection is attributed to transport).
                            // Either way the hop stands and the round
                            // continues.
                            for verifier in rejecting {
                                if !outcome.upholders.contains(&verifier) {
                                    xrd_obs::info!(
                                        "round {round}: verifier {verifier} rejected hop {pos} \
                                         but did not uphold under oath; no conviction"
                                    );
                                    continue;
                                }
                                if !self.excluded.insert(verifier) {
                                    continue;
                                }
                                xrd_obs::info!(
                                    "round {round}: verifier {verifier} rejected a valid \
                                     attestation for hop {pos}; convicted and excluded"
                                );
                                self.announce_verdict(
                                    round,
                                    verifier,
                                    dispute_claim::FALSE_VERDICT,
                                    true,
                                    outcome.votes_cast - outcome.votes_upheld,
                                );
                                self.convicted.push(verifier);
                                misbehaving_servers.push(verifier);
                            }
                        }
                        hop_audit.push((pos, inputs, outputs.clone(), proof));
                        entries = outputs;
                    }
                    Frame::HopFailure {
                        round: r,
                        position,
                        failed,
                    } => {
                        if r != round || position as usize != pos {
                            return Err(NetError::Protocol(
                                "hop failure for wrong round/position".into(),
                            ));
                        }
                        match self.resolve_hop_failure(
                            round,
                            pos,
                            failed,
                            submissions,
                            &mut active,
                            &mut malicious_users,
                            &mut misbehaving_servers,
                            &mut stats,
                        )? {
                            // A malicious server: halt with nothing
                            // delivered (§6.4).
                            FailureVerdict::Abort => {
                                return Ok(MixPhase::Done(ChainRoundOutcome {
                                    delivered: Vec::new(),
                                    malicious_users,
                                    misbehaving_servers,
                                    stats,
                                }))
                            }
                            FailureVerdict::Retry => continue 'retry,
                        }
                    }
                    other => {
                        return Err(NetError::Protocol(format!(
                            "expected HopOutput/HopFailure, got {other:?}"
                        )))
                    }
                }
            }
            break entries;
        };

        Ok(MixPhase::AwaitingAudit(PendingChainRound {
            hop_audit,
            final_entries,
            malicious_users,
            misbehaving_servers,
            stats,
        }))
    }

    /// [`ChainClient::mix_round`] as a chunked pipeline: hop `i+1`
    /// receives (and starts decrypting) hop `i`'s output chunks while
    /// hop `i` is still emitting later ones.  Output chunks are
    /// forwarded *verbatim* (one-byte tag rewrite) — the relay decodes
    /// each chunk once for its own audit but never re-encodes it.
    /// Cross-server verification runs at end of chain over DH-key
    /// columns only ([`Frame::VerifyHopKeys`]); the reveal still
    /// happens only after every check passes.
    fn mix_round_streamed(
        &mut self,
        round: u64,
        submissions: &[Submission],
        chunk: usize,
    ) -> Result<MixPhase, NetError> {
        let k = self.conns.len();
        let mut stats = ChainRoundStats::default();
        let mut malicious_users: Vec<usize> = Vec::new();
        let mut misbehaving_servers: Vec<usize> = Vec::new();
        let mut active: Vec<usize> = (0..submissions.len()).collect();
        let mut hop_audit: Vec<(usize, Vec<MixEntry>, Vec<MixEntry>, DleqProof)> = Vec::new();

        // Mixing with blame-retry: repeat until a clean pass (§6.4).
        let final_entries: Vec<MixEntry> = 'retry: loop {
            hop_audit.clear();
            let entries: Vec<MixEntry> =
                active.iter().map(|&i| submissions[i].to_entry()).collect();

            // Open the pipeline: hop 0's request stream, encoded once.
            let stream = ChunkedBatch::build(round, &entries, chunk);
            for bytes in stream.frames() {
                self.conns[0].send_encoded(bytes)?;
            }

            // `current` is the batch entering the hop being received.
            let mut current = entries;
            for pos in 0..k {
                // Hop spans overlap under the pipeline: hop `i+1`'s
                // clock starts while `i` is still emitting.  Each span
                // measures receipt of that hop's full output.
                let _span = xrd_obs::span_timer(format!("coord.hop{pos}"), round);
                match self.conns[pos].recv_with_body()? {
                    (
                        Frame::HopOutputStart {
                            round: r,
                            position,
                            total,
                        },
                        _,
                    ) => {
                        if r != round || position as usize != pos {
                            return Err(NetError::Protocol(
                                "hop output for wrong round/position".into(),
                            ));
                        }
                        if total as usize != current.len() {
                            return Err(NetError::Protocol(format!(
                                "hop {pos} answered {total} entries to a {}-entry batch",
                                current.len()
                            )));
                        }
                        // The next hop's stream opens before this one
                        // has delivered a single chunk: the pipeline.
                        if pos + 1 < k {
                            self.conns[pos + 1].send(&Frame::MixBatchStart { round, total })?;
                        }
                        let mut assembler = BatchAssembler::begin(round, total)
                            .map_err(|e| NetError::Protocol(format!("hop {pos}: {e}")))?;
                        let outputs = loop {
                            match self.conns[pos].recv_with_body()? {
                                (Frame::HopOutputChunk { entries }, body) => {
                                    // Forward first — the next hop's
                                    // crypto starts while we digest.
                                    if pos + 1 < k {
                                        let wire = reframe_output_chunk(&body)
                                            .expect("decoded as hop-output chunk");
                                        self.conns[pos + 1].send_encoded(&wire)?;
                                    }
                                    let payload = &body[ChunkedBatch::CHUNK_PAYLOAD_OFFSET - 4..];
                                    assembler.absorb_raw(entries, payload).map_err(|e| {
                                        NetError::Protocol(format!("hop {pos}: {e}"))
                                    })?;
                                }
                                (Frame::HopOutputEnd { digest, proof }, _) => {
                                    let outputs = assembler.finish(digest).map_err(|e| {
                                        NetError::Protocol(format!("hop {pos}: {e}"))
                                    })?;
                                    if pos + 1 < k {
                                        self.conns[pos + 1].send(&Frame::MixBatchEnd { digest })?;
                                    }
                                    stats.proofs_generated += 1;
                                    break (outputs, proof);
                                }
                                (other, _) => {
                                    return Err(NetError::Protocol(format!(
                                        "expected HopOutputChunk/End, got {other:?}"
                                    )))
                                }
                            }
                        };
                        let (outputs, proof) = outputs;
                        let inputs = std::mem::replace(&mut current, outputs);
                        hop_audit.push((pos, inputs, current.clone(), proof));
                    }
                    (
                        Frame::HopFailure {
                            round: r,
                            position,
                            failed,
                        },
                        _,
                    ) => {
                        if r != round || position as usize != pos {
                            return Err(NetError::Protocol(
                                "hop failure for wrong round/position".into(),
                            ));
                        }
                        match self.resolve_hop_failure(
                            round,
                            pos,
                            failed,
                            submissions,
                            &mut active,
                            &mut malicious_users,
                            &mut misbehaving_servers,
                            &mut stats,
                        )? {
                            FailureVerdict::Abort => {
                                return Ok(MixPhase::Done(ChainRoundOutcome {
                                    delivered: Vec::new(),
                                    malicious_users,
                                    misbehaving_servers,
                                    stats,
                                }))
                            }
                            FailureVerdict::Retry => continue 'retry,
                        }
                    }
                    (Frame::Error { code, message }, _) => {
                        return Err(NetError::Remote { code, message })
                    }
                    (other, _) => {
                        return Err(NetError::Protocol(format!(
                            "expected HopOutputStart/HopFailure, got {other:?}"
                        )))
                    }
                }
            }
            break current;
        };

        // End-of-chain cross-server verification, keys only: each
        // hop's attestation frame is encoded once and broadcast to the
        // other k-1 servers, all requests pipelined before any verdict
        // is collected (responses are one byte and cannot clog).
        let _span = xrd_obs::span_timer("coord.verify_chain", round);
        let excluded = self.excluded.clone();
        let mut expected: Vec<(usize, usize)> = Vec::new(); // (verifier, prover)
        for (pos, inputs, outputs, proof) in &hop_audit {
            let wire = Frame::VerifyHopKeys {
                round,
                position: *pos as u32,
                input_dhs: inputs.iter().map(|e| e.dh).collect(),
                output_dhs: outputs.iter().map(|e| e.dh).collect(),
                proof: *proof,
            }
            .encode();
            for (verifier, conn) in self.conns.iter_mut().enumerate() {
                if verifier != *pos && !excluded.contains(&verifier) {
                    conn.send_encoded(&wire)?;
                    expected.push((verifier, *pos));
                }
            }
        }
        let mut rejections: Vec<(usize, usize)> = Vec::new(); // (prover, verifier)
        for (verifier, prover) in expected {
            stats.proofs_verified += 1;
            match self.conns[verifier].recv()? {
                Frame::VerifyResult { ok: true } => {}
                Frame::VerifyResult { ok: false } => rejections.push((prover, verifier)),
                Frame::Error { code, message } => return Err(NetError::Remote { code, message }),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected VerifyResult, got {other:?}"
                    )))
                }
            }
        }
        // Each rejected attestation becomes a dispute rather than an
        // abort: the dispute convicts either the prover (bad proof —
        // chain fails with the offender named) or every verifier that
        // rejected a valid statement (excluded; round continues).
        let mut disputed_provers: Vec<usize> = rejections.iter().map(|&(p, _)| p).collect();
        disputed_provers.sort_unstable();
        disputed_provers.dedup();
        for prover in disputed_provers {
            let (_, inputs, outputs, proof) = &hop_audit[prover];
            let input_dhs: Vec<GroupElement> = inputs.iter().map(|e| e.dh).collect();
            let output_dhs: Vec<GroupElement> = outputs.iter().map(|e| e.dh).collect();
            let proof = *proof;
            let outcome = self.run_dispute(round, prover, &input_dhs, &output_dhs, &proof);
            if outcome.proof_invalid {
                self.announce_verdict(
                    round,
                    prover,
                    dispute_claim::BAD_PROOF,
                    true,
                    outcome.votes_upheld,
                );
                self.convicted.push(prover);
                misbehaving_servers.push(prover);
                return Ok(MixPhase::Done(ChainRoundOutcome {
                    delivered: Vec::new(),
                    malicious_users,
                    misbehaving_servers,
                    stats,
                }));
            }
            for &(_, verifier) in rejections.iter().filter(|&&(p, _)| p == prover) {
                if !outcome.upholders.contains(&verifier) {
                    // Recanted under oath: the rejection is attributed
                    // to transport, not malice.
                    xrd_obs::info!(
                        "round {round}: verifier {verifier} rejected hop {prover} \
                         but did not uphold under oath; no conviction"
                    );
                    continue;
                }
                if !self.excluded.insert(verifier) {
                    continue; // already convicted against another hop
                }
                xrd_obs::info!(
                    "round {round}: verifier {verifier} rejected a valid attestation \
                     for hop {prover}; convicted and excluded"
                );
                self.announce_verdict(
                    round,
                    verifier,
                    dispute_claim::FALSE_VERDICT,
                    true,
                    outcome.votes_cast - outcome.votes_upheld,
                );
                self.convicted.push(verifier);
                misbehaving_servers.push(verifier);
            }
        }

        Ok(MixPhase::AwaitingAudit(PendingChainRound {
            hop_audit,
            final_entries,
            malicious_users,
            misbehaving_servers,
            stats,
        }))
    }

    /// [`ChainClient::mix_round`] with daemon-to-daemon forwarding:
    /// the coordinator streams the agreed batch to hop 0 once, each
    /// hop pushes its output straight to its successor, and only
    /// keys-only [`Frame::HopForwarded`] attestations plus the final
    /// mixed batch come back — intermediate ciphertext batches never
    /// cross the coordinator's wire.
    ///
    /// The chain is audited from DH-key columns alone: the §6.3
    /// statement a hop proves involves only its input/output key
    /// columns against the bundle's blinding bases, never the
    /// ciphertexts, so the attested columns — stitched end to end by
    /// continuity checks against the agreed batch and the final
    /// stream — carry exactly the information every verification
    /// needs.  The coordinator checks each hop locally, broadcasts the
    /// columns for cross-server verification, and reveals inner keys
    /// only after every check passes, the same bar as the relayed
    /// paths.
    ///
    /// Blame needs full batches, so any failure here (a dead
    /// successor link, a decrypt failure cascading up as an error, a
    /// column seam mismatch) surfaces as an error for
    /// [`ChainClient::mix_round_deferred`] to retry over relayed
    /// streaming, where per-hop machinery has everything it needs.
    fn mix_round_forwarded(
        &mut self,
        round: u64,
        submissions: &[Submission],
        chunk: usize,
    ) -> Result<MixPhase, NetError> {
        let k = self.conns.len();
        let mut stats = ChainRoundStats::default();
        let mut misbehaving_servers: Vec<usize> = Vec::new();
        let entries: Vec<MixEntry> = submissions.iter().map(|s| s.to_entry()).collect();

        // Mark the round forwarded on every hop; each daemon records
        // this very connection as the round's report channel.
        for conn in &mut self.conns {
            match conn.request(&Frame::MixForward { round })? {
                Frame::Ok => {}
                Frame::Error { code, message } => return Err(NetError::Remote { code, message }),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected Ok for MixForward, got {other:?}"
                    )))
                }
            }
        }

        // Stream the agreed batch to hop 0 — the only batch transfer
        // the coordinator performs in this mode.
        let stream = ChunkedBatch::build(round, &entries, chunk);
        for bytes in stream.frames() {
            self.conns[0].send_encoded(bytes)?;
        }

        // Collect attestations.  Hops `0..k-1` each deliver one
        // `HopForwarded` on their own connection — hop 0's doubles as
        // the ack that the entire downstream cascade landed, since
        // every hop's forward blocks on its successor's ack.
        let mut columns: Vec<(Vec<GroupElement>, Vec<GroupElement>, DleqProof)> =
            Vec::with_capacity(k);
        for pos in 0..k.saturating_sub(1) {
            let _span = xrd_obs::span_timer(format!("coord.hop{pos}"), round);
            match self.conns[pos].recv()? {
                Frame::HopForwarded {
                    round: r,
                    position,
                    input_dhs,
                    output_dhs,
                    proof,
                } if r == round && position as usize == pos => {
                    if input_dhs.len() != output_dhs.len() {
                        return Err(NetError::Protocol(format!(
                            "hop {pos} attested mismatched column lengths"
                        )));
                    }
                    stats.proofs_generated += 1;
                    columns.push((input_dhs, output_dhs, proof));
                }
                Frame::Error { code, message } => return Err(NetError::Remote { code, message }),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected HopForwarded from hop {pos}, got {other:?}"
                    )))
                }
            }
        }

        // The last hop pushes its full output stream; its End frame
        // carries the chain-final attestation.
        let last = k - 1;
        let final_entries: Vec<MixEntry>;
        let last_proof: DleqProof;
        {
            let _span = xrd_obs::span_timer(format!("coord.hop{last}"), round);
            let total = match self.conns[last].recv()? {
                Frame::HopOutputStart {
                    round: r,
                    position,
                    total,
                } if r == round && position as usize == last => total,
                Frame::Error { code, message } => return Err(NetError::Remote { code, message }),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected HopOutputStart from hop {last}, got {other:?}"
                    )))
                }
            };
            if total as usize != entries.len() {
                return Err(NetError::Protocol(format!(
                    "chain answered {total} entries to a {}-entry batch",
                    entries.len()
                )));
            }
            let mut assembler = BatchAssembler::begin(round, total)
                .map_err(|e| NetError::Protocol(format!("hop {last}: {e}")))?;
            loop {
                match self.conns[last].recv()? {
                    Frame::HopOutputChunk { entries } => {
                        assembler
                            .absorb(entries)
                            .map_err(|e| NetError::Protocol(format!("hop {last}: {e}")))?;
                    }
                    Frame::HopOutputEnd { digest, proof } => {
                        final_entries = assembler
                            .finish(digest)
                            .map_err(|e| NetError::Protocol(format!("hop {last}: {e}")))?;
                        last_proof = proof;
                        break;
                    }
                    Frame::Error { code, message } => {
                        return Err(NetError::Remote { code, message })
                    }
                    other => {
                        return Err(NetError::Protocol(format!(
                            "expected HopOutputChunk/End, got {other:?}"
                        )))
                    }
                }
            }
        }
        stats.proofs_generated += 1;

        // Stitch the columns end to end: hop 0 must have consumed the
        // agreed batch, and every seam must match — a mismatch means
        // some daemon mixed a batch other than the one its predecessor
        // emitted, which column auditing cannot localize; fail the
        // pass and let the relayed retry sort it out.
        let input_col: Vec<GroupElement> = entries.iter().map(|e| e.dh).collect();
        let final_col: Vec<GroupElement> = final_entries.iter().map(|e| e.dh).collect();
        let last_inputs = columns
            .last()
            .map(|(_, outputs, _)| outputs.clone())
            .unwrap_or_else(|| input_col.clone());
        columns.push((last_inputs, final_col, last_proof));
        if columns[0].0 != input_col {
            return Err(NetError::Protocol(
                "hop 0 attested a different batch than the chain agreed on".into(),
            ));
        }
        for pos in 1..k {
            if columns[pos].0 != columns[pos - 1].1 {
                return Err(NetError::Protocol(format!(
                    "column seam mismatch between hops {} and {pos}",
                    pos - 1
                )));
            }
        }

        // The coordinator's own audit, per hop over the key columns.
        // A refuted attestation goes through the dispute protocol so
        // the conviction rests on gossiped, signed evidence.
        let _span = xrd_obs::span_timer("coord.verify_chain", round);
        for (pos, column) in columns.iter().enumerate().take(k) {
            let (input_dhs, output_dhs, proof) = column.clone();
            stats.proofs_verified += 1;
            if !verify_hop_keys(
                &self.public,
                pos,
                round,
                input_dhs.iter(),
                output_dhs.iter(),
                &proof,
            ) {
                let outcome = self.run_dispute(round, pos, &input_dhs, &output_dhs, &proof);
                self.announce_verdict(
                    round,
                    pos,
                    dispute_claim::BAD_PROOF,
                    true,
                    outcome.votes_upheld,
                );
                self.convicted.push(pos);
                misbehaving_servers.push(pos);
                return Ok(MixPhase::Done(ChainRoundOutcome {
                    delivered: Vec::new(),
                    malicious_users: Vec::new(),
                    misbehaving_servers,
                    stats,
                }));
            }
        }

        // Cross-server verification over the same columns, pipelined
        // like the streamed path's end-of-chain audit.
        let excluded = self.excluded.clone();
        let mut expected: Vec<(usize, usize)> = Vec::new(); // (verifier, prover)
        for (pos, (input_dhs, output_dhs, proof)) in columns.iter().enumerate() {
            let wire = Frame::VerifyHopKeys {
                round,
                position: pos as u32,
                input_dhs: input_dhs.clone(),
                output_dhs: output_dhs.clone(),
                proof: *proof,
            }
            .encode();
            for (verifier, conn) in self.conns.iter_mut().enumerate() {
                if verifier != pos && !excluded.contains(&verifier) {
                    conn.send_encoded(&wire)?;
                    expected.push((verifier, pos));
                }
            }
        }
        let mut rejections: Vec<(usize, usize)> = Vec::new(); // (prover, verifier)
        for (verifier, prover) in expected {
            stats.proofs_verified += 1;
            match self.conns[verifier].recv()? {
                Frame::VerifyResult { ok: true } => {}
                Frame::VerifyResult { ok: false } => rejections.push((prover, verifier)),
                Frame::Error { code, message } => return Err(NetError::Remote { code, message }),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected VerifyResult, got {other:?}"
                    )))
                }
            }
        }
        let mut disputed_provers: Vec<usize> = rejections.iter().map(|&(p, _)| p).collect();
        disputed_provers.sort_unstable();
        disputed_provers.dedup();
        for prover in disputed_provers {
            let (input_dhs, output_dhs, proof) = columns[prover].clone();
            let outcome = self.run_dispute(round, prover, &input_dhs, &output_dhs, &proof);
            if outcome.proof_invalid {
                self.announce_verdict(
                    round,
                    prover,
                    dispute_claim::BAD_PROOF,
                    true,
                    outcome.votes_upheld,
                );
                self.convicted.push(prover);
                misbehaving_servers.push(prover);
                return Ok(MixPhase::Done(ChainRoundOutcome {
                    delivered: Vec::new(),
                    malicious_users: Vec::new(),
                    misbehaving_servers,
                    stats,
                }));
            }
            for &(_, verifier) in rejections.iter().filter(|&&(p, _)| p == prover) {
                if !outcome.upholders.contains(&verifier) {
                    xrd_obs::info!(
                        "round {round}: verifier {verifier} rejected hop {prover} \
                         but did not uphold under oath; no conviction"
                    );
                    continue;
                }
                if !self.excluded.insert(verifier) {
                    continue;
                }
                xrd_obs::info!(
                    "round {round}: verifier {verifier} rejected a valid attestation \
                     for hop {prover}; convicted and excluded"
                );
                self.announce_verdict(
                    round,
                    verifier,
                    dispute_claim::FALSE_VERDICT,
                    true,
                    outcome.votes_cast - outcome.votes_upheld,
                );
                self.convicted.push(verifier);
                misbehaving_servers.push(verifier);
            }
        }

        // Audited locally and cross-server: go straight to the reveal
        // (the empty audit record makes `conclude_audited` skip the
        // re-check and reveal immediately).
        let pending = PendingChainRound {
            hop_audit: Vec::new(),
            final_entries,
            malicious_users: Vec::new(),
            misbehaving_servers,
            stats,
        };
        self.conclude_audited(round, pending, true)
            .map(MixPhase::Done)
    }

    /// Resolve one hop's decrypt failures through the blame protocol:
    /// convicted users are removed from `active` (retry), a convicted
    /// server aborts the chain.
    #[allow(clippy::too_many_arguments)]
    fn resolve_hop_failure(
        &mut self,
        round: u64,
        pos: usize,
        failed: Vec<u64>,
        submissions: &[Submission],
        active: &mut Vec<usize>,
        malicious_users: &mut Vec<usize>,
        misbehaving_servers: &mut Vec<usize>,
        stats: &mut ChainRoundStats,
    ) -> Result<FailureVerdict, NetError> {
        stats.blame_rounds += 1;
        let active_subs: Vec<Submission> = active.iter().map(|&i| submissions[i].clone()).collect();
        let mut to_remove = Vec::new();
        for idx in failed {
            match self.run_blame_over_wire(round, pos, idx as usize, &active_subs)? {
                BlameVerdict::MaliciousUser { submission_index } => {
                    to_remove.push(active[submission_index]);
                }
                BlameVerdict::ServerMisbehaved { position } => {
                    misbehaving_servers.push(position);
                    self.convicted.push(position);
                }
            }
        }
        if !misbehaving_servers.is_empty() {
            return Ok(FailureVerdict::Abort);
        }
        if to_remove.is_empty() {
            return Err(NetError::Protocol(
                "blame identified no party for a failed slot".into(),
            ));
        }
        stats.removed_by_blame += to_remove.len();
        for bad in to_remove {
            malicious_users.push(bad);
            active.retain(|&i| i != bad);
        }
        Ok(FailureVerdict::Retry)
    }

    /// Conclude a clean mixing pass after its attestations have been
    /// audited: on a failed audit, re-verify this chain's hops
    /// individually to pin (or clear) an offender; then reveal the
    /// inner keys and open the envelopes.
    ///
    /// `audit_ok` is the verdict of a batched verification that
    /// *included* this chain's records — either this chain alone
    /// ([`ChainClient::mix_round`]) or every chain of the deployment
    /// round folded into one multiscalar mul
    /// ([`verify_hops_batched_multi`](xrd_mixnet::verify_hops_batched_multi)).  A failed combined audit only
    /// proves *some* statement in the batch was bad, so each chain
    /// re-checks its own hops; a chain whose proofs all verify
    /// individually proceeds to the reveal (the offender is in another
    /// chain).
    pub fn conclude_audited(
        &mut self,
        round: u64,
        mut pending: PendingChainRound,
        audit_ok: bool,
    ) -> Result<ChainRoundOutcome, NetError> {
        let k = self.conns.len();

        // The audit (batched, possibly deployment-wide) covered this
        // chain's k statements: count them here, once, whatever the
        // verdict — the per-hop re-checks below localize rather than
        // re-audit (matching the pre-deferred accounting).
        pending.stats.proofs_verified += pending.hop_audit.len();
        let mut audit_convicted: Vec<usize> = Vec::new();
        if !audit_ok {
            for r in &pending.records() {
                if !verify_hop(
                    &self.public,
                    r.position,
                    round,
                    r.inputs,
                    r.outputs,
                    &r.proof,
                ) {
                    audit_convicted.push(r.position);
                }
            }
            // Each locally-refuted attestation is put through the
            // dispute protocol so the conviction rests on gossiped,
            // signed evidence rather than this coordinator's word.
            for &pos in &audit_convicted {
                let (_, inputs, outputs, proof) = &pending.hop_audit[pos];
                let input_dhs: Vec<GroupElement> = inputs.iter().map(|e| e.dh).collect();
                let output_dhs: Vec<GroupElement> = outputs.iter().map(|e| e.dh).collect();
                let proof = *proof;
                let outcome = self.run_dispute(round, pos, &input_dhs, &output_dhs, &proof);
                self.announce_verdict(
                    round,
                    pos,
                    dispute_claim::BAD_PROOF,
                    true,
                    outcome.votes_upheld,
                );
                self.convicted.push(pos);
            }
            pending
                .misbehaving_servers
                .extend(audit_convicted.iter().copied());
        }
        let PendingChainRound {
            hop_audit: _,
            final_entries,
            malicious_users,
            mut misbehaving_servers,
            stats,
        } = pending;
        // Only a *prover* conviction from the failed audit blocks the
        // reveal; verifiers convicted of lying earlier in the pass are
        // already excluded and must not cost the honest users their
        // round.
        if !audit_convicted.is_empty() {
            return Ok(ChainRoundOutcome {
                delivered: Vec::new(),
                malicious_users,
                misbehaving_servers,
                stats,
            });
        }
        // On a failed combined audit with every hop of *this* chain
        // verifying individually, the offender is in another chain:
        // proceed to the reveal.

        // Inner-key reveal + verification, then open the envelopes.
        let _span = xrd_obs::span_timer("coord.reveal", round);
        let retry = self.retry;
        let mut inner_keys: Vec<Scalar> = Vec::with_capacity(k);
        for pos in 0..k {
            match request_retry(
                &mut self.conns[pos],
                &Frame::RevealInnerKey { round },
                retry,
            )? {
                Frame::InnerKeyReveal { position, isk } => {
                    if position as usize != pos || !verify_inner_key(&self.public, pos, &isk) {
                        misbehaving_servers.push(pos);
                        self.convicted.push(pos);
                        return Ok(ChainRoundOutcome {
                            delivered: Vec::new(),
                            malicious_users,
                            misbehaving_servers,
                            stats,
                        });
                    }
                    inner_keys.push(isk);
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected InnerKeyReveal, got {other:?}"
                    )))
                }
            }
        }
        let delivered: Vec<MailboxMessage> = open_batch(&inner_keys, round, &final_entries)
            .into_iter()
            .flatten()
            .collect();

        Ok(ChainRoundOutcome {
            delivered,
            malicious_users,
            misbehaving_servers,
            stats,
        })
    }

    /// Run the gossip dispute protocol over one rejected hop
    /// attestation: broadcast [`Frame::DisputeOpen`] to every server
    /// except the accused, collect their signed
    /// [`Frame::DisputeEvidence`], verify each signature against the
    /// witness's mix public key, and tally.  The coordinator's own
    /// re-check of the statement is the ground truth for the verdict;
    /// the gossiped evidence makes the conviction transferable (any
    /// party can replay the signatures) and is what the chaos harness
    /// asserts on.  Witness transport failures count as abstentions —
    /// a dispute never turns into a round failure.
    fn run_dispute(
        &mut self,
        round: u64,
        accused: usize,
        input_dhs: &[GroupElement],
        output_dhs: &[GroupElement],
        proof: &DleqProof,
    ) -> DisputeOutcome {
        coord_metrics().disputes_opened.incr();
        xrd_obs::info!("round {round}: dispute opened against server {accused}");
        let proof_invalid = !verify_hop_keys(
            &self.public,
            accused,
            round,
            input_dhs.iter(),
            output_dhs.iter(),
            proof,
        );
        let open = Frame::DisputeOpen {
            round,
            accused: accused as u32,
            input_dhs: input_dhs.to_vec(),
            output_dhs: output_dhs.to_vec(),
            proof: *proof,
        };
        let mut votes_upheld = 0;
        let mut votes_cast = 0;
        let mut upholders: Vec<usize> = Vec::new();
        for witness in 0..self.conns.len() {
            if witness == accused || self.excluded.contains(&witness) {
                continue;
            }
            let evidence = match self.conns[witness].request(&open) {
                Ok(Frame::DisputeEvidence {
                    round: r,
                    position,
                    accused: a,
                    upheld,
                    sig,
                }) if r == round && position as usize == witness && a as usize == accused => {
                    Some((upheld, sig))
                }
                Ok(_) => None,
                Err(e) => {
                    xrd_obs::debug!("round {round}: witness {witness} abstained from dispute: {e}");
                    None
                }
            };
            if let Some((upheld, sig)) = evidence {
                let ctx =
                    dispute_context(round, accused as u32, upheld, input_dhs, output_dhs, proof);
                // `mpk_i = bpk_i^msk`: verify over the witness's
                // chained blinding base, not the group generator.
                let mpk = &self.public.mpks[witness];
                if sig.verify(&ctx, &self.public.bpks[witness], mpk) {
                    votes_cast += 1;
                    if upheld {
                        votes_upheld += 1;
                        upholders.push(witness);
                    }
                } else {
                    xrd_obs::debug!(
                        "round {round}: witness {witness} returned an unverifiable \
                         dispute signature; ignoring"
                    );
                }
            }
        }
        DisputeOutcome {
            proof_invalid,
            votes_upheld,
            votes_cast,
            upholders,
        }
    }

    /// Broadcast a [`Frame::DisputeVerdict`] to every server except the
    /// accused.  Best-effort: a server that cannot be told does not
    /// change the verdict.
    fn announce_verdict(
        &mut self,
        round: u64,
        accused: usize,
        claim: u8,
        upheld: bool,
        votes: u32,
    ) {
        if upheld {
            coord_metrics().disputes_convicted.incr();
            xrd_obs::info!(
                "round {round}: server {accused} convicted (claim {claim}, {votes} votes)"
            );
        }
        let verdict = Frame::DisputeVerdict {
            round,
            accused: accused as u32,
            claim,
            upheld,
            votes,
        };
        for (pos, conn) in self.conns.iter_mut().enumerate() {
            if pos != accused {
                let _ = conn.request_ok(&verdict);
            }
        }
    }

    /// The §6.4 trace, with each reveal fetched over the wire.
    fn run_blame_over_wire(
        &mut self,
        round: u64,
        accuser_position: usize,
        input_index: usize,
        active_subs: &[Submission],
    ) -> Result<BlameVerdict, NetError> {
        let accusation = match self.conns[accuser_position].request(&Frame::Accuse {
            round,
            input_index: input_index as u64,
        }) {
            Ok(Frame::Accusation { accusation }) => accusation,
            Ok(other) => {
                return Err(NetError::Protocol(format!(
                    "expected Accusation, got {other:?}"
                )))
            }
            Err(NetError::Remote { .. }) => {
                // Refusing to accuse convicts the accuser.
                return Ok(BlameVerdict::ServerMisbehaved {
                    position: accuser_position,
                });
            }
            Err(e) => return Err(e),
        };
        if accusation.position != accuser_position {
            return Ok(BlameVerdict::ServerMisbehaved {
                position: accuser_position,
            });
        }

        // trace_blame's fetcher cannot return wire errors, so capture
        // them on the side and rethrow after.
        let mut wire_error: Option<NetError> = None;
        let conns = &mut self.conns;
        let verdict = trace_blame(
            &self.public,
            active_subs,
            round,
            &accusation,
            |position, output_index| {
                if wire_error.is_some() {
                    return None;
                }
                match conns[position].request(&Frame::RevealSlot {
                    round,
                    output_index: output_index as u64,
                }) {
                    Ok(Frame::SlotReveal { reveal }) => reveal.map(|r| *r),
                    Ok(_) | Err(NetError::Remote { .. }) => None, // convicts the server
                    Err(e) => {
                        wire_error = Some(e);
                        None
                    }
                }
            },
        );
        match wire_error {
            Some(e) => Err(e),
            None => Ok(verdict),
        }
    }

    /// Prepare the inner-key rotation for `inner_epoch`: every server
    /// generates a fresh key and the assembled, verified bundle becomes
    /// this chain's pending bundle (what covers are sealed against).
    pub fn prepare_rotation(&mut self, inner_epoch: u64) -> Result<ChainPublicKeys, NetError> {
        let retry = self.retry;
        let mut shares: Vec<RotationShare> = Vec::with_capacity(self.conns.len());
        for (pos, conn) in self.conns.iter_mut().enumerate() {
            match request_retry(conn, &Frame::PrepareRotation { inner_epoch }, retry)? {
                Frame::RotationShare {
                    inner_epoch: e,
                    share,
                } if e == inner_epoch && share.position == pos => shares.push(share),
                other => {
                    return Err(NetError::Protocol(format!(
                        "bad rotation share from position {pos}: {other:?}"
                    )))
                }
            }
        }
        let mut next = self.public.clone();
        if !apply_rotation_shares(&mut next, inner_epoch, &shares) {
            return Err(NetError::Protocol(
                "rotation shares failed verification".into(),
            ));
        }
        self.pending = Some(next.clone());
        Ok(next)
    }

    /// Activate the pending rotation on every server and switch the
    /// coordinator's active bundle.
    pub fn activate_rotation(&mut self) -> Result<(), NetError> {
        let retry = self.retry;
        let next = self.pending.take().ok_or_else(|| {
            NetError::Protocol("activate_rotation without prepare_rotation".into())
        })?;
        for conn in &mut self.conns {
            match request_retry(conn, &Frame::ActivateRotation { keys: next.clone() }, retry)? {
                Frame::Ok => {}
                other => {
                    return Err(NetError::Protocol(format!("expected Ok, got {other:?}")));
                }
            }
        }
        self.public = next;
        Ok(())
    }
}
