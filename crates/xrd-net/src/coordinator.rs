//! The round coordinator for one networked mix chain.
//!
//! Drives the chain's `k` daemons through the round state machine over
//! the wire — the networked equivalent of
//! [`ChainRunner::run_round`](xrd_mixnet::ChainRunner::run_round):
//!
//! 1. **submission window** — open the window on every server, let
//!    clients submit (to *all* servers of the chain, per the paper's
//!    input-agreement step), close it, and check that every server
//!    fixed the same canonical batch (digest comparison, §6.3);
//! 2. **k hops** — each server mixes in turn; every *other* server
//!    verifies the hop's aggregate attestation before the pipeline
//!    advances (cross-server proof verification over the wire);
//! 3. **blame** (§6.4, only on decryption failure) — fetch the
//!    accusation, trace reveals upstream server by server, convict the
//!    user or server, and restart the hops with convicted users
//!    removed;
//! 4. **reveal** — collect and verify every server's inner key, then
//!    open the inner envelopes.
//!
//! The coordinator holds no key material beyond the public bundle; in a
//! real deployment this role is played by the servers gossiping among
//! themselves, and any party can replay the coordinator's checks.
//!
//! # Streamed hops
//!
//! Large batches are shipped as *chunk streams* ([`Transport`]): the
//! coordinator cuts the hop-0 batch into `MixBatchChunk`s, and as each
//! hop's output chunks come back it forwards them to the next hop
//! **verbatim** (a one-byte tag rewrite, no re-encode) before the
//! producing hop has finished emitting — the chain becomes a pipeline
//! whose per-hop serial cost is the shuffle + proof, not the whole
//! transfer.  Cross-server attestation checks then move to the end of
//! the chain (they would otherwise re-serialize the pipeline) and ship
//! only the DH-key columns ([`Frame::VerifyHopKeys`]); nothing is
//! revealed or delivered until every hop has verified, so the security
//! outcome is unchanged — inner keys stay sealed unless the whole
//! chain checks out, exactly as in the whole-batch path.

use std::net::SocketAddr;

use xrd_crypto::nizk::DleqProof;
use xrd_crypto::scalar::Scalar;
use xrd_mixnet::blame::{trace_blame, BlameVerdict};
use xrd_mixnet::chain_keys::{apply_rotation_shares, ChainPublicKeys, RotationShare};
use xrd_mixnet::client::Submission;
use xrd_mixnet::message::{MailboxMessage, MixEntry};
use xrd_mixnet::server::{
    input_digest, open_batch, verify_hop, verify_hops_batched, verify_inner_key, HopRecord,
};
use xrd_mixnet::{ChainRoundOutcome, ChainRoundStats};

use crate::codec::{reframe_output_chunk, BatchAssembler, ChunkedBatch, Frame, STREAM_CHUNK};
use crate::conn::{Conn, NetError};

/// How the coordinator ships batches hop to hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Stream batches of at least [`Transport::AUTO_STREAM_MIN`]
    /// entries, ship smaller ones whole (the default).
    Auto,
    /// Always one monolithic [`Frame::MixBatch`] per hop, with
    /// per-hop cross-server verification — the pre-streaming wire
    /// behavior, kept for small batches and backward compatibility.
    Whole,
    /// Always stream, in chunks of the given entry count (clamped to
    /// ≥ 1; [`STREAM_CHUNK`] is the tuned default).
    Streamed {
        /// Entries per [`Frame::MixBatchChunk`].
        chunk: usize,
    },
}

impl Transport {
    /// Smallest batch [`Transport::Auto`] streams: below two chunks
    /// there is no pipeline to overlap, and the whole-batch path has
    /// one fewer round trip.
    pub const AUTO_STREAM_MIN: usize = 2 * STREAM_CHUNK;
}

/// Coordinator-side handle for one chain: persistent connections to its
/// `k` mix daemons plus the active/pending key bundles.
pub struct ChainClient {
    conns: Vec<Conn>,
    public: ChainPublicKeys,
    pending: Option<ChainPublicKeys>,
    transport: Transport,
}

/// What a hop failure resolved to: retry the mix with the convicted
/// users removed, or abort the chain (a server misbehaved).
enum FailureVerdict {
    Retry,
    Abort,
}

/// Result of the mixing/blame phases when the audit is deferred to the
/// caller ([`ChainClient::mix_round_deferred`]).
pub enum MixPhase {
    /// The chain's outcome is already final (abort or conviction
    /// mid-mix); no attestations to audit, nothing will be revealed.
    Done(ChainRoundOutcome),
    /// A clean pass: the hop attestations await the caller's audit
    /// verdict before [`ChainClient::conclude_audited`] reveals keys.
    AwaitingAudit(PendingChainRound),
}

/// A clean mixing pass whose attestations have not been audited yet:
/// everything [`ChainClient::conclude_audited`] needs to finish the
/// round once the caller has folded this chain's proofs into its
/// (possibly deployment-wide) batched verification.
pub struct PendingChainRound {
    /// Per-hop `(position, inputs, outputs, proof)` of the clean pass.
    hop_audit: Vec<(usize, Vec<MixEntry>, Vec<MixEntry>, DleqProof)>,
    /// The chain's final mixed batch.
    final_entries: Vec<MixEntry>,
    /// Users convicted by blame during earlier (retried) passes.
    malicious_users: Vec<usize>,
    /// Servers convicted so far (empty on a clean pass).
    misbehaving_servers: Vec<usize>,
    /// Round statistics accumulated through the mix phase.
    stats: ChainRoundStats,
}

impl PendingChainRound {
    /// Borrow the clean pass's attestations as [`HopRecord`]s, the
    /// form [`verify_hops_batched_multi`](xrd_mixnet::verify_hops_batched_multi) consumes.
    pub fn records(&self) -> Vec<HopRecord<'_>> {
        self.hop_audit
            .iter()
            .map(|(pos, inputs, outputs, proof)| HopRecord {
                position: *pos,
                inputs,
                outputs,
                proof: *proof,
            })
            .collect()
    }
}

impl ChainClient {
    /// Connect to a chain's daemons (hop order) with its active bundle.
    pub fn connect(addrs: &[SocketAddr], public: ChainPublicKeys) -> Result<ChainClient, NetError> {
        assert_eq!(addrs.len(), public.len(), "one daemon per hop");
        let conns = addrs
            .iter()
            .map(|&a| Conn::connect(a))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChainClient {
            conns,
            public,
            pending: None,
            transport: Transport::Auto,
        })
    }

    /// Select how this chain ships batches hop to hop (default
    /// [`Transport::Auto`]).
    pub fn set_transport(&mut self, transport: Transport) {
        self.transport = transport;
    }

    /// Chain length `k`.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True if the chain has no servers (never in practice).
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// The active public bundle.
    pub fn public(&self) -> &ChainPublicKeys {
        &self.public
    }

    /// The prepared next-round bundle, if any.
    pub fn pending_public(&self) -> Option<&ChainPublicKeys> {
        self.pending.as_ref()
    }

    /// Total bytes exchanged with this chain's daemons so far.
    pub fn bytes_on_wire(&self) -> u64 {
        self.conns
            .iter()
            .map(|c| c.bytes_sent() + c.bytes_received())
            .sum()
    }

    /// Open the submission window for `round` on every server.
    pub fn open_round(&mut self, round: u64) -> Result<(), NetError> {
        for conn in &mut self.conns {
            conn.request_ok(&Frame::OpenRound { round })?;
        }
        Ok(())
    }

    /// Close the window and run input agreement: every server reports
    /// its canonical-batch digest; all must match.  Returns the agreed
    /// batch (fetched from server 0 and re-hashed locally).
    pub fn close_and_agree(&mut self, round: u64) -> Result<Vec<Submission>, NetError> {
        let mut digests = Vec::with_capacity(self.conns.len());
        for conn in &mut self.conns {
            match conn.request(&Frame::CloseSubmissions { round })? {
                Frame::BatchDigest {
                    round: r, digest, ..
                } if r == round => digests.push(digest),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected BatchDigest, got {other:?}"
                    )))
                }
            }
        }
        if digests.windows(2).any(|w| w[0] != w[1]) {
            return Err(NetError::Protocol(
                "input agreement failed: servers hold different batches".into(),
            ));
        }
        let batch = match self.conns[0].request(&Frame::GetBatch { round })? {
            Frame::SubmissionBatch {
                round: r,
                submissions,
            } if r == round => submissions,
            other => {
                return Err(NetError::Protocol(format!(
                    "expected SubmissionBatch, got {other:?}"
                )))
            }
        };
        // Never trust server 0's transcript blindly: re-derive the
        // digest locally and compare against the agreed one.
        let entries: Vec<MixEntry> = batch.iter().map(|s| s.to_entry()).collect();
        if input_digest(&entries) != digests[0] {
            return Err(NetError::Protocol(
                "server 0 returned a batch that does not match the agreed digest".into(),
            ));
        }
        Ok(batch)
    }

    /// Drive the mixing/blame/reveal phases for an agreed batch and
    /// return the outcome (delivered messages still need mailbox
    /// delivery, which is deployment-level).  Ships batches per the
    /// configured [`Transport`].
    ///
    /// The coordinator's own end-of-chain audit runs here as one
    /// batched DLEQ verification over this chain's `k` proofs.  A
    /// deployment driving several chains should use
    /// [`ChainClient::mix_round_deferred`] instead and fold *all*
    /// chains' proofs into a single multiscalar mul
    /// ([`verify_hops_batched_multi`](xrd_mixnet::verify_hops_batched_multi)) before concluding each chain.
    pub fn mix_round(
        &mut self,
        round: u64,
        submissions: &[Submission],
    ) -> Result<ChainRoundOutcome, NetError> {
        match self.mix_round_deferred(round, submissions)? {
            MixPhase::Done(outcome) => Ok(outcome),
            MixPhase::AwaitingAudit(pending) => {
                let ok = verify_hops_batched(&self.public, round, &pending.records());
                self.conclude_audited(round, pending, ok)
            }
        }
    }

    /// The mixing/blame phases only: returns either a final outcome
    /// (the chain aborted or convicted someone mid-mix) or a
    /// [`PendingChainRound`] holding the clean pass's attestations.
    /// The caller audits those — typically across every chain of the
    /// round at once — and then calls
    /// [`ChainClient::conclude_audited`] to reveal and open.
    pub fn mix_round_deferred(
        &mut self,
        round: u64,
        submissions: &[Submission],
    ) -> Result<MixPhase, NetError> {
        match self.transport {
            Transport::Whole => self.mix_round_whole(round, submissions),
            Transport::Streamed { chunk } => self.mix_round_streamed(round, submissions, chunk),
            Transport::Auto => {
                if submissions.len() >= Transport::AUTO_STREAM_MIN {
                    self.mix_round_streamed(round, submissions, STREAM_CHUNK)
                } else {
                    self.mix_round_whole(round, submissions)
                }
            }
        }
    }

    /// [`ChainClient::mix_round`] over monolithic [`Frame::MixBatch`]s
    /// with per-hop cross-server verification — each hop is fully
    /// transferred, fully computed, fully verified before the next
    /// begins.
    fn mix_round_whole(
        &mut self,
        round: u64,
        submissions: &[Submission],
    ) -> Result<MixPhase, NetError> {
        let k = self.conns.len();
        let mut stats = ChainRoundStats::default();
        let mut malicious_users: Vec<usize> = Vec::new();
        let mut misbehaving_servers: Vec<usize> = Vec::new();
        let mut active: Vec<usize> = (0..submissions.len()).collect();

        // Per-hop (inputs, outputs, proof) records of the final clean
        // pass, for the coordinator's own batched end-of-chain audit.
        let mut hop_audit: Vec<(usize, Vec<MixEntry>, Vec<MixEntry>, DleqProof)> = Vec::new();

        // Mixing with blame-retry: repeat until a clean pass (§6.4).
        let final_entries: Vec<MixEntry> = 'retry: loop {
            hop_audit.clear();
            let mut entries: Vec<MixEntry> =
                active.iter().map(|&i| submissions[i].to_entry()).collect();
            for pos in 0..k {
                let _span = xrd_obs::span_timer(format!("coord.hop{pos}"), round);
                let inputs = entries.clone();
                let response = self.conns[pos].request(&Frame::MixBatch {
                    round,
                    entries: entries.clone(),
                })?;
                match response {
                    Frame::HopOutput {
                        round: r,
                        position,
                        outputs,
                        proof,
                    } => {
                        if r != round || position as usize != pos {
                            return Err(NetError::Protocol(
                                "hop output for wrong round/position".into(),
                            ));
                        }
                        stats.proofs_generated += 1;
                        // Every other server verifies the attestation,
                        // concurrently (they are independent machines).
                        let public = &self.public;
                        let verdicts: Vec<(usize, Result<Frame, NetError>)> =
                            std::thread::scope(|scope| {
                                let handles: Vec<_> = self
                                    .conns
                                    .iter_mut()
                                    .enumerate()
                                    .filter(|(verifier, _)| *verifier != pos)
                                    .map(|(verifier, conn)| {
                                        let request = Frame::VerifyHop {
                                            round,
                                            position: pos as u32,
                                            inputs: inputs.clone(),
                                            outputs: outputs.clone(),
                                            proof,
                                        };
                                        scope.spawn(move || (verifier, conn.request(&request)))
                                    })
                                    .collect();
                                handles
                                    .into_iter()
                                    .map(|h| h.join().expect("verifier thread panicked"))
                                    .collect()
                            });
                        for (verifier, verdict) in verdicts {
                            stats.proofs_verified += 1;
                            match verdict? {
                                Frame::VerifyResult { ok: true } => {}
                                Frame::VerifyResult { ok: false } => {
                                    // A rejection over the wire could be a
                                    // bad proof *or* a lying verifier; the
                                    // coordinator holds everything needed
                                    // to re-check locally and convict the
                                    // right party.
                                    let really_bad =
                                        !verify_hop(public, pos, round, &inputs, &outputs, &proof);
                                    misbehaving_servers.push(if really_bad {
                                        pos
                                    } else {
                                        verifier
                                    });
                                    return Ok(MixPhase::Done(ChainRoundOutcome {
                                        delivered: Vec::new(),
                                        malicious_users,
                                        misbehaving_servers,
                                        stats,
                                    }));
                                }
                                other => {
                                    return Err(NetError::Protocol(format!(
                                        "expected VerifyResult, got {other:?}"
                                    )))
                                }
                            }
                        }
                        hop_audit.push((pos, inputs, outputs.clone(), proof));
                        entries = outputs;
                    }
                    Frame::HopFailure {
                        round: r,
                        position,
                        failed,
                    } => {
                        if r != round || position as usize != pos {
                            return Err(NetError::Protocol(
                                "hop failure for wrong round/position".into(),
                            ));
                        }
                        match self.resolve_hop_failure(
                            round,
                            pos,
                            failed,
                            submissions,
                            &mut active,
                            &mut malicious_users,
                            &mut misbehaving_servers,
                            &mut stats,
                        )? {
                            // A malicious server: halt with nothing
                            // delivered (§6.4).
                            FailureVerdict::Abort => {
                                return Ok(MixPhase::Done(ChainRoundOutcome {
                                    delivered: Vec::new(),
                                    malicious_users,
                                    misbehaving_servers,
                                    stats,
                                }))
                            }
                            FailureVerdict::Retry => continue 'retry,
                        }
                    }
                    other => {
                        return Err(NetError::Protocol(format!(
                            "expected HopOutput/HopFailure, got {other:?}"
                        )))
                    }
                }
            }
            break entries;
        };

        Ok(MixPhase::AwaitingAudit(PendingChainRound {
            hop_audit,
            final_entries,
            malicious_users,
            misbehaving_servers,
            stats,
        }))
    }

    /// [`ChainClient::mix_round`] as a chunked pipeline: hop `i+1`
    /// receives (and starts decrypting) hop `i`'s output chunks while
    /// hop `i` is still emitting later ones.  Output chunks are
    /// forwarded *verbatim* (one-byte tag rewrite) — the relay decodes
    /// each chunk once for its own audit but never re-encodes it.
    /// Cross-server verification runs at end of chain over DH-key
    /// columns only ([`Frame::VerifyHopKeys`]); the reveal still
    /// happens only after every check passes.
    fn mix_round_streamed(
        &mut self,
        round: u64,
        submissions: &[Submission],
        chunk: usize,
    ) -> Result<MixPhase, NetError> {
        let k = self.conns.len();
        let mut stats = ChainRoundStats::default();
        let mut malicious_users: Vec<usize> = Vec::new();
        let mut misbehaving_servers: Vec<usize> = Vec::new();
        let mut active: Vec<usize> = (0..submissions.len()).collect();
        let mut hop_audit: Vec<(usize, Vec<MixEntry>, Vec<MixEntry>, DleqProof)> = Vec::new();

        // Mixing with blame-retry: repeat until a clean pass (§6.4).
        let final_entries: Vec<MixEntry> = 'retry: loop {
            hop_audit.clear();
            let entries: Vec<MixEntry> =
                active.iter().map(|&i| submissions[i].to_entry()).collect();

            // Open the pipeline: hop 0's request stream, encoded once.
            let stream = ChunkedBatch::build(round, &entries, chunk);
            for bytes in stream.frames() {
                self.conns[0].send_encoded(bytes)?;
            }

            // `current` is the batch entering the hop being received.
            let mut current = entries;
            for pos in 0..k {
                // Hop spans overlap under the pipeline: hop `i+1`'s
                // clock starts while `i` is still emitting.  Each span
                // measures receipt of that hop's full output.
                let _span = xrd_obs::span_timer(format!("coord.hop{pos}"), round);
                match self.conns[pos].recv_with_body()? {
                    (
                        Frame::HopOutputStart {
                            round: r,
                            position,
                            total,
                        },
                        _,
                    ) => {
                        if r != round || position as usize != pos {
                            return Err(NetError::Protocol(
                                "hop output for wrong round/position".into(),
                            ));
                        }
                        if total as usize != current.len() {
                            return Err(NetError::Protocol(format!(
                                "hop {pos} answered {total} entries to a {}-entry batch",
                                current.len()
                            )));
                        }
                        // The next hop's stream opens before this one
                        // has delivered a single chunk: the pipeline.
                        if pos + 1 < k {
                            self.conns[pos + 1].send(&Frame::MixBatchStart { round, total })?;
                        }
                        let mut assembler = BatchAssembler::begin(round, total)
                            .map_err(|e| NetError::Protocol(format!("hop {pos}: {e}")))?;
                        let outputs = loop {
                            match self.conns[pos].recv_with_body()? {
                                (Frame::HopOutputChunk { entries }, body) => {
                                    // Forward first — the next hop's
                                    // crypto starts while we digest.
                                    if pos + 1 < k {
                                        let wire = reframe_output_chunk(&body)
                                            .expect("decoded as hop-output chunk");
                                        self.conns[pos + 1].send_encoded(&wire)?;
                                    }
                                    let payload = &body[ChunkedBatch::CHUNK_PAYLOAD_OFFSET - 4..];
                                    assembler.absorb_raw(entries, payload).map_err(|e| {
                                        NetError::Protocol(format!("hop {pos}: {e}"))
                                    })?;
                                }
                                (Frame::HopOutputEnd { digest, proof }, _) => {
                                    let outputs = assembler.finish(digest).map_err(|e| {
                                        NetError::Protocol(format!("hop {pos}: {e}"))
                                    })?;
                                    if pos + 1 < k {
                                        self.conns[pos + 1].send(&Frame::MixBatchEnd { digest })?;
                                    }
                                    stats.proofs_generated += 1;
                                    break (outputs, proof);
                                }
                                (other, _) => {
                                    return Err(NetError::Protocol(format!(
                                        "expected HopOutputChunk/End, got {other:?}"
                                    )))
                                }
                            }
                        };
                        let (outputs, proof) = outputs;
                        let inputs = std::mem::replace(&mut current, outputs);
                        hop_audit.push((pos, inputs, current.clone(), proof));
                    }
                    (
                        Frame::HopFailure {
                            round: r,
                            position,
                            failed,
                        },
                        _,
                    ) => {
                        if r != round || position as usize != pos {
                            return Err(NetError::Protocol(
                                "hop failure for wrong round/position".into(),
                            ));
                        }
                        match self.resolve_hop_failure(
                            round,
                            pos,
                            failed,
                            submissions,
                            &mut active,
                            &mut malicious_users,
                            &mut misbehaving_servers,
                            &mut stats,
                        )? {
                            FailureVerdict::Abort => {
                                return Ok(MixPhase::Done(ChainRoundOutcome {
                                    delivered: Vec::new(),
                                    malicious_users,
                                    misbehaving_servers,
                                    stats,
                                }))
                            }
                            FailureVerdict::Retry => continue 'retry,
                        }
                    }
                    (Frame::Error { code, message }, _) => {
                        return Err(NetError::Remote { code, message })
                    }
                    (other, _) => {
                        return Err(NetError::Protocol(format!(
                            "expected HopOutputStart/HopFailure, got {other:?}"
                        )))
                    }
                }
            }
            break current;
        };

        // End-of-chain cross-server verification, keys only: each
        // hop's attestation frame is encoded once and broadcast to the
        // other k-1 servers, all requests pipelined before any verdict
        // is collected (responses are one byte and cannot clog).
        let _span = xrd_obs::span_timer("coord.verify_chain", round);
        let mut expected: Vec<(usize, usize)> = Vec::new(); // (verifier, prover)
        for (pos, inputs, outputs, proof) in &hop_audit {
            let wire = Frame::VerifyHopKeys {
                round,
                position: *pos as u32,
                input_dhs: inputs.iter().map(|e| e.dh).collect(),
                output_dhs: outputs.iter().map(|e| e.dh).collect(),
                proof: *proof,
            }
            .encode();
            for (verifier, conn) in self.conns.iter_mut().enumerate() {
                if verifier != *pos {
                    conn.send_encoded(&wire)?;
                    expected.push((verifier, *pos));
                }
            }
        }
        for (verifier, prover) in expected {
            stats.proofs_verified += 1;
            match self.conns[verifier].recv()? {
                Frame::VerifyResult { ok: true } => {}
                Frame::VerifyResult { ok: false } => {
                    // A rejection over the wire could be a bad proof
                    // *or* a lying verifier; re-check locally and
                    // convict the right party.
                    let (_, inputs, outputs, proof) = &hop_audit[prover];
                    let really_bad =
                        !verify_hop(&self.public, prover, round, inputs, outputs, proof);
                    misbehaving_servers.push(if really_bad { prover } else { verifier });
                    return Ok(MixPhase::Done(ChainRoundOutcome {
                        delivered: Vec::new(),
                        malicious_users,
                        misbehaving_servers,
                        stats,
                    }));
                }
                Frame::Error { code, message } => return Err(NetError::Remote { code, message }),
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected VerifyResult, got {other:?}"
                    )))
                }
            }
        }

        Ok(MixPhase::AwaitingAudit(PendingChainRound {
            hop_audit,
            final_entries,
            malicious_users,
            misbehaving_servers,
            stats,
        }))
    }

    /// Resolve one hop's decrypt failures through the blame protocol:
    /// convicted users are removed from `active` (retry), a convicted
    /// server aborts the chain.
    #[allow(clippy::too_many_arguments)]
    fn resolve_hop_failure(
        &mut self,
        round: u64,
        pos: usize,
        failed: Vec<u64>,
        submissions: &[Submission],
        active: &mut Vec<usize>,
        malicious_users: &mut Vec<usize>,
        misbehaving_servers: &mut Vec<usize>,
        stats: &mut ChainRoundStats,
    ) -> Result<FailureVerdict, NetError> {
        stats.blame_rounds += 1;
        let active_subs: Vec<Submission> = active.iter().map(|&i| submissions[i].clone()).collect();
        let mut to_remove = Vec::new();
        for idx in failed {
            match self.run_blame_over_wire(round, pos, idx as usize, &active_subs)? {
                BlameVerdict::MaliciousUser { submission_index } => {
                    to_remove.push(active[submission_index]);
                }
                BlameVerdict::ServerMisbehaved { position } => {
                    misbehaving_servers.push(position);
                }
            }
        }
        if !misbehaving_servers.is_empty() {
            return Ok(FailureVerdict::Abort);
        }
        if to_remove.is_empty() {
            return Err(NetError::Protocol(
                "blame identified no party for a failed slot".into(),
            ));
        }
        stats.removed_by_blame += to_remove.len();
        for bad in to_remove {
            malicious_users.push(bad);
            active.retain(|&i| i != bad);
        }
        Ok(FailureVerdict::Retry)
    }

    /// Conclude a clean mixing pass after its attestations have been
    /// audited: on a failed audit, re-verify this chain's hops
    /// individually to pin (or clear) an offender; then reveal the
    /// inner keys and open the envelopes.
    ///
    /// `audit_ok` is the verdict of a batched verification that
    /// *included* this chain's records — either this chain alone
    /// ([`ChainClient::mix_round`]) or every chain of the deployment
    /// round folded into one multiscalar mul
    /// ([`verify_hops_batched_multi`](xrd_mixnet::verify_hops_batched_multi)).  A failed combined audit only
    /// proves *some* statement in the batch was bad, so each chain
    /// re-checks its own hops; a chain whose proofs all verify
    /// individually proceeds to the reveal (the offender is in another
    /// chain).
    pub fn conclude_audited(
        &mut self,
        round: u64,
        mut pending: PendingChainRound,
        audit_ok: bool,
    ) -> Result<ChainRoundOutcome, NetError> {
        let k = self.conns.len();

        // The audit (batched, possibly deployment-wide) covered this
        // chain's k statements: count them here, once, whatever the
        // verdict — the per-hop re-checks below localize rather than
        // re-audit (matching the pre-deferred accounting).
        pending.stats.proofs_verified += pending.hop_audit.len();
        if !audit_ok {
            let mut convicted: Vec<usize> = Vec::new();
            for r in &pending.records() {
                if !verify_hop(
                    &self.public,
                    r.position,
                    round,
                    r.inputs,
                    r.outputs,
                    &r.proof,
                ) {
                    convicted.push(r.position);
                }
            }
            pending.misbehaving_servers.extend(convicted);
        }
        let PendingChainRound {
            hop_audit: _,
            final_entries,
            malicious_users,
            mut misbehaving_servers,
            stats,
        } = pending;
        if !misbehaving_servers.is_empty() {
            return Ok(ChainRoundOutcome {
                delivered: Vec::new(),
                malicious_users,
                misbehaving_servers,
                stats,
            });
        }
        // On a failed combined audit with every hop of *this* chain
        // verifying individually, the offender is in another chain:
        // proceed to the reveal.

        // Inner-key reveal + verification, then open the envelopes.
        let _span = xrd_obs::span_timer("coord.reveal", round);
        let mut inner_keys: Vec<Scalar> = Vec::with_capacity(k);
        for (pos, conn) in self.conns.iter_mut().enumerate() {
            match conn.request(&Frame::RevealInnerKey { round })? {
                Frame::InnerKeyReveal { position, isk } => {
                    if position as usize != pos || !verify_inner_key(&self.public, pos, &isk) {
                        misbehaving_servers.push(pos);
                        return Ok(ChainRoundOutcome {
                            delivered: Vec::new(),
                            malicious_users,
                            misbehaving_servers,
                            stats,
                        });
                    }
                    inner_keys.push(isk);
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected InnerKeyReveal, got {other:?}"
                    )))
                }
            }
        }
        let delivered: Vec<MailboxMessage> = open_batch(&inner_keys, round, &final_entries)
            .into_iter()
            .flatten()
            .collect();

        Ok(ChainRoundOutcome {
            delivered,
            malicious_users,
            misbehaving_servers,
            stats,
        })
    }

    /// The §6.4 trace, with each reveal fetched over the wire.
    fn run_blame_over_wire(
        &mut self,
        round: u64,
        accuser_position: usize,
        input_index: usize,
        active_subs: &[Submission],
    ) -> Result<BlameVerdict, NetError> {
        let accusation = match self.conns[accuser_position].request(&Frame::Accuse {
            round,
            input_index: input_index as u64,
        }) {
            Ok(Frame::Accusation { accusation }) => accusation,
            Ok(other) => {
                return Err(NetError::Protocol(format!(
                    "expected Accusation, got {other:?}"
                )))
            }
            Err(NetError::Remote { .. }) => {
                // Refusing to accuse convicts the accuser.
                return Ok(BlameVerdict::ServerMisbehaved {
                    position: accuser_position,
                });
            }
            Err(e) => return Err(e),
        };
        if accusation.position != accuser_position {
            return Ok(BlameVerdict::ServerMisbehaved {
                position: accuser_position,
            });
        }

        // trace_blame's fetcher cannot return wire errors, so capture
        // them on the side and rethrow after.
        let mut wire_error: Option<NetError> = None;
        let conns = &mut self.conns;
        let verdict = trace_blame(
            &self.public,
            active_subs,
            round,
            &accusation,
            |position, output_index| {
                if wire_error.is_some() {
                    return None;
                }
                match conns[position].request(&Frame::RevealSlot {
                    round,
                    output_index: output_index as u64,
                }) {
                    Ok(Frame::SlotReveal { reveal }) => reveal.map(|r| *r),
                    Ok(_) | Err(NetError::Remote { .. }) => None, // convicts the server
                    Err(e) => {
                        wire_error = Some(e);
                        None
                    }
                }
            },
        );
        match wire_error {
            Some(e) => Err(e),
            None => Ok(verdict),
        }
    }

    /// Prepare the inner-key rotation for `inner_epoch`: every server
    /// generates a fresh key and the assembled, verified bundle becomes
    /// this chain's pending bundle (what covers are sealed against).
    pub fn prepare_rotation(&mut self, inner_epoch: u64) -> Result<ChainPublicKeys, NetError> {
        let mut shares: Vec<RotationShare> = Vec::with_capacity(self.conns.len());
        for (pos, conn) in self.conns.iter_mut().enumerate() {
            match conn.request(&Frame::PrepareRotation { inner_epoch })? {
                Frame::RotationShare {
                    inner_epoch: e,
                    share,
                } if e == inner_epoch && share.position == pos => shares.push(share),
                other => {
                    return Err(NetError::Protocol(format!(
                        "bad rotation share from position {pos}: {other:?}"
                    )))
                }
            }
        }
        let mut next = self.public.clone();
        if !apply_rotation_shares(&mut next, inner_epoch, &shares) {
            return Err(NetError::Protocol(
                "rotation shares failed verification".into(),
            ));
        }
        self.pending = Some(next.clone());
        Ok(next)
    }

    /// Activate the pending rotation on every server and switch the
    /// coordinator's active bundle.
    pub fn activate_rotation(&mut self) -> Result<(), NetError> {
        let next = self
            .pending
            .take()
            .expect("prepare_rotation must be called first");
        for conn in &mut self.conns {
            conn.request_ok(&Frame::ActivateRotation { keys: next.clone() })?;
        }
        self.public = next;
        Ok(())
    }
}
