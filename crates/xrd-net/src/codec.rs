//! The XRD wire protocol: length-prefixed binary frames.
//!
//! Every message exchanged between clients, mix-server daemons, mailbox
//! daemons and the round coordinator is one [`Frame`], encoded as
//!
//! ```text
//! [ u32 length (LE) | u8 tag | payload... ]
//! ```
//!
//! where `length` covers the tag byte plus the payload.  All integers
//! are little-endian; group elements and scalars use their canonical
//! 32-byte encodings (non-canonical encodings are rejected on parse);
//! proofs use the fixed-size encodings from `xrd-crypto`; byte strings
//! and sequences carry a `u32` length prefix checked against hard caps
//! so a malicious peer cannot force huge allocations.
//!
//! The codec is hand-rolled over byte slices — no serde, no external
//! dependencies — and every frame type round-trips exactly (see the
//! property tests in `tests/codec_properties.rs`).

use xrd_crypto::nizk::{DleqProof, SchnorrProof, DLEQ_PROOF_LEN, SCHNORR_PROOF_LEN};
use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;
use xrd_mixnet::blame::{Accusation, BlameReveal};
use xrd_mixnet::chain_keys::{ChainPublicKeys, RotationShare, ServerKeyProofs};
use xrd_mixnet::client::Submission;
use xrd_mixnet::message::{MailboxMessage, MixEntry, MAILBOX_MSG_LEN};

/// Hard cap on one frame's encoded size (tag + payload).  Sized so a
/// [`MAX_BATCH`]-entry batch of paper-scale onions (k ≈ 32, ~1 KiB per
/// entry) still fits: encoders reject anything larger at runtime
/// ([`write_frame`]) rather than shipping a frame the receiver must
/// refuse.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Hard cap on entries in one batch (submissions, mix entries,
/// mailbox messages, sealed blobs).
pub const MAX_BATCH: usize = 1 << 15;

/// Hard cap on one variable-length byte string (an onion ciphertext is
/// a few hundred bytes even at paper-scale chain lengths).
pub const MAX_BYTES: usize = 1 << 16;

/// Hard cap on chain length in key bundles.
pub const MAX_CHAIN_LEN: usize = 256;

/// Hard cap on metrics of one kind (counters, gauges, histograms) and
/// on retained spans in a [`Frame::StatsReport`].  The in-repo
/// instrumentation registers a few dozen names and the global span ring
/// holds 1024 events; the cap only bounds hostile frames.
pub const MAX_METRICS: usize = 4096;

/// Why a frame failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the structure was complete.
    Truncated,
    /// A declared length exceeds its hard cap.
    Oversized {
        /// The declared length.
        declared: usize,
        /// The cap it exceeds.
        cap: usize,
    },
    /// Unknown frame tag byte.
    UnknownTag(u8),
    /// A 32-byte string was not a canonical ristretto encoding.
    InvalidGroupElement,
    /// A 32-byte string was not a canonical scalar encoding.
    InvalidScalar,
    /// A proof failed structural parsing.
    InvalidProof,
    /// A fixed-size field had the wrong length.
    BadLength,
    /// Bytes were left over after the frame's payload.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::Oversized { declared, cap } => {
                write!(f, "declared length {declared} exceeds cap {cap}")
            }
            CodecError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            CodecError::InvalidGroupElement => write!(f, "invalid group element encoding"),
            CodecError::InvalidScalar => write!(f, "invalid scalar encoding"),
            CodecError::InvalidProof => write!(f, "invalid proof encoding"),
            CodecError::BadLength => write!(f, "fixed-size field has wrong length"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after frame payload"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Frame tags.  Stable protocol constants — append, never renumber.
// ---------------------------------------------------------------------

const TAG_OK: u8 = 0x01;
const TAG_ERROR: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_SHUTDOWN: u8 = 0x04;
const TAG_STATS_REQUEST: u8 = 0x05;
const TAG_STATS_REPORT: u8 = 0x06;
const TAG_PONG: u8 = 0x07;
const TAG_OPEN_ROUND: u8 = 0x10;
const TAG_SUBMIT: u8 = 0x11;
const TAG_CLOSE_SUBMISSIONS: u8 = 0x12;
const TAG_BATCH_DIGEST: u8 = 0x13;
const TAG_GET_BATCH: u8 = 0x14;
const TAG_SUBMISSION_BATCH: u8 = 0x15;
const TAG_MIX_BATCH: u8 = 0x20;
const TAG_HOP_OUTPUT: u8 = 0x21;
const TAG_HOP_FAILURE: u8 = 0x22;
const TAG_VERIFY_HOP: u8 = 0x23;
const TAG_VERIFY_RESULT: u8 = 0x24;
const TAG_MIX_BATCH_START: u8 = 0x25;
const TAG_MIX_BATCH_CHUNK: u8 = 0x26;
const TAG_MIX_BATCH_END: u8 = 0x27;
const TAG_HOP_OUTPUT_START: u8 = 0x28;
const TAG_HOP_OUTPUT_CHUNK: u8 = 0x29;
const TAG_HOP_OUTPUT_END: u8 = 0x2A;
const TAG_VERIFY_HOP_KEYS: u8 = 0x2B;
const TAG_MIX_FORWARD: u8 = 0x2C;
const TAG_HOP_FORWARDED: u8 = 0x2D;
const TAG_REVEAL_INNER_KEY: u8 = 0x30;
const TAG_INNER_KEY_REVEAL: u8 = 0x31;
const TAG_PREPARE_ROTATION: u8 = 0x32;
const TAG_ROTATION_SHARE: u8 = 0x33;
const TAG_ACTIVATE_ROTATION: u8 = 0x34;
const TAG_ACCUSE: u8 = 0x40;
const TAG_ACCUSATION: u8 = 0x41;
const TAG_REVEAL_SLOT: u8 = 0x42;
const TAG_SLOT_REVEAL: u8 = 0x43;
const TAG_DISPUTE_OPEN: u8 = 0x44;
const TAG_DISPUTE_EVIDENCE: u8 = 0x45;
const TAG_DISPUTE_VERDICT: u8 = 0x46;
const TAG_DELIVER: u8 = 0x50;
// 0x51 (Fetch) and 0x52 (MailboxContents) carried the old
// drain-everything fetch API and are retired; the tags stay reserved
// so a stale peer gets a clean UnknownTag instead of a misparse.
const TAG_FETCH_PAGE: u8 = 0x53;
const TAG_MAILBOX_PAGE: u8 = 0x54;
const TAG_FETCH_ACK: u8 = 0x55;

/// Error codes carried by [`Frame::Error`].
pub mod error_code {
    /// The frame could not be handled in the daemon's current state.
    pub const BAD_STATE: u16 = 1;
    /// A submission was rejected (bad proof of knowledge or size).
    pub const REJECTED_SUBMISSION: u16 = 2;
    /// The requested round is unknown to the daemon.
    pub const UNKNOWN_ROUND: u16 = 3;
    /// A rotation bundle failed verification.
    pub const BAD_ROTATION: u16 = 4;
    /// The daemon could not produce the requested blame material.
    pub const NO_BLAME_STATE: u16 = 5;
    /// The peer sent a frame this daemon does not serve.
    pub const UNSUPPORTED: u16 = 6;
    /// The client exceeded a submission quota or rate limit.
    pub const QUOTA_EXCEEDED: u16 = 7;
    /// The fetched/acked mailbox has never been delivered to on this
    /// shard (distinct from a known mailbox that is merely empty, which
    /// answers with an empty [`Frame::MailboxPage`](super::Frame::MailboxPage)).
    pub const UNKNOWN_MAILBOX: u16 = 8;
    /// The mailbox shard refused a delivery because it is at capacity.
    pub const MAILBOX_FULL: u16 = 9;
    /// The mailbox shard's persistent store failed an operation.
    pub const STORAGE: u16 = 10;
}

/// Claim codes carried by [`Frame::DisputeVerdict`]: what the accused
/// is alleged to have done.
pub mod dispute_claim {
    /// The accused published a hop attestation that does not verify.
    pub const BAD_PROOF: u8 = 0;
    /// The accused, acting as a verifier, rejected a valid attestation.
    pub const FALSE_VERDICT: u8 = 1;
    /// The accused's input-agreement digest dissented from the
    /// majority (equivocation, or a lossy submission link — digest
    /// evidence alone never convicts; see `docs/FAULTS.md`).
    pub const EQUIVOCATION: u8 = 2;
}

/// One message of the XRD wire protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Generic success acknowledgement.
    Ok,
    /// Generic failure with a machine code and human-readable detail.
    Error {
        /// One of [`error_code`]'s constants.
        code: u16,
        /// Human-readable context.
        message: String,
    },
    /// Liveness probe (answered with [`Frame::Pong`]): the cheapest
    /// possible health check, served by the reactor before any service
    /// logic so a wedged handler still distinguishes "process up" from
    /// "process gone".
    Ping,
    /// Reply to [`Frame::Ping`].
    Pong,
    /// Ask the daemon to exit after this connection.
    Shutdown,
    /// Scrape the daemon's metrics (answered with
    /// [`Frame::StatsReport`] by the reactor itself, so every daemon
    /// kind serves it without touching its service logic).
    StatsRequest,
    /// A point-in-time copy of the daemon's process-wide metric
    /// registry (boxed: it is bulky and rides the admin path only).
    StatsReport {
        /// Counters, gauges, histograms and the span ring.
        snapshot: Box<xrd_obs::Snapshot>,
    },

    /// Open the submission window for a round (coordinator → mix).
    OpenRound {
        /// Round number.
        round: u64,
    },
    /// One user submission for an open round (client → mix).
    Submit {
        /// Round the submission is sealed for.
        round: u64,
        /// The AHS submission.
        submission: Submission,
    },
    /// Close the window; the daemon fixes its canonical batch
    /// (coordinator → mix; answered with [`Frame::BatchDigest`]).
    CloseSubmissions {
        /// Round number.
        round: u64,
    },
    /// The daemon's input-agreement digest over its canonical batch.
    BatchDigest {
        /// Round number.
        round: u64,
        /// `input_digest` over the batch entries.
        digest: [u8; 32],
        /// Batch size.
        count: u64,
    },
    /// Request the canonical batch (coordinator → mix).
    GetBatch {
        /// Round number.
        round: u64,
    },
    /// The canonical submission batch, in agreed order.
    SubmissionBatch {
        /// Round number.
        round: u64,
        /// Submissions in canonical order.
        submissions: Vec<Submission>,
    },

    /// Run one AHS hop on a batch (coordinator → mix; answered with
    /// [`Frame::HopOutput`] or [`Frame::HopFailure`]).
    MixBatch {
        /// Round number.
        round: u64,
        /// Entries to decrypt, blind and shuffle.
        entries: Vec<MixEntry>,
    },
    /// A completed hop: shuffled outputs plus the aggregate proof.
    HopOutput {
        /// Round number.
        round: u64,
        /// The prover's hop position.
        position: u32,
        /// Shuffled, decrypted, blinded entries.
        outputs: Vec<MixEntry>,
        /// Aggregate blinding attestation (§6.3 step 3).
        proof: DleqProof,
    },
    /// A hop halted on authentication failures (blame follows).
    HopFailure {
        /// Round number.
        round: u64,
        /// The halting server's position.
        position: u32,
        /// Failing indices into the hop's input batch.
        failed: Vec<u64>,
    },
    /// Ask a server to verify another server's hop attestation
    /// (coordinator → mix; answered with [`Frame::VerifyResult`]).
    VerifyHop {
        /// Round number.
        round: u64,
        /// The *prover's* position.
        position: u32,
        /// The prover's inputs.
        inputs: Vec<MixEntry>,
        /// The prover's outputs.
        outputs: Vec<MixEntry>,
        /// The aggregate proof to check.
        proof: DleqProof,
    },
    /// The verdict of a [`Frame::VerifyHop`] request.
    VerifyResult {
        /// Whether the attestation verified.
        ok: bool,
    },

    /// Open a *streamed* hop: the batch for `round` will arrive as
    /// [`Frame::MixBatchChunk`]s totalling `total` entries, closed by
    /// [`Frame::MixBatchEnd`] (coordinator → mix).  The daemon starts
    /// hop crypto on each chunk as it lands, while later chunks are
    /// still in flight; the response is a [`Frame::HopOutputStart`]
    /// stream (or [`Frame::HopFailure`]), emitted only after the End.
    MixBatchStart {
        /// Round number.
        round: u64,
        /// Total entries the stream will carry (≤ [`MAX_BATCH`]).
        total: u32,
    },
    /// One chunk of a streamed batch, in stream order.  Payload-
    /// compatible with [`Frame::HopOutputChunk`] (same bytes, different
    /// tag), so a relay can forward a received output chunk to the next
    /// hop by rewriting one byte.
    MixBatchChunk {
        /// The chunk's entries.
        entries: Vec<MixEntry>,
    },
    /// Close a streamed batch.  `digest` is the [`StreamDigest`] over
    /// every entry shipped, in stream order; a receiver whose own
    /// running digest disagrees rejects the whole stream.
    MixBatchEnd {
        /// Stream digest over all entries.
        digest: [u8; 32],
    },
    /// Start of a streamed hop response: `total` shuffled output
    /// entries follow as [`Frame::HopOutputChunk`]s, closed by
    /// [`Frame::HopOutputEnd`].
    HopOutputStart {
        /// Round number.
        round: u64,
        /// The prover's hop position.
        position: u32,
        /// Total entries the stream will carry.
        total: u32,
    },
    /// One chunk of a streamed hop output (see [`Frame::MixBatchChunk`]
    /// for the payload-compatibility guarantee).
    HopOutputChunk {
        /// The chunk's entries.
        entries: Vec<MixEntry>,
    },
    /// End of a streamed hop response: the stream digest over the
    /// output entries plus the hop's aggregate blinding attestation.
    HopOutputEnd {
        /// Stream digest over all output entries.
        digest: [u8; 32],
        /// Aggregate blinding attestation (§6.3 step 3).
        proof: DleqProof,
    },
    /// [`Frame::VerifyHop`] shipping only the DH-key columns.  The
    /// §6.3 attestation binds products of the DH keys — ciphertexts
    /// never enter the statement — so this checks the same relation at
    /// ~1/8 the wire cost.  The streamed round path uses it for its
    /// end-of-chain cross-server verification.
    VerifyHopKeys {
        /// Round number.
        round: u64,
        /// The *prover's* position.
        position: u32,
        /// DH keys of the prover's inputs, in arrival order.
        input_dhs: Vec<GroupElement>,
        /// DH keys of the prover's outputs, in emission order.
        output_dhs: Vec<GroupElement>,
        /// The aggregate proof to check.
        proof: DleqProof,
    },
    /// Coordinator → every hop of a chain, before streaming the round's
    /// batch to hop 0: run this round in *forwarded* mode.  A hop with
    /// a configured successor streams its output chunks straight to
    /// that successor instead of replying with them, and reports only
    /// its keys-only attestation ([`Frame::HopForwarded`]) on the
    /// connection this frame arrived on; the last hop (no successor)
    /// reports its full output stream there instead.  Answered with
    /// [`Frame::Ok`]; the reports follow unsolicited once the hop
    /// completes.
    MixForward {
        /// Round number.
        round: u64,
    },
    /// A forwarding hop's keys-only attestation for a round it ran in
    /// forwarded mode: the same statement as [`Frame::VerifyHopKeys`]
    /// (§6.3 binds only the DH-key columns), pushed to the coordinator
    /// while the full entries travel daemon-to-daemon.
    HopForwarded {
        /// Round number.
        round: u64,
        /// The reporting hop's position.
        position: u32,
        /// DH keys of the hop's inputs, in arrival order.
        input_dhs: Vec<GroupElement>,
        /// DH keys of the hop's outputs, in emission order.
        output_dhs: Vec<GroupElement>,
        /// Aggregate blinding attestation (§6.3 step 3).
        proof: DleqProof,
    },

    /// Ask a server to reveal its per-round inner key (after the last
    /// hop verifies; answered with [`Frame::InnerKeyReveal`]).
    RevealInnerKey {
        /// Round number.
        round: u64,
    },
    /// A revealed inner key.
    InnerKeyReveal {
        /// The revealing server's position.
        position: u32,
        /// The inner secret `isk_i`.
        isk: Scalar,
    },
    /// Ask a server to generate fresh inner keys for a future round
    /// (answered with [`Frame::RotationShare`]).
    PrepareRotation {
        /// The inner-key epoch (round number) being prepared.
        inner_epoch: u64,
    },
    /// One server's inner-key rotation share.
    RotationShare {
        /// The epoch the share belongs to.
        inner_epoch: u64,
        /// The share: position, new `ipk`, knowledge proof.
        share: RotationShare,
    },
    /// Distribute the assembled rotated bundle and switch to it
    /// (answered with [`Frame::Ok`]).
    ActivateRotation {
        /// The verified bundle for the new epoch.
        keys: ChainPublicKeys,
    },

    /// Open the blame protocol for a slot that failed decryption
    /// (coordinator → accusing server; answered with
    /// [`Frame::Accusation`]).
    Accuse {
        /// Round number.
        round: u64,
        /// Failing index in the accuser's input order.
        input_index: u64,
    },
    /// The accuser's opening move (§6.4 step 4).
    Accusation {
        /// The accusation: entry, decryption key, proof.
        accusation: Accusation,
    },
    /// Ask an upstream server to reveal one traced slot (answered with
    /// [`Frame::SlotReveal`]).
    RevealSlot {
        /// Round number.
        round: u64,
        /// Index in the revealing server's *output* order.
        output_index: u64,
    },
    /// An upstream server's revelation for a traced slot; `None` if it
    /// cannot produce one (which convicts it).
    SlotReveal {
        /// The reveal, if the server produced one (boxed: it is by far
        /// the largest payload in the protocol).
        reveal: Option<Box<BlameReveal>>,
    },

    /// Open a dispute over one server's hop attestation (coordinator →
    /// every other server of the chain; answered with
    /// [`Frame::DisputeEvidence`]).  Carries the full disputed
    /// statement — the prover's input/output DH key columns and its
    /// aggregate DLEQ proof — so each witness re-checks it
    /// independently of its own round state.
    DisputeOpen {
        /// Round number.
        round: u64,
        /// The accused prover's position.
        accused: u32,
        /// DH keys of the accused's inputs, in arrival order.
        input_dhs: Vec<GroupElement>,
        /// DH keys of the accused's outputs, in emission order.
        output_dhs: Vec<GroupElement>,
        /// The disputed aggregate proof.
        proof: DleqProof,
    },
    /// One witness's signed verdict on a disputed attestation.
    DisputeEvidence {
        /// Round number.
        round: u64,
        /// The witness's position.
        position: u32,
        /// The accused prover's position (echoed from the open).
        accused: u32,
        /// `true` if the witness finds the attestation invalid (the
        /// accusation upheld).
        upheld: bool,
        /// Schnorr signature under the witness's mix key `mpk` over
        /// the dispute statement (see
        /// [`dispute_context`]) — transferable evidence
        /// another server can verify without trusting the collector.
        sig: SchnorrProof,
    },
    /// The dispute's outcome, gossiped to every server of the chain
    /// (answered with [`Frame::Ok`]).
    DisputeVerdict {
        /// Round number.
        round: u64,
        /// The convicted (or, for [`dispute_claim::EQUIVOCATION`],
        /// suspected) server's position.
        accused: u32,
        /// One of [`dispute_claim`]'s constants.
        claim: u8,
        /// Whether the accusation was upheld against `accused`.
        upheld: bool,
        /// How many witnesses' valid evidence upheld the accusation.
        votes: u32,
    },

    /// Deliver opened messages to a mailbox shard (answered with
    /// [`Frame::Ok`]).
    Deliver {
        /// Round number: the round these messages were mixed in, which
        /// recipients need to derive the unsealing nonce.
        round: u64,
        /// Sender-chosen batch id, unique per (round, sender, chunk).
        /// The shard remembers recent ids and answers a retried
        /// duplicate with [`Frame::Ok`] without re-storing, so a lost
        /// reply cannot double-deliver.
        batch: u64,
        /// The opened mailbox messages.
        messages: Vec<MailboxMessage>,
    },
    /// Read one page of a mailbox, non-destructively (client → mailbox;
    /// answered with [`Frame::MailboxPage`]).  Fetching never removes
    /// messages: the client retires what it has safely read with an
    /// explicit [`Frame::FetchAck`], giving at-least-once delivery
    /// across client crashes and lost replies.
    FetchPage {
        /// Mailbox id to read.
        mailbox: [u8; 32],
        /// Resume token: 0 for the oldest un-acked entry, else the
        /// `next_cursor` of the previous page.
        cursor: u64,
        /// Maximum entries the shard may return in this page.
        max: u32,
    },
    /// One page of a mailbox's un-acked entries, oldest first.
    MailboxPage {
        /// `(delivery_round, sealed)` per entry: each sealed payload
        /// must be opened against the round it was delivered in.
        sealed: Vec<(u64, Vec<u8>)>,
        /// Pass as `cursor` to continue, or as `upto` in a
        /// [`Frame::FetchAck`] to retire everything read so far.
        next_cursor: u64,
        /// Entries still pending past this page.
        remaining: u64,
    },
    /// Retire every entry below `upto` (client → mailbox; answered
    /// with [`Frame::Ok`]).  Idempotent: re-acking an already-acked
    /// prefix is a no-op success.
    FetchAck {
        /// Mailbox id to ack.
        mailbox: [u8; 32],
        /// Exclusive upper bound: the `next_cursor` of the last page
        /// the client has safely consumed.
        upto: u64,
    },
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(tag: u8) -> Writer {
        // Reserve the length prefix; filled in `finish`.
        Writer {
            buf: vec![0, 0, 0, 0, tag],
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        debug_assert!(bytes.len() <= MAX_BYTES);
        self.u32(bytes.len() as u32);
        self.raw(bytes);
    }

    fn string(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn group(&mut self, p: &GroupElement) {
        self.raw(&p.encode());
    }

    fn scalar(&mut self, s: &Scalar) {
        self.raw(&s.to_bytes());
    }

    fn schnorr(&mut self, p: &SchnorrProof) {
        self.raw(&p.to_bytes());
    }

    fn dleq(&mut self, p: &DleqProof) {
        self.raw(&p.to_bytes());
    }

    fn seq_len(&mut self, n: usize) {
        debug_assert!(n <= MAX_BATCH);
        self.u32(n as u32);
    }

    fn mix_entry(&mut self, e: &MixEntry) {
        self.group(&e.dh);
        self.bytes(&e.ct);
    }

    fn mix_entries(&mut self, entries: &[MixEntry]) {
        self.seq_len(entries.len());
        // Each DH key pays one per-point encode here (~one invsqrt):
        // ristretto encoding has no batch fast path — see
        // `GroupElement::encode_all` for the bound.  Senders that hold
        // already-encoded wire bytes should forward those instead
        // (the streamed relay path does exactly that).
        for e in entries {
            self.raw(&e.dh.encode());
            self.bytes(&e.ct);
        }
    }

    fn groups(&mut self, points: &[GroupElement]) {
        self.seq_len(points.len());
        for enc in GroupElement::encode_all(points) {
            self.raw(&enc);
        }
    }

    fn submission(&mut self, s: &Submission) {
        self.group(&s.dh);
        self.schnorr(&s.pok);
        self.bytes(&s.ct);
    }

    fn mailbox_message(&mut self, m: &MailboxMessage) {
        self.raw(&m.mailbox);
        self.bytes(&m.sealed);
    }

    fn chain_keys(&mut self, k: &ChainPublicKeys) {
        debug_assert!(k.len() <= MAX_CHAIN_LEN);
        self.u64(k.epoch);
        self.u64(k.inner_epoch);
        self.u32(k.len() as u32);
        for p in &k.bpks {
            self.group(p);
        }
        for p in &k.mpks {
            self.group(p);
        }
        for p in &k.ipks {
            self.group(p);
        }
        for proofs in &k.proofs {
            self.schnorr(&proofs.bsk_pok);
            self.schnorr(&proofs.msk_pok);
            self.schnorr(&proofs.isk_pok);
        }
    }

    fn finish(mut self) -> Vec<u8> {
        let len = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&len.to_le_bytes());
        self.buf
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn array32(&mut self) -> Result<[u8; 32], CodecError> {
        Ok(self.take(32)?.try_into().unwrap())
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        if len > MAX_BYTES {
            return Err(CodecError::Oversized {
                declared: len,
                cap: MAX_BYTES,
            });
        }
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.bytes()?).map_err(|_| CodecError::BadLength)
    }

    fn group(&mut self) -> Result<GroupElement, CodecError> {
        GroupElement::decode(&self.array32()?).ok_or(CodecError::InvalidGroupElement)
    }

    fn scalar(&mut self) -> Result<Scalar, CodecError> {
        Scalar::from_canonical_bytes(&self.array32()?).ok_or(CodecError::InvalidScalar)
    }

    fn schnorr(&mut self) -> Result<SchnorrProof, CodecError> {
        SchnorrProof::from_bytes(self.take(SCHNORR_PROOF_LEN)?).ok_or(CodecError::InvalidProof)
    }

    fn dleq(&mut self) -> Result<DleqProof, CodecError> {
        DleqProof::from_bytes(self.take(DLEQ_PROOF_LEN)?).ok_or(CodecError::InvalidProof)
    }

    fn metrics_len(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_METRICS {
            return Err(CodecError::Oversized {
                declared: n,
                cap: MAX_METRICS,
            });
        }
        Ok(n)
    }

    fn seq_len(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_BATCH {
            return Err(CodecError::Oversized {
                declared: n,
                cap: MAX_BATCH,
            });
        }
        Ok(n)
    }

    fn mix_entry(&mut self) -> Result<MixEntry, CodecError> {
        Ok(MixEntry {
            dh: self.group()?,
            ct: self.bytes()?,
        })
    }

    fn mix_entries(&mut self) -> Result<Vec<MixEntry>, CodecError> {
        let n = self.seq_len()?;
        (0..n).map(|_| self.mix_entry()).collect()
    }

    fn groups(&mut self) -> Result<Vec<GroupElement>, CodecError> {
        let n = self.seq_len()?;
        (0..n).map(|_| self.group()).collect()
    }

    fn submission(&mut self) -> Result<Submission, CodecError> {
        Ok(Submission {
            dh: self.group()?,
            pok: self.schnorr()?,
            ct: self.bytes()?,
        })
    }

    fn mailbox_message(&mut self) -> Result<MailboxMessage, CodecError> {
        let mailbox = self.array32()?;
        let sealed = self.bytes()?;
        if sealed.len() != MAILBOX_MSG_LEN - 32 {
            return Err(CodecError::BadLength);
        }
        Ok(MailboxMessage { mailbox, sealed })
    }

    fn chain_keys(&mut self) -> Result<ChainPublicKeys, CodecError> {
        let epoch = self.u64()?;
        let inner_epoch = self.u64()?;
        let k = self.u32()? as usize;
        if k == 0 || k > MAX_CHAIN_LEN {
            return Err(CodecError::Oversized {
                declared: k,
                cap: MAX_CHAIN_LEN,
            });
        }
        let bpks = (0..k + 1).map(|_| self.group()).collect::<Result<_, _>>()?;
        let mpks = (0..k).map(|_| self.group()).collect::<Result<_, _>>()?;
        let ipks = (0..k).map(|_| self.group()).collect::<Result<_, _>>()?;
        let proofs = (0..k)
            .map(|_| {
                Ok(ServerKeyProofs {
                    bsk_pok: self.schnorr()?,
                    msk_pok: self.schnorr()?,
                    isk_pok: self.schnorr()?,
                })
            })
            .collect::<Result<_, CodecError>>()?;
        Ok(ChainPublicKeys {
            epoch,
            inner_epoch,
            bpks,
            mpks,
            ipks,
            proofs,
        })
    }

    fn accusation(&mut self) -> Result<Accusation, CodecError> {
        Ok(Accusation {
            position: self.u32()? as usize,
            input_index: self.u64()? as usize,
            entry: self.mix_entry()?,
            dec_key: self.group()?,
            key_proof: self.dleq()?,
        })
    }

    fn blame_reveal(&mut self) -> Result<BlameReveal, CodecError> {
        Ok(BlameReveal {
            position: self.u32()? as usize,
            input_index: self.u64()? as usize,
            input: self.mix_entry()?,
            output_dh: self.group()?,
            blind_proof: self.dleq()?,
            dec_key: self.group()?,
            key_proof: self.dleq()?,
        })
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

fn write_snapshot(w: &mut Writer, s: &xrd_obs::Snapshot) {
    debug_assert!(
        s.counters.len() <= MAX_METRICS
            && s.gauges.len() <= MAX_METRICS
            && s.hists.len() <= MAX_METRICS
            && s.spans.len() <= MAX_METRICS
    );
    w.u64(s.uptime_us);
    w.u32(s.counters.len() as u32);
    for (name, v) in &s.counters {
        w.string(name);
        w.u64(*v);
    }
    w.u32(s.gauges.len() as u32);
    for (name, v) in &s.gauges {
        w.string(name);
        w.u64(*v as u64);
    }
    w.u32(s.hists.len() as u32);
    for (name, h) in &s.hists {
        w.string(name);
        w.u64(h.count);
        w.u64(h.sum);
        w.u64(h.min);
        w.u64(h.max);
        // Buckets ship sparse: most of the 252 log-scale buckets are
        // empty for any real latency distribution.
        let nonzero: Vec<(usize, u64)> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect();
        w.u32(nonzero.len() as u32);
        for (i, n) in nonzero {
            w.u16(i as u16);
            w.u64(n);
        }
    }
    w.u32(s.spans.len() as u32);
    for span in &s.spans {
        w.string(&span.name);
        w.u64(span.round);
        w.u64(span.start_us);
        w.u64(span.dur_us);
    }
}

fn read_snapshot(r: &mut Reader<'_>) -> Result<xrd_obs::Snapshot, CodecError> {
    let uptime_us = r.u64()?;
    let n = r.metrics_len()?;
    let counters = (0..n)
        .map(|_| Ok((r.string()?, r.u64()?)))
        .collect::<Result<_, CodecError>>()?;
    let n = r.metrics_len()?;
    let gauges = (0..n)
        .map(|_| Ok((r.string()?, r.u64()? as i64)))
        .collect::<Result<_, CodecError>>()?;
    let n = r.metrics_len()?;
    let hists = (0..n)
        .map(|_| {
            let name = r.string()?;
            let (count, sum, min, max) = (r.u64()?, r.u64()?, r.u64()?, r.u64()?);
            let mut buckets = vec![0u64; xrd_obs::N_BUCKETS];
            let pairs = r.metrics_len()?;
            let mut last: Option<usize> = None;
            for _ in 0..pairs {
                let i = r.u16()? as usize;
                // Canonical sparse form: strictly increasing indices,
                // in range, no zero entries.
                if i >= xrd_obs::N_BUCKETS || last.is_some_and(|p| i <= p) {
                    return Err(CodecError::BadLength);
                }
                last = Some(i);
                let v = r.u64()?;
                if v == 0 {
                    return Err(CodecError::BadLength);
                }
                buckets[i] = v;
            }
            Ok((
                name,
                xrd_obs::HistSnapshot {
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                },
            ))
        })
        .collect::<Result<_, CodecError>>()?;
    let n = r.metrics_len()?;
    let spans = (0..n)
        .map(|_| {
            Ok(xrd_obs::SpanEvent {
                name: r.string()?,
                round: r.u64()?,
                start_us: r.u64()?,
                dur_us: r.u64()?,
            })
        })
        .collect::<Result<_, CodecError>>()?;
    Ok(xrd_obs::Snapshot {
        uptime_us,
        counters,
        gauges,
        hists,
        spans,
    })
}

fn write_accusation(w: &mut Writer, a: &Accusation) {
    w.u32(a.position as u32);
    w.u64(a.input_index as u64);
    w.mix_entry(&a.entry);
    w.group(&a.dec_key);
    w.dleq(&a.key_proof);
}

fn write_blame_reveal(w: &mut Writer, r: &BlameReveal) {
    w.u32(r.position as u32);
    w.u64(r.input_index as u64);
    w.mix_entry(&r.input);
    w.group(&r.output_dh);
    w.dleq(&r.blind_proof);
    w.group(&r.dec_key);
    w.dleq(&r.key_proof);
}

impl Frame {
    /// Encode the full frame, including the 4-byte length prefix.
    pub fn encode(&self) -> Vec<u8> {
        let w = match self {
            Frame::Ok => Writer::new(TAG_OK),
            Frame::Error { code, message } => {
                let mut w = Writer::new(TAG_ERROR);
                w.u16(*code);
                w.string(message);
                w
            }
            Frame::Ping => Writer::new(TAG_PING),
            Frame::Pong => Writer::new(TAG_PONG),
            Frame::Shutdown => Writer::new(TAG_SHUTDOWN),
            Frame::StatsRequest => Writer::new(TAG_STATS_REQUEST),
            Frame::StatsReport { snapshot } => {
                let mut w = Writer::new(TAG_STATS_REPORT);
                write_snapshot(&mut w, snapshot);
                w
            }
            Frame::OpenRound { round } => {
                let mut w = Writer::new(TAG_OPEN_ROUND);
                w.u64(*round);
                w
            }
            Frame::Submit { round, submission } => {
                let mut w = Writer::new(TAG_SUBMIT);
                w.u64(*round);
                w.submission(submission);
                w
            }
            Frame::CloseSubmissions { round } => {
                let mut w = Writer::new(TAG_CLOSE_SUBMISSIONS);
                w.u64(*round);
                w
            }
            Frame::BatchDigest {
                round,
                digest,
                count,
            } => {
                let mut w = Writer::new(TAG_BATCH_DIGEST);
                w.u64(*round);
                w.raw(digest);
                w.u64(*count);
                w
            }
            Frame::GetBatch { round } => {
                let mut w = Writer::new(TAG_GET_BATCH);
                w.u64(*round);
                w
            }
            Frame::SubmissionBatch { round, submissions } => {
                let mut w = Writer::new(TAG_SUBMISSION_BATCH);
                w.u64(*round);
                w.seq_len(submissions.len());
                for s in submissions {
                    w.raw(&s.dh.encode());
                    w.schnorr(&s.pok);
                    w.bytes(&s.ct);
                }
                w
            }
            Frame::MixBatch { round, entries } => {
                let mut w = Writer::new(TAG_MIX_BATCH);
                w.u64(*round);
                w.mix_entries(entries);
                w
            }
            Frame::HopOutput {
                round,
                position,
                outputs,
                proof,
            } => {
                let mut w = Writer::new(TAG_HOP_OUTPUT);
                w.u64(*round);
                w.u32(*position);
                w.mix_entries(outputs);
                w.dleq(proof);
                w
            }
            Frame::HopFailure {
                round,
                position,
                failed,
            } => {
                let mut w = Writer::new(TAG_HOP_FAILURE);
                w.u64(*round);
                w.u32(*position);
                w.seq_len(failed.len());
                for i in failed {
                    w.u64(*i);
                }
                w
            }
            Frame::VerifyHop {
                round,
                position,
                inputs,
                outputs,
                proof,
            } => {
                let mut w = Writer::new(TAG_VERIFY_HOP);
                w.u64(*round);
                w.u32(*position);
                w.mix_entries(inputs);
                w.mix_entries(outputs);
                w.dleq(proof);
                w
            }
            Frame::VerifyResult { ok } => {
                let mut w = Writer::new(TAG_VERIFY_RESULT);
                w.u8(*ok as u8);
                w
            }
            Frame::MixBatchStart { round, total } => {
                let mut w = Writer::new(TAG_MIX_BATCH_START);
                w.u64(*round);
                w.u32(*total);
                w
            }
            Frame::MixBatchChunk { entries } => {
                let mut w = Writer::new(TAG_MIX_BATCH_CHUNK);
                w.mix_entries(entries);
                w
            }
            Frame::MixBatchEnd { digest } => {
                let mut w = Writer::new(TAG_MIX_BATCH_END);
                w.raw(digest);
                w
            }
            Frame::HopOutputStart {
                round,
                position,
                total,
            } => {
                let mut w = Writer::new(TAG_HOP_OUTPUT_START);
                w.u64(*round);
                w.u32(*position);
                w.u32(*total);
                w
            }
            Frame::HopOutputChunk { entries } => {
                let mut w = Writer::new(TAG_HOP_OUTPUT_CHUNK);
                w.mix_entries(entries);
                w
            }
            Frame::HopOutputEnd { digest, proof } => {
                let mut w = Writer::new(TAG_HOP_OUTPUT_END);
                w.raw(digest);
                w.dleq(proof);
                w
            }
            Frame::VerifyHopKeys {
                round,
                position,
                input_dhs,
                output_dhs,
                proof,
            } => {
                let mut w = Writer::new(TAG_VERIFY_HOP_KEYS);
                w.u64(*round);
                w.u32(*position);
                w.groups(input_dhs);
                w.groups(output_dhs);
                w.dleq(proof);
                w
            }
            Frame::MixForward { round } => {
                let mut w = Writer::new(TAG_MIX_FORWARD);
                w.u64(*round);
                w
            }
            Frame::HopForwarded {
                round,
                position,
                input_dhs,
                output_dhs,
                proof,
            } => {
                let mut w = Writer::new(TAG_HOP_FORWARDED);
                w.u64(*round);
                w.u32(*position);
                w.groups(input_dhs);
                w.groups(output_dhs);
                w.dleq(proof);
                w
            }
            Frame::RevealInnerKey { round } => {
                let mut w = Writer::new(TAG_REVEAL_INNER_KEY);
                w.u64(*round);
                w
            }
            Frame::InnerKeyReveal { position, isk } => {
                let mut w = Writer::new(TAG_INNER_KEY_REVEAL);
                w.u32(*position);
                w.scalar(isk);
                w
            }
            Frame::PrepareRotation { inner_epoch } => {
                let mut w = Writer::new(TAG_PREPARE_ROTATION);
                w.u64(*inner_epoch);
                w
            }
            Frame::RotationShare { inner_epoch, share } => {
                let mut w = Writer::new(TAG_ROTATION_SHARE);
                w.u64(*inner_epoch);
                w.u32(share.position as u32);
                w.group(&share.ipk);
                w.schnorr(&share.pok);
                w
            }
            Frame::ActivateRotation { keys } => {
                let mut w = Writer::new(TAG_ACTIVATE_ROTATION);
                w.chain_keys(keys);
                w
            }
            Frame::Accuse { round, input_index } => {
                let mut w = Writer::new(TAG_ACCUSE);
                w.u64(*round);
                w.u64(*input_index);
                w
            }
            Frame::Accusation { accusation } => {
                let mut w = Writer::new(TAG_ACCUSATION);
                write_accusation(&mut w, accusation);
                w
            }
            Frame::RevealSlot {
                round,
                output_index,
            } => {
                let mut w = Writer::new(TAG_REVEAL_SLOT);
                w.u64(*round);
                w.u64(*output_index);
                w
            }
            Frame::SlotReveal { reveal } => {
                let mut w = Writer::new(TAG_SLOT_REVEAL);
                match reveal {
                    None => w.u8(0),
                    Some(r) => {
                        w.u8(1);
                        write_blame_reveal(&mut w, r);
                    }
                }
                w
            }
            Frame::DisputeOpen {
                round,
                accused,
                input_dhs,
                output_dhs,
                proof,
            } => {
                let mut w = Writer::new(TAG_DISPUTE_OPEN);
                w.u64(*round);
                w.u32(*accused);
                w.groups(input_dhs);
                w.groups(output_dhs);
                w.dleq(proof);
                w
            }
            Frame::DisputeEvidence {
                round,
                position,
                accused,
                upheld,
                sig,
            } => {
                let mut w = Writer::new(TAG_DISPUTE_EVIDENCE);
                w.u64(*round);
                w.u32(*position);
                w.u32(*accused);
                w.u8(*upheld as u8);
                w.schnorr(sig);
                w
            }
            Frame::DisputeVerdict {
                round,
                accused,
                claim,
                upheld,
                votes,
            } => {
                let mut w = Writer::new(TAG_DISPUTE_VERDICT);
                w.u64(*round);
                w.u32(*accused);
                w.u8(*claim);
                w.u8(*upheld as u8);
                w.u32(*votes);
                w
            }
            Frame::Deliver {
                round,
                batch,
                messages,
            } => {
                let mut w = Writer::new(TAG_DELIVER);
                w.u64(*round);
                w.u64(*batch);
                w.seq_len(messages.len());
                for m in messages {
                    w.mailbox_message(m);
                }
                w
            }
            Frame::FetchPage {
                mailbox,
                cursor,
                max,
            } => {
                let mut w = Writer::new(TAG_FETCH_PAGE);
                w.raw(mailbox);
                w.u64(*cursor);
                w.u32(*max);
                w
            }
            Frame::MailboxPage {
                sealed,
                next_cursor,
                remaining,
            } => {
                let mut w = Writer::new(TAG_MAILBOX_PAGE);
                w.u64(*next_cursor);
                w.u64(*remaining);
                w.seq_len(sealed.len());
                for (round, s) in sealed {
                    w.u64(*round);
                    w.bytes(s);
                }
                w
            }
            Frame::FetchAck { mailbox, upto } => {
                let mut w = Writer::new(TAG_FETCH_ACK);
                w.raw(mailbox);
                w.u64(*upto);
                w
            }
        };
        let out = w.finish();
        debug_assert!(
            out.len() - 4 <= MAX_FRAME_LEN,
            "frame exceeds MAX_FRAME_LEN"
        );
        out
    }

    /// Decode a frame from its body (everything after the length
    /// prefix: the tag byte plus the payload).
    pub fn decode(body: &[u8]) -> Result<Frame, CodecError> {
        if body.len() > MAX_FRAME_LEN {
            return Err(CodecError::Oversized {
                declared: body.len(),
                cap: MAX_FRAME_LEN,
            });
        }
        let mut r = Reader { buf: body };
        let tag = r.u8()?;
        let frame = match tag {
            TAG_OK => Frame::Ok,
            TAG_ERROR => Frame::Error {
                code: r.u16()?,
                message: r.string()?,
            },
            TAG_PING => Frame::Ping,
            TAG_PONG => Frame::Pong,
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_STATS_REQUEST => Frame::StatsRequest,
            TAG_STATS_REPORT => Frame::StatsReport {
                snapshot: Box::new(read_snapshot(&mut r)?),
            },
            TAG_OPEN_ROUND => Frame::OpenRound { round: r.u64()? },
            TAG_SUBMIT => Frame::Submit {
                round: r.u64()?,
                submission: r.submission()?,
            },
            TAG_CLOSE_SUBMISSIONS => Frame::CloseSubmissions { round: r.u64()? },
            TAG_BATCH_DIGEST => Frame::BatchDigest {
                round: r.u64()?,
                digest: r.array32()?,
                count: r.u64()?,
            },
            TAG_GET_BATCH => Frame::GetBatch { round: r.u64()? },
            TAG_SUBMISSION_BATCH => {
                let round = r.u64()?;
                let n = r.seq_len()?;
                let submissions = (0..n).map(|_| r.submission()).collect::<Result<_, _>>()?;
                Frame::SubmissionBatch { round, submissions }
            }
            TAG_MIX_BATCH => Frame::MixBatch {
                round: r.u64()?,
                entries: r.mix_entries()?,
            },
            TAG_HOP_OUTPUT => Frame::HopOutput {
                round: r.u64()?,
                position: r.u32()?,
                outputs: r.mix_entries()?,
                proof: r.dleq()?,
            },
            TAG_HOP_FAILURE => {
                let round = r.u64()?;
                let position = r.u32()?;
                let n = r.seq_len()?;
                let failed = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
                Frame::HopFailure {
                    round,
                    position,
                    failed,
                }
            }
            TAG_VERIFY_HOP => Frame::VerifyHop {
                round: r.u64()?,
                position: r.u32()?,
                inputs: r.mix_entries()?,
                outputs: r.mix_entries()?,
                proof: r.dleq()?,
            },
            TAG_VERIFY_RESULT => Frame::VerifyResult {
                ok: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(CodecError::BadLength),
                },
            },
            TAG_MIX_BATCH_START => Frame::MixBatchStart {
                round: r.u64()?,
                total: r.u32()?,
            },
            TAG_MIX_BATCH_CHUNK => Frame::MixBatchChunk {
                entries: r.mix_entries()?,
            },
            TAG_MIX_BATCH_END => Frame::MixBatchEnd {
                digest: r.array32()?,
            },
            TAG_HOP_OUTPUT_START => Frame::HopOutputStart {
                round: r.u64()?,
                position: r.u32()?,
                total: r.u32()?,
            },
            TAG_HOP_OUTPUT_CHUNK => Frame::HopOutputChunk {
                entries: r.mix_entries()?,
            },
            TAG_HOP_OUTPUT_END => Frame::HopOutputEnd {
                digest: r.array32()?,
                proof: r.dleq()?,
            },
            TAG_VERIFY_HOP_KEYS => Frame::VerifyHopKeys {
                round: r.u64()?,
                position: r.u32()?,
                input_dhs: r.groups()?,
                output_dhs: r.groups()?,
                proof: r.dleq()?,
            },
            TAG_MIX_FORWARD => Frame::MixForward { round: r.u64()? },
            TAG_HOP_FORWARDED => Frame::HopForwarded {
                round: r.u64()?,
                position: r.u32()?,
                input_dhs: r.groups()?,
                output_dhs: r.groups()?,
                proof: r.dleq()?,
            },
            TAG_REVEAL_INNER_KEY => Frame::RevealInnerKey { round: r.u64()? },
            TAG_INNER_KEY_REVEAL => Frame::InnerKeyReveal {
                position: r.u32()?,
                isk: r.scalar()?,
            },
            TAG_PREPARE_ROTATION => Frame::PrepareRotation {
                inner_epoch: r.u64()?,
            },
            TAG_ROTATION_SHARE => Frame::RotationShare {
                inner_epoch: r.u64()?,
                share: RotationShare {
                    position: r.u32()? as usize,
                    ipk: r.group()?,
                    pok: r.schnorr()?,
                },
            },
            TAG_ACTIVATE_ROTATION => Frame::ActivateRotation {
                keys: r.chain_keys()?,
            },
            TAG_ACCUSE => Frame::Accuse {
                round: r.u64()?,
                input_index: r.u64()?,
            },
            TAG_ACCUSATION => Frame::Accusation {
                accusation: r.accusation()?,
            },
            TAG_REVEAL_SLOT => Frame::RevealSlot {
                round: r.u64()?,
                output_index: r.u64()?,
            },
            TAG_SLOT_REVEAL => Frame::SlotReveal {
                reveal: match r.u8()? {
                    0 => None,
                    1 => Some(Box::new(r.blame_reveal()?)),
                    _ => return Err(CodecError::BadLength),
                },
            },
            TAG_DISPUTE_OPEN => Frame::DisputeOpen {
                round: r.u64()?,
                accused: r.u32()?,
                input_dhs: r.groups()?,
                output_dhs: r.groups()?,
                proof: r.dleq()?,
            },
            TAG_DISPUTE_EVIDENCE => Frame::DisputeEvidence {
                round: r.u64()?,
                position: r.u32()?,
                accused: r.u32()?,
                upheld: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(CodecError::BadLength),
                },
                sig: r.schnorr()?,
            },
            TAG_DISPUTE_VERDICT => Frame::DisputeVerdict {
                round: r.u64()?,
                accused: r.u32()?,
                claim: r.u8()?,
                upheld: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(CodecError::BadLength),
                },
                votes: r.u32()?,
            },
            TAG_DELIVER => {
                let round = r.u64()?;
                let batch = r.u64()?;
                let n = r.seq_len()?;
                let messages = (0..n)
                    .map(|_| r.mailbox_message())
                    .collect::<Result<_, _>>()?;
                Frame::Deliver {
                    round,
                    batch,
                    messages,
                }
            }
            TAG_FETCH_PAGE => Frame::FetchPage {
                mailbox: r.array32()?,
                cursor: r.u64()?,
                max: r.u32()?,
            },
            TAG_MAILBOX_PAGE => {
                let next_cursor = r.u64()?;
                let remaining = r.u64()?;
                let n = r.seq_len()?;
                let sealed = (0..n)
                    .map(|_| {
                        let round = r.u64()?;
                        let s = r.bytes()?;
                        if s.len() != MAILBOX_MSG_LEN - 32 {
                            return Err(CodecError::BadLength);
                        }
                        Ok((round, s))
                    })
                    .collect::<Result<_, _>>()?;
                Frame::MailboxPage {
                    sealed,
                    next_cursor,
                    remaining,
                }
            }
            TAG_FETCH_ACK => Frame::FetchAck {
                mailbox: r.array32()?,
                upto: r.u64()?,
            },
            other => return Err(CodecError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(frame)
    }

    /// This frame's wire tag.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Ok => TAG_OK,
            Frame::Error { .. } => TAG_ERROR,
            Frame::Ping => TAG_PING,
            Frame::Pong => TAG_PONG,
            Frame::Shutdown => TAG_SHUTDOWN,
            Frame::StatsRequest => TAG_STATS_REQUEST,
            Frame::StatsReport { .. } => TAG_STATS_REPORT,
            Frame::OpenRound { .. } => TAG_OPEN_ROUND,
            Frame::Submit { .. } => TAG_SUBMIT,
            Frame::CloseSubmissions { .. } => TAG_CLOSE_SUBMISSIONS,
            Frame::BatchDigest { .. } => TAG_BATCH_DIGEST,
            Frame::GetBatch { .. } => TAG_GET_BATCH,
            Frame::SubmissionBatch { .. } => TAG_SUBMISSION_BATCH,
            Frame::MixBatch { .. } => TAG_MIX_BATCH,
            Frame::HopOutput { .. } => TAG_HOP_OUTPUT,
            Frame::HopFailure { .. } => TAG_HOP_FAILURE,
            Frame::VerifyHop { .. } => TAG_VERIFY_HOP,
            Frame::VerifyResult { .. } => TAG_VERIFY_RESULT,
            Frame::MixBatchStart { .. } => TAG_MIX_BATCH_START,
            Frame::MixBatchChunk { .. } => TAG_MIX_BATCH_CHUNK,
            Frame::MixBatchEnd { .. } => TAG_MIX_BATCH_END,
            Frame::HopOutputStart { .. } => TAG_HOP_OUTPUT_START,
            Frame::HopOutputChunk { .. } => TAG_HOP_OUTPUT_CHUNK,
            Frame::HopOutputEnd { .. } => TAG_HOP_OUTPUT_END,
            Frame::VerifyHopKeys { .. } => TAG_VERIFY_HOP_KEYS,
            Frame::MixForward { .. } => TAG_MIX_FORWARD,
            Frame::HopForwarded { .. } => TAG_HOP_FORWARDED,
            Frame::RevealInnerKey { .. } => TAG_REVEAL_INNER_KEY,
            Frame::InnerKeyReveal { .. } => TAG_INNER_KEY_REVEAL,
            Frame::PrepareRotation { .. } => TAG_PREPARE_ROTATION,
            Frame::RotationShare { .. } => TAG_ROTATION_SHARE,
            Frame::ActivateRotation { .. } => TAG_ACTIVATE_ROTATION,
            Frame::Accuse { .. } => TAG_ACCUSE,
            Frame::Accusation { .. } => TAG_ACCUSATION,
            Frame::RevealSlot { .. } => TAG_REVEAL_SLOT,
            Frame::SlotReveal { .. } => TAG_SLOT_REVEAL,
            Frame::DisputeOpen { .. } => TAG_DISPUTE_OPEN,
            Frame::DisputeEvidence { .. } => TAG_DISPUTE_EVIDENCE,
            Frame::DisputeVerdict { .. } => TAG_DISPUTE_VERDICT,
            Frame::Deliver { .. } => TAG_DELIVER,
            Frame::FetchPage { .. } => TAG_FETCH_PAGE,
            Frame::MailboxPage { .. } => TAG_MAILBOX_PAGE,
            Frame::FetchAck { .. } => TAG_FETCH_ACK,
        }
    }

    /// Human-readable name for a wire tag (the per-tag frame counters
    /// in the metrics registry are keyed by these), or `None` for a tag
    /// this protocol version does not know.
    pub fn tag_name(tag: u8) -> Option<&'static str> {
        Some(match tag {
            TAG_OK => "Ok",
            TAG_ERROR => "Error",
            TAG_PING => "Ping",
            TAG_PONG => "Pong",
            TAG_SHUTDOWN => "Shutdown",
            TAG_STATS_REQUEST => "StatsRequest",
            TAG_STATS_REPORT => "StatsReport",
            TAG_OPEN_ROUND => "OpenRound",
            TAG_SUBMIT => "Submit",
            TAG_CLOSE_SUBMISSIONS => "CloseSubmissions",
            TAG_BATCH_DIGEST => "BatchDigest",
            TAG_GET_BATCH => "GetBatch",
            TAG_SUBMISSION_BATCH => "SubmissionBatch",
            TAG_MIX_BATCH => "MixBatch",
            TAG_HOP_OUTPUT => "HopOutput",
            TAG_HOP_FAILURE => "HopFailure",
            TAG_VERIFY_HOP => "VerifyHop",
            TAG_VERIFY_RESULT => "VerifyResult",
            TAG_MIX_BATCH_START => "MixBatchStart",
            TAG_MIX_BATCH_CHUNK => "MixBatchChunk",
            TAG_MIX_BATCH_END => "MixBatchEnd",
            TAG_HOP_OUTPUT_START => "HopOutputStart",
            TAG_HOP_OUTPUT_CHUNK => "HopOutputChunk",
            TAG_HOP_OUTPUT_END => "HopOutputEnd",
            TAG_VERIFY_HOP_KEYS => "VerifyHopKeys",
            TAG_MIX_FORWARD => "MixForward",
            TAG_HOP_FORWARDED => "HopForwarded",
            TAG_REVEAL_INNER_KEY => "RevealInnerKey",
            TAG_INNER_KEY_REVEAL => "InnerKeyReveal",
            TAG_PREPARE_ROTATION => "PrepareRotation",
            TAG_ROTATION_SHARE => "RotationShare",
            TAG_ACTIVATE_ROTATION => "ActivateRotation",
            TAG_ACCUSE => "Accuse",
            TAG_ACCUSATION => "Accusation",
            TAG_REVEAL_SLOT => "RevealSlot",
            TAG_SLOT_REVEAL => "SlotReveal",
            TAG_DISPUTE_OPEN => "DisputeOpen",
            TAG_DISPUTE_EVIDENCE => "DisputeEvidence",
            TAG_DISPUTE_VERDICT => "DisputeVerdict",
            TAG_DELIVER => "Deliver",
            TAG_FETCH_PAGE => "FetchPage",
            TAG_MAILBOX_PAGE => "MailboxPage",
            TAG_FETCH_ACK => "FetchAck",
            _ => return None,
        })
    }
}

/// Serialize one mix server's launch configuration — its secrets plus
/// the chain's active public bundle — for distribution to a standalone
/// daemon process (`xrd-netd mix --config <file>`).
pub fn encode_server_config(
    secrets: &xrd_mixnet::chain_keys::ServerSecrets,
    public: &ChainPublicKeys,
) -> Vec<u8> {
    let mut w = Writer::new(0);
    w.u32(secrets.position as u32);
    w.scalar(&secrets.bsk);
    w.scalar(&secrets.msk);
    w.scalar(&secrets.isk);
    w.chain_keys(public);
    // Strip the frame header (length + tag): this is a file format, not
    // a wire frame.
    w.finish()[5..].to_vec()
}

/// Parse a [`encode_server_config`] blob.
pub fn decode_server_config(
    bytes: &[u8],
) -> Result<(xrd_mixnet::chain_keys::ServerSecrets, ChainPublicKeys), CodecError> {
    let mut r = Reader { buf: bytes };
    let position = r.u32()? as usize;
    let secrets = xrd_mixnet::chain_keys::ServerSecrets {
        position,
        bsk: r.scalar()?,
        msk: r.scalar()?,
        isk: r.scalar()?,
    };
    let public = r.chain_keys()?;
    r.finish()?;
    if position >= public.len() {
        return Err(CodecError::BadLength);
    }
    Ok((secrets, public))
}

// ---------------------------------------------------------------------
// Streamed batches: digest, builder, assembler
// ---------------------------------------------------------------------

/// The running digest a streamed batch is closed with
/// ([`Frame::MixBatchEnd`] / [`Frame::HopOutputEnd`]): Blake2b-256 over
/// the canonical wire encoding of every entry, in stream order.
///
/// Chunking-invariant by construction — the absorbed byte stream is the
/// concatenation of per-entry encodings (`dh ‖ u32 ct-len ‖ ct`), which
/// is independent of how the entries were cut into chunks.  A sender
/// or relay that holds the encoded chunk frames absorbs their payload
/// bytes for free ([`StreamDigest::absorb_chunk_payload`]); a receiver
/// that only holds decoded entries re-derives the same bytes
/// ([`StreamDigest::absorb_entries`], one batched encoding pass).
///
/// This is a *transport* integrity check (truncated, duplicated or
/// re-ordered chunks fail fast, before any blame machinery engages);
/// Byzantine tampering is caught by the hop attestations and the AEAD
/// layers regardless.
pub struct StreamDigest {
    h: xrd_crypto::Blake2b,
}

impl Default for StreamDigest {
    fn default() -> StreamDigest {
        StreamDigest::new()
    }
}

impl StreamDigest {
    /// A fresh digest (domain-separated from every other hash in XRD).
    pub fn new() -> StreamDigest {
        let mut h = xrd_crypto::Blake2b::new(32);
        h.update(b"xrd/stream-batch");
        StreamDigest { h }
    }

    /// Absorb entries by re-deriving their canonical encodings (one
    /// per-point encode each; prefer [`BatchAssembler::absorb_raw`]
    /// wherever the already-encoded wire bytes are at hand).
    pub fn absorb_entries(&mut self, entries: &[MixEntry]) {
        for e in entries {
            self.h.update(&e.dh.encode());
            self.h.update(&(e.ct.len() as u32).to_le_bytes());
            self.h.update(&e.ct);
        }
    }

    /// Absorb the payload bytes of an already-encoded chunk frame (the
    /// bytes after the tag and entry count — see
    /// [`ChunkedBatch::CHUNK_PAYLOAD_OFFSET`]).  Byte-identical to
    /// [`StreamDigest::absorb_entries`] on the decoded entries, because
    /// the wire only ever carries canonical encodings.
    pub fn absorb_chunk_payload(&mut self, payload: &[u8]) {
        self.h.update(payload);
    }

    /// The 32-byte stream digest.
    pub fn finalize(self) -> [u8; 32] {
        self.h.finalize_32()
    }
}

/// The signing context for [`Frame::DisputeEvidence`]: a
/// domain-separated hash binding the witness's verdict to the exact
/// disputed statement — round, accused position, the verdict bit, and
/// the full attestation (key columns plus proof).  Both sides derive
/// it independently: the witness signs it with its mix secret `msk`,
/// and any server verifies the signature against the witness's `mpk`,
/// so evidence is transferable without trusting the party relaying it.
pub fn dispute_context(
    round: u64,
    accused: u32,
    upheld: bool,
    input_dhs: &[GroupElement],
    output_dhs: &[GroupElement],
    proof: &DleqProof,
) -> [u8; 32] {
    let mut h = xrd_crypto::Blake2b::new(32);
    h.update(b"xrd/dispute-evidence");
    h.update(&round.to_le_bytes());
    h.update(&accused.to_le_bytes());
    h.update(&[upheld as u8]);
    h.update(&(input_dhs.len() as u32).to_le_bytes());
    for enc in GroupElement::encode_all(input_dhs) {
        h.update(&enc);
    }
    h.update(&(output_dhs.len() as u32).to_le_bytes());
    for enc in GroupElement::encode_all(output_dhs) {
        h.update(&enc);
    }
    h.update(&proof.to_bytes());
    h.finalize_32()
}

/// Why a chunked batch stream failed to assemble.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// The Start frame's round does not match the round the receiver
    /// is assembling for.
    WrongRound {
        /// Round the Start frame declared.
        got: u64,
        /// Round the receiver expected.
        want: u64,
    },
    /// The Start frame declared more entries than [`MAX_BATCH`].
    TooLarge {
        /// Declared entry total.
        declared: usize,
    },
    /// Chunks carried more entries than the Start frame declared.
    Overrun {
        /// Entries received so far (after the offending chunk).
        received: usize,
        /// The declared total.
        total: usize,
    },
    /// The End frame arrived before the declared total was received.
    Incomplete {
        /// Entries received.
        received: usize,
        /// The declared total.
        total: usize,
    },
    /// The End frame's digest does not match the running digest over
    /// the received entries.
    DigestMismatch,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::WrongRound { got, want } => {
                write!(f, "stream for round {got}, expected round {want}")
            }
            StreamError::TooLarge { declared } => {
                write!(f, "stream declares {declared} entries, cap {MAX_BATCH}")
            }
            StreamError::Overrun { received, total } => {
                write!(f, "stream overran: {received} entries of {total} declared")
            }
            StreamError::Incomplete { received, total } => {
                write!(f, "stream ended early: {received} entries of {total}")
            }
            StreamError::DigestMismatch => write!(f, "stream digest mismatch"),
        }
    }
}

impl std::error::Error for StreamError {}

/// A batch cut into encoded streaming frames: one
/// [`Frame::MixBatchStart`], the [`Frame::MixBatchChunk`]s, and the
/// closing [`Frame::MixBatchEnd`] carrying the stream digest — the
/// sender half of a streamed hop.
///
/// Building encodes each entry exactly once and derives the digest
/// from the already-encoded chunk payloads, so streaming costs the
/// sender no more encoding work than one monolithic
/// [`Frame::MixBatch`] would.
///
/// ```
/// use xrd_net::codec::{ChunkedBatch, BatchAssembler, Frame};
/// use xrd_mixnet::message::MixEntry;
/// use xrd_crypto::{GroupElement, Scalar};
///
/// let entries: Vec<MixEntry> = (1..=5u64)
///     .map(|i| MixEntry {
///         dh: GroupElement::base_mul(&Scalar::from_u64(i)),
///         ct: vec![i as u8; 8],
///     })
///     .collect();
///
/// // Sender: cut the batch into 2-entry chunks.
/// let stream = ChunkedBatch::build(7, &entries, 2);
/// assert_eq!(stream.frames().len(), 2 + entries.len().div_ceil(2));
///
/// // Receiver: reassemble — any chunking yields the same batch.
/// let mut assembler: Option<BatchAssembler> = None;
/// let mut rebuilt = None;
/// for bytes in stream.frames() {
///     match Frame::decode(&bytes[4..]).unwrap() {
///         Frame::MixBatchStart { round, total } => {
///             assembler = Some(BatchAssembler::begin(round, total).unwrap());
///         }
///         Frame::MixBatchChunk { entries } => {
///             assembler.as_mut().unwrap().absorb(entries).unwrap();
///         }
///         Frame::MixBatchEnd { digest } => {
///             rebuilt = Some(assembler.take().unwrap().finish(digest).unwrap());
///         }
///         other => panic!("unexpected {other:?}"),
///     }
/// }
/// assert_eq!(rebuilt.unwrap(), entries);
/// ```
pub struct ChunkedBatch {
    frames: Vec<Vec<u8>>,
    digest: [u8; 32],
    total: usize,
}

impl ChunkedBatch {
    /// Offset of the digest-relevant payload inside an encoded chunk
    /// frame: 4-byte length prefix + 1-byte tag + 4-byte entry count.
    pub const CHUNK_PAYLOAD_OFFSET: usize = 9;

    /// Cut `entries` into `chunk_size`-entry streaming frames for
    /// `round`.  `chunk_size` is clamped to `1..=MAX_BATCH`; the batch
    /// itself must fit [`MAX_BATCH`].
    pub fn build(round: u64, entries: &[MixEntry], chunk_size: usize) -> ChunkedBatch {
        assert!(entries.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
        let (chunks, digest) = encode_chunk_frames(TAG_MIX_BATCH_CHUNK, entries, chunk_size);
        let mut frames = Vec::with_capacity(2 + chunks.len());
        frames.push(
            Frame::MixBatchStart {
                round,
                total: entries.len() as u32,
            }
            .encode(),
        );
        frames.extend(chunks);
        frames.push(Frame::MixBatchEnd { digest }.encode());
        ChunkedBatch {
            frames,
            digest,
            total: entries.len(),
        }
    }

    /// The encoded frames (length prefix included), in send order.
    pub fn frames(&self) -> &[Vec<u8>] {
        &self.frames
    }

    /// The stream digest the End frame carries.
    pub fn digest(&self) -> [u8; 32] {
        self.digest
    }

    /// Total entries across all chunks.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// The receiver half of a streamed batch: created from a Start frame,
/// fed each chunk's entries in arrival order, closed against the End
/// frame's digest.  Enforces the declared total and the running
/// digest, so any truncated, duplicated, over-long or re-ordered
/// stream errors out cleanly instead of assembling a wrong batch.
pub struct BatchAssembler {
    round: u64,
    total: usize,
    entries: Vec<MixEntry>,
    digest: StreamDigest,
}

impl BatchAssembler {
    /// Begin assembling a stream declared as `total` entries for
    /// `round` (from [`Frame::MixBatchStart`] /
    /// [`Frame::HopOutputStart`] fields).
    pub fn begin(round: u64, total: u32) -> Result<BatchAssembler, StreamError> {
        let total = total as usize;
        if total > MAX_BATCH {
            return Err(StreamError::TooLarge { declared: total });
        }
        Ok(BatchAssembler {
            round,
            total,
            entries: Vec::with_capacity(total),
            digest: StreamDigest::new(),
        })
    }

    /// [`BatchAssembler::begin`], additionally checking the stream's
    /// declared round against the round the receiver is running.
    pub fn begin_for_round(
        round: u64,
        total: u32,
        want: u64,
    ) -> Result<BatchAssembler, StreamError> {
        if round != want {
            return Err(StreamError::WrongRound { got: round, want });
        }
        BatchAssembler::begin(round, total)
    }

    /// The round this stream belongs to.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The declared entry total.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Entries received so far.
    pub fn received(&self) -> usize {
        self.entries.len()
    }

    /// Absorb one chunk.  Returns the chunk's start index within the
    /// assembled batch (so callers can hand the exact slice to a
    /// worker while the stream continues).
    pub fn absorb(&mut self, entries: Vec<MixEntry>) -> Result<usize, StreamError> {
        self.digest.absorb_entries(&entries);
        self.absorb_predigested(entries)
    }

    /// [`BatchAssembler::absorb`] for callers that already hold the
    /// chunk's raw payload bytes (a relay): absorbs those into the
    /// digest instead of re-encoding the entries.  The caller is
    /// responsible for `payload` actually being the encoding of
    /// `entries` (true by construction when both came off one frame).
    pub fn absorb_raw(
        &mut self,
        entries: Vec<MixEntry>,
        payload: &[u8],
    ) -> Result<usize, StreamError> {
        self.digest.absorb_chunk_payload(payload);
        self.absorb_predigested(entries)
    }

    fn absorb_predigested(&mut self, entries: Vec<MixEntry>) -> Result<usize, StreamError> {
        let start = self.entries.len();
        if start + entries.len() > self.total {
            return Err(StreamError::Overrun {
                received: start + entries.len(),
                total: self.total,
            });
        }
        self.entries.extend(entries);
        Ok(start)
    }

    /// The entries assembled so far (in stream order).
    pub fn assembled(&self) -> &[MixEntry] {
        &self.entries
    }

    /// Close the stream against the End frame's digest, yielding the
    /// full batch.
    pub fn finish(self, digest: [u8; 32]) -> Result<Vec<MixEntry>, StreamError> {
        if self.entries.len() != self.total {
            return Err(StreamError::Incomplete {
                received: self.entries.len(),
                total: self.total,
            });
        }
        if self.digest.finalize() != digest {
            return Err(StreamError::DigestMismatch);
        }
        Ok(self.entries)
    }
}

/// Encode `entries` as a run of `tag`-framed chunk frames, returning
/// the encoded frames and the [`StreamDigest`] over their payloads —
/// the one loop both chunk-stream producers
/// ([`ChunkedBatch::build`], [`encode_hop_output_stream`]) share, so
/// the payload layout and digest discipline cannot diverge.
fn encode_chunk_frames(
    tag: u8,
    entries: &[MixEntry],
    chunk_size: usize,
) -> (Vec<Vec<u8>>, [u8; 32]) {
    let chunk_size = chunk_size.clamp(1, MAX_BATCH);
    let mut frames = Vec::with_capacity(entries.len().div_ceil(chunk_size));
    let mut digest = StreamDigest::new();
    for chunk in entries.chunks(chunk_size) {
        let mut w = Writer::new(tag);
        w.mix_entries(chunk);
        let encoded = w.finish();
        digest.absorb_chunk_payload(&encoded[ChunkedBatch::CHUNK_PAYLOAD_OFFSET..]);
        frames.push(encoded);
    }
    (frames, digest.finalize())
}

/// Default entries per streamed chunk.  Small enough that the first
/// chunk of a hop's output reaches the next hop (and its crypto
/// starts) long before the last chunk is even encoded; large enough
/// that per-chunk overheads (frame header, digest update, one job
/// dispatch) stay well under 1% of the chunk's kernel cost.
pub const STREAM_CHUNK: usize = 64;

/// Encode a streamed hop response — [`Frame::HopOutputStart`], the
/// [`Frame::HopOutputChunk`]s, and the closing [`Frame::HopOutputEnd`]
/// carrying the stream digest plus the hop's aggregate attestation —
/// as one contiguous byte string (what a deferred daemon job hands
/// back to the reactor).  Each entry is encoded exactly once; the
/// digest is derived from the encoded payloads.
pub fn encode_hop_output_stream(
    round: u64,
    position: u32,
    outputs: &[MixEntry],
    proof: &DleqProof,
    chunk_size: usize,
) -> Vec<u8> {
    let (chunks, digest) = encode_chunk_frames(TAG_HOP_OUTPUT_CHUNK, outputs, chunk_size);
    let mut wire = Frame::HopOutputStart {
        round,
        position,
        total: outputs.len() as u32,
    }
    .encode();
    for chunk in &chunks {
        wire.extend_from_slice(chunk);
    }
    wire.extend_from_slice(
        &Frame::HopOutputEnd {
            digest,
            proof: *proof,
        }
        .encode(),
    );
    wire
}

/// Rewrite a received [`Frame::HopOutputChunk`] *body* (tag byte plus
/// payload, as handed back by the raw receive path) into a complete
/// [`Frame::MixBatchChunk`] wire frame for the next hop — the relay's
/// forward path.  The two chunk frames are payload-compatible by
/// construction, so forwarding costs one byte rewrite and no
/// re-encoding.  Returns `None` if `body` is not a hop-output chunk.
pub fn reframe_output_chunk(body: &[u8]) -> Option<Vec<u8>> {
    if body.first() != Some(&TAG_HOP_OUTPUT_CHUNK) {
        return None;
    }
    let mut wire = Vec::with_capacity(4 + body.len());
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.push(TAG_MIX_BATCH_CHUNK);
    wire.extend_from_slice(&body[1..]);
    Some(wire)
}

// ---------------------------------------------------------------------
// Incremental decoding
// ---------------------------------------------------------------------

/// An incremental, non-blocking frame decoder: feed it bytes as they
/// arrive off a socket (in chunks of any size, down to one byte at a
/// time) and pull complete [`Frame`]s out as they become available.
///
/// This is the event-loop counterpart of [`read_frame`]: where
/// `read_frame` blocks until a whole frame is buffered, `FrameDecoder`
/// never blocks and never copies more than once — partial frames stay
/// buffered until completed by a later `feed`.
///
/// Error semantics mirror the blocking reader's:
///
/// * a malformed frame *body* (bad tag, bad encoding, trailing bytes)
///   is consumed and reported per frame — the stream itself is still
///   framed, so decoding could in principle continue;
/// * a bad *length prefix* (zero or over [`MAX_FRAME_LEN`]) means the
///   stream is desynchronized; the decoder latches the error and
///   reports it from every subsequent [`FrameDecoder::try_frame`].
///
/// ```
/// use xrd_net::codec::{Frame, FrameDecoder};
///
/// let wire: Vec<u8> = [Frame::Ping, Frame::OpenRound { round: 4 }]
///     .iter()
///     .flat_map(|f| f.encode())
///     .collect();
///
/// let mut decoder = FrameDecoder::new();
/// decoder.feed(&wire[..3]); // a partial length prefix…
/// assert!(decoder.try_frame().is_none()); // …is not a frame yet
/// decoder.feed(&wire[3..]);
/// assert_eq!(decoder.try_frame().unwrap().unwrap(), Frame::Ping);
/// assert_eq!(
///     decoder.try_frame().unwrap().unwrap(),
///     Frame::OpenRound { round: 4 }
/// );
/// assert!(decoder.try_frame().is_none());
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Start of un-consumed bytes in `buf` (consumed prefix is
    /// compacted away lazily, so pulling frames is O(frame), not
    /// O(buffer)).
    pos: usize,
    /// Latched framing-level failure (bad length prefix).
    desynced: Option<CodecError>,
}

impl FrameDecoder {
    /// A decoder with nothing buffered.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Buffer `bytes` (a chunk read off the wire) for decoding.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 64 * 1024 {
            // Keep the consumed prefix from growing without bound on
            // long-lived connections.
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to pull one complete frame out of the buffer.
    ///
    /// * `None` — not enough bytes yet; feed more.
    /// * `Some(Ok(frame))` — one frame, consumed from the buffer.
    /// * `Some(Err(_))` — a malformed frame (consumed) or a
    ///   desynchronized stream (latched; see type-level docs).
    pub fn try_frame(&mut self) -> Option<Result<Frame, CodecError>> {
        if let Some(e) = &self.desynced {
            return Some(Err(e.clone()));
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            let e = CodecError::Oversized {
                declared: len,
                cap: MAX_FRAME_LEN,
            };
            self.desynced = Some(e.clone());
            return Some(Err(e));
        }
        if avail.len() < 4 + len {
            return None;
        }
        let frame = Frame::decode(&avail[4..4 + len]);
        self.pos += 4 + len;
        Some(frame)
    }
}

/// Read one frame from a stream (blocking).  Returns `Ok(None)` on a
/// clean EOF at a frame boundary.
pub fn read_frame<R: std::io::Read>(
    stream: &mut R,
) -> std::io::Result<Option<Result<Frame, CodecError>>> {
    Ok(read_frame_with_len(stream)?.map(|r| r.map(|(frame, _)| frame)))
}

/// [`read_frame`], additionally reporting the frame's total size on the
/// wire (length prefix included) for byte accounting.
pub fn read_frame_with_len<R: std::io::Read>(
    stream: &mut R,
) -> std::io::Result<Option<Result<(Frame, u64), CodecError>>> {
    Ok(
        read_frame_with_body(stream)?
            .map(|r| r.map(|(frame, body)| (frame, 4 + body.len() as u64))),
    )
}

/// [`read_frame`], additionally returning the frame's *body* bytes
/// (tag plus payload, without the length prefix) — for relays that
/// forward a frame's payload verbatim (see [`reframe_output_chunk`])
/// or digest it without re-encoding.
#[allow(clippy::type_complexity)] // mirrors read_frame_with_len's shape
pub fn read_frame_with_body<R: std::io::Read>(
    stream: &mut R,
) -> std::io::Result<Option<Result<(Frame, Vec<u8>), CodecError>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match stream.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None), // clean EOF
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Ok(Some(Err(CodecError::Oversized {
            declared: len,
            cap: MAX_FRAME_LEN,
        })));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Some(Frame::decode(&body).map(|frame| (frame, body))))
}

/// Write one frame to a stream (blocking).  Refuses (with
/// `InvalidData`) to ship a frame the receiver would reject as
/// oversized — the runtime counterpart of the encoder's debug
/// assertions.
pub fn write_frame<W: std::io::Write>(stream: &mut W, frame: &Frame) -> std::io::Result<()> {
    let encoded = frame.encode();
    if encoded.len() - 4 > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", encoded.len() - 4),
        ));
    }
    stream.write_all(&encoded)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_frames_roundtrip() {
        for frame in [Frame::Ok, Frame::Ping, Frame::Shutdown] {
            let enc = frame.encode();
            let body = &enc[4..];
            assert_eq!(Frame::decode(body).unwrap(), frame);
        }
    }

    #[test]
    fn length_prefix_matches_body() {
        let frame = Frame::OpenRound { round: 99 };
        let enc = frame.encode();
        let len = u32::from_le_bytes(enc[..4].try_into().unwrap()) as usize;
        assert_eq!(len, enc.len() - 4);
    }

    #[test]
    fn error_frame_carries_code_and_message() {
        let frame = Frame::Error {
            code: error_code::REJECTED_SUBMISSION,
            message: "bad pok".into(),
        };
        let enc = frame.encode();
        assert_eq!(Frame::decode(&enc[4..]).unwrap(), frame);
    }

    #[test]
    fn stream_roundtrip() {
        let frames = vec![
            Frame::OpenRound { round: 3 },
            Frame::Ok,
            Frame::FetchPage {
                mailbox: [9; 32],
                cursor: 17,
                max: 64,
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        for f in &frames {
            let got = read_frame(&mut cursor).unwrap().unwrap().unwrap();
            assert_eq!(&got, f);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn zero_and_oversized_lengths_rejected() {
        let mut zero = std::io::Cursor::new(vec![0u8, 0, 0, 0]);
        assert!(matches!(
            read_frame(&mut zero).unwrap().unwrap(),
            Err(CodecError::Oversized { .. })
        ));
        let huge = (MAX_FRAME_LEN as u32 + 1).to_le_bytes().to_vec();
        let mut huge = std::io::Cursor::new(huge);
        assert!(matches!(
            read_frame(&mut huge).unwrap().unwrap(),
            Err(CodecError::Oversized { .. })
        ));
    }

    #[test]
    fn incremental_decoder_yields_frames_byte_at_a_time() {
        let frames = vec![
            Frame::OpenRound { round: 7 },
            Frame::Error {
                code: error_code::BAD_STATE,
                message: "nope".into(),
            },
            Frame::FetchAck {
                mailbox: [4; 32],
                upto: 9,
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        // Dribble the stream one byte at a time: each frame must appear
        // exactly when its last byte lands, never earlier.
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &wire {
            decoder.feed(&[b]);
            while let Some(f) = decoder.try_frame() {
                got.push(f.expect("valid frame"));
            }
        }
        assert_eq!(got, frames);
        assert_eq!(decoder.buffered(), 0);
        assert!(decoder.try_frame().is_none());
    }

    #[test]
    fn incremental_decoder_handles_coalesced_frames() {
        // Several frames in one feed: all must come out, in order.
        let frames = vec![Frame::Ok, Frame::Ping, Frame::OpenRound { round: 1 }];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let mut decoder = FrameDecoder::new();
        decoder.feed(&wire);
        for f in &frames {
            assert_eq!(decoder.try_frame().unwrap().unwrap(), *f);
        }
        assert!(decoder.try_frame().is_none());
    }

    #[test]
    fn incremental_decoder_reports_malformed_body_and_recovers() {
        // A well-framed but bogus body (unknown tag) is consumed and
        // reported; the next frame on the stream still decodes.
        let mut wire = 3u32.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0xEE, 1, 2]);
        wire.extend_from_slice(&Frame::Ping.encode());
        let mut decoder = FrameDecoder::new();
        decoder.feed(&wire);
        assert_eq!(
            decoder.try_frame().unwrap(),
            Err(CodecError::UnknownTag(0xEE))
        );
        assert_eq!(decoder.try_frame().unwrap().unwrap(), Frame::Ping);
    }

    #[test]
    fn incremental_decoder_latches_on_bad_length_prefix() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        decoder.feed(&Frame::Ping.encode());
        // A desynchronized stream stays failed: the bytes after a bogus
        // length cannot be trusted as a frame boundary.
        for _ in 0..2 {
            assert!(matches!(
                decoder.try_frame().unwrap(),
                Err(CodecError::Oversized { .. })
            ));
        }
    }

    #[test]
    fn incremental_decoder_truncated_frame_stays_pending() {
        let enc = Frame::OpenRound { round: 3 }.encode();
        let mut decoder = FrameDecoder::new();
        decoder.feed(&enc[..enc.len() - 1]);
        assert!(decoder.try_frame().is_none(), "missing final byte");
        assert_eq!(decoder.buffered(), enc.len() - 1);
        decoder.feed(&enc[enc.len() - 1..]);
        assert_eq!(
            decoder.try_frame().unwrap().unwrap(),
            Frame::OpenRound { round: 3 }
        );
    }

    #[test]
    fn eof_mid_frame_is_io_error() {
        // Length says 10 bytes, only 3 present.
        let mut wire = 10u32.to_le_bytes().to_vec();
        wire.extend_from_slice(&[1, 2, 3]);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(read_frame(&mut cursor).is_err());
    }
}
