//! A hand-rolled, dependency-free event-driven reactor for the XRD
//! daemons: one thread, thousands of connections.
//!
//! The daemons used to burn one OS thread per client connection, which
//! caps a single daemon far below the paper's per-server client
//! populations (§8 assumes hundreds of thousands of submitters per
//! round).  The reactor replaces that with the classic single-threaded
//! readiness loop:
//!
//! * every socket (listener included) is nonblocking;
//! * a `Poller` — raw `epoll` syscalls on Linux/x86-64, a degraded
//!   sweep poller on other unix targets, no external crates either
//!   way — reports which sockets are ready;
//! * each connection owns a tiny state machine: an incremental
//!   [`crate::codec::FrameDecoder`] accumulating request
//!   bytes and an outbound buffer drained as the socket accepts them.
//!
//! A peer that dribbles a frame one byte at a time, stalls mid-frame,
//! or stops reading its responses costs the daemon nothing but a
//! buffer: the loop simply moves on to whichever socket is ready next.
//! Backpressure is structural — a connection's next request is not
//! *processed* (or even read off the kernel buffer) until its previous
//! response has fully drained, so a slow reader throttles itself via
//! TCP flow control instead of ballooning daemon memory.
//!
//! Cheap frames (submission checks, mailbox ops, stream bookkeeping)
//! are handled inline on the reactor thread.  Heavy frames — hop
//! crypto, attestation verification — are **offloaded**: the
//! [`Service`] returns [`Outcome::Defer`] and the reactor runs the job
//! on a small fixed-size [`WorkerPool`], parking that connection's
//! request stream in a *pending response slot* until the job's frames
//! come back (over a self-pipe wakeup, so completions are picked up
//! immediately, not at the next poll timeout).  The loop itself never
//! blocks on crypto: submissions keep flowing on other connections
//! while a hop is in flight.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use xrd_obs::{Counter, Gauge, Histogram};

use crate::codec::{error_code, Frame, FrameDecoder};

/// Identifies one connection for the lifetime of a reactor (tokens are
/// never reused, so a stale id can never address a newer connection).
pub type ConnId = u64;

/// A deferred response computation, run on the [`WorkerPool`].  It
/// returns *encoded* wire bytes (one or more complete frames,
/// concatenated — see [`Frame::encode`]), which the reactor queues to
/// the deferring connection verbatim.  Returning bytes rather than
/// frames keeps response encoding — a per-entry batched group encode
/// for hop outputs — off the reactor thread, and lets a streamed
/// response derive its digest from the encoded payloads it just
/// built.
pub type Job = Box<dyn FnOnce() -> Vec<u8> + Send + 'static>;

/// What a [`Service`] wants done with one request frame.
pub enum Outcome {
    /// Respond with these frames, in order.  An empty vector means "no
    /// response; keep serving" — how streamed request chunks are
    /// acknowledged (they aren't: the stream's End gets the response).
    Reply(Vec<Frame>),
    /// Produce the response asynchronously: the reactor parks this
    /// connection's request stream (its *pending slot* is occupied),
    /// runs the job on the worker pool, and queues whatever frames it
    /// returns once complete.  Other connections are served
    /// throughout.
    Defer(Job),
}

impl Outcome {
    /// Shorthand for a single-frame reply.
    pub fn reply(frame: Frame) -> Outcome {
        Outcome::Reply(vec![frame])
    }
}

/// Per-daemon frame service: maps each request frame of a connection
/// to an [`Outcome`].  `conn` distinguishes connections (for stateful
/// exchanges like streamed batches); `workers` lets the service spawn
/// fire-and-forget side jobs (chunk crypto) that feed its own state
/// rather than producing response frames.
pub trait Service: Send + Sync + 'static {
    /// Handle one request frame from connection `conn`.
    fn handle(&self, conn: ConnId, frame: Frame, workers: &Arc<WorkerPool>) -> Outcome;

    /// Connection `conn` is gone (peer hung up, protocol error, or
    /// reactor shutdown).  Drop any per-connection state.
    fn on_close(&self, conn: ConnId) {
        let _ = conn;
    }

    /// Called once at bind time with a [`ReactorHandle`] the service
    /// may keep to push unsolicited frames to live connections (e.g. a
    /// forwarding mix hop reporting its attestation back to the
    /// coordinator when the triggering request arrived on a *different*
    /// connection).  Default: ignore it.
    fn attach(&self, handle: ReactorHandle) {
        let _ = handle;
    }
}

/// Pushes encoded frames to a reactor connection from any thread.
///
/// Bytes land in the connection's output buffer at the reactor's next
/// loop iteration (a self-pipe wakeup makes that immediate) and are
/// flushed under the usual backpressure rules.  A push to a connection
/// that has since closed is silently discarded — the token is never
/// reused, so it cannot reach a newer peer.  Unlike a deferred-job
/// completion, a push does **not** re-open the connection's pending
/// slot: it rides alongside whatever request/response exchange the
/// connection is in.
#[derive(Clone)]
pub struct ReactorHandle {
    completions: Arc<Completions>,
    waker: Arc<Waker>,
}

impl ReactorHandle {
    /// Queue `bytes` (one or more complete encoded frames) for `conn`.
    pub fn push(&self, conn: ConnId, bytes: Vec<u8>) {
        self.completions
            .lock()
            .expect("completions poisoned")
            .push(Completion {
                conn,
                bytes,
                reopens_slot: false,
            });
        self.waker.wake();
    }
}

/// Wrap a plain request→response function as a [`Service`]: every
/// response inline, no per-connection state, no deferral.
pub fn service_fn<F>(f: F) -> Arc<dyn Service>
where
    F: Fn(Frame) -> Frame + Send + Sync + 'static,
{
    struct ServiceFn<F>(F);
    impl<F: Fn(Frame) -> Frame + Send + Sync + 'static> Service for ServiceFn<F> {
        fn handle(&self, _conn: ConnId, frame: Frame, _workers: &Arc<WorkerPool>) -> Outcome {
            Outcome::reply((self.0)(frame))
        }
    }
    Arc::new(ServiceFn(f))
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

/// A small fixed-size thread pool for batch-boundary crypto, so the
/// reactor thread never runs a hop inline.  One FIFO queue: jobs run
/// in submission order, which is a *correctness* property — a streamed
/// hop's End job is enqueued after all of its chunk jobs, so by the
/// time a worker dequeues it, every chunk job has at least started,
/// and its completion latch cannot deadlock (at any pool size ≥ 1).
///
/// Threads are spawned lazily on the first submitted job: a daemon
/// that never defers (a mailbox shard) stays a single-thread process.
pub struct WorkerPool {
    state: Mutex<PoolState>,
    cv: Condvar,
    size: usize,
    /// Jobs enqueued but not yet dequeued by a worker.
    queue_depth: &'static Gauge,
    /// Enqueue → dequeue latency, µs.
    job_wait_us: &'static Histogram,
    /// Dequeue → completion latency, µs.
    job_run_us: &'static Histogram,
}

struct PoolState {
    /// `(enqueued-at, job)` — the timestamp feeds the job-wait
    /// histogram when a worker picks the job up.
    queue: VecDeque<(Instant, Box<dyn FnOnce() + Send + 'static>)>,
    spawned: bool,
    shutdown: bool,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(size: usize) -> Arc<WorkerPool> {
        Arc::new(WorkerPool {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                spawned: false,
                shutdown: false,
                threads: Vec::new(),
            }),
            cv: Condvar::new(),
            size: size.max(1),
            queue_depth: xrd_obs::gauge("pool.queue_depth"),
            job_wait_us: xrd_obs::hist("pool.job_wait_us"),
            job_run_us: xrd_obs::hist("pool.job_run_us"),
        })
    }

    /// Number of worker threads this pool runs at (once spawned).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submit a fire-and-forget job.  Jobs are dequeued in FIFO order;
    /// a job that needs results of previously submitted jobs may block
    /// on them safely (see the type-level ordering argument).
    pub fn spawn_job(self: &Arc<Self>, job: impl FnOnce() + Send + 'static) {
        let mut state = self.state.lock().expect("pool poisoned");
        if state.shutdown {
            return; // reactor is tearing down; drop the work
        }
        if !state.spawned {
            state.spawned = true;
            for _ in 0..self.size {
                let pool = Arc::clone(self);
                state.threads.push(std::thread::spawn(move || pool.run()));
            }
        }
        state.queue.push_back((Instant::now(), Box::new(job)));
        self.queue_depth.incr();
        drop(state);
        self.cv.notify_one();
    }

    fn run(&self) {
        loop {
            let (enqueued, job) = {
                let mut state = self.state.lock().expect("pool poisoned");
                loop {
                    if let Some(item) = state.queue.pop_front() {
                        break item;
                    }
                    if state.shutdown {
                        return;
                    }
                    state = self.cv.wait(state).expect("pool poisoned");
                }
            };
            self.queue_depth.decr();
            self.job_wait_us.record_duration(enqueued.elapsed());
            let started = Instant::now();
            // A panicking job must not take the worker thread with it:
            // a shrunken pool would strand queued jobs forever (and
            // the reactor's shutdown join with them).  Defer jobs are
            // additionally wrapped by the reactor so the waiting
            // connection gets an error response.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            self.job_run_us.record_duration(started.elapsed());
        }
    }

    /// Stop accepting work, let queued jobs finish (they may be
    /// dependencies of running ones), and join the workers.
    fn shutdown(&self) {
        let threads = {
            let mut state = self.state.lock().expect("pool poisoned");
            state.shutdown = true;
            std::mem::take(&mut state.threads)
        };
        self.cv.notify_all();
        for t in threads {
            let _ = t.join();
        }
    }
}

/// How long one readiness wait may block before re-checking the stop
/// flag (shutdown latency bound, not a busy-poll interval).
const WAIT_MS: i32 = 100;

/// Socket read chunk.  One syscall per chunk; 64 KiB amortizes the
/// syscall cost for batch frames while staying cache-friendly.
const READ_CHUNK: usize = 64 * 1024;

// ---------------------------------------------------------------------
// Poller: epoll on Linux/x86-64, a sweep fallback elsewhere
// ---------------------------------------------------------------------

/// Readable/writable interest and readiness bits (epoll encoding; the
/// fallback poller uses the same constants).
pub mod interest {
    /// Readable (`EPOLLIN`).
    pub const READ: u32 = 0x001;
    /// Writable (`EPOLLOUT`).
    pub const WRITE: u32 = 0x004;
    /// Error condition (`EPOLLERR`); always reported, never requested.
    pub const ERROR: u32 = 0x008;
    /// Peer hung up (`EPOLLHUP`); always reported, never requested.
    pub const HANGUP: u32 = 0x010;
    /// Peer closed its write half (`EPOLLRDHUP`).
    pub const READ_HANGUP: u32 = 0x2000;
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) mod sys {
    //! `epoll` via raw x86-64 Linux syscalls — the workspace links no
    //! libc-style crate, and `std` does not expose readiness APIs, so
    //! the three syscalls the reactor needs are issued directly.
    //! `pub(crate)`: the client-side swarm reactor drives its own loop
    //! over the same poller.

    use std::io;
    use std::os::fd::RawFd;

    const SYS_CLOSE: i64 = 3;
    const SYS_LISTEN: i64 = 50;
    const SYS_EPOLL_WAIT: i64 = 232;
    const SYS_EPOLL_CTL: i64 = 233;
    const SYS_EPOLL_CREATE1: i64 = 291;

    const EPOLL_CLOEXEC: i64 = 0o2000000;
    const EPOLL_CTL_ADD: i64 = 1;
    const EPOLL_CTL_DEL: i64 = 2;
    const EPOLL_CTL_MOD: i64 = 3;
    const EINTR: i64 = 4;

    /// `struct epoll_event` — packed on x86-64 (no padding between the
    /// 32-bit event mask and the 64-bit user data).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// One `syscall` instruction, kernel convention: args in
    /// rdi/rsi/rdx/r10, number in rax, result in rax (negative errno on
    /// failure); rcx and r11 are clobbered by the instruction itself.
    #[inline]
    unsafe fn syscall4(n: i64, a1: i64, a2: i64, a3: i64, a4: i64) -> i64 {
        let ret;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    /// Re-issue `listen(2)` on an already-listening socket to widen its
    /// accept backlog (Linux applies the new value in place).  `std`
    /// hard-codes a 128-entry backlog, which a thousand-client connect
    /// storm overflows in milliseconds on a loaded host — every
    /// overflow costs the client a ~1 s SYN retransmit.
    pub fn widen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
        check(unsafe { syscall4(SYS_LISTEN, fd as i64, backlog as i64, 0, 0) })?;
        Ok(())
    }

    /// An epoll instance.
    pub struct Poller {
        epfd: RawFd,
        /// Reused kernel-facing event buffer.
        events: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
            Ok(Poller {
                epfd: epfd as RawFd,
                events: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i64, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            let ev = EpollEvent {
                events,
                data: token,
            };
            check(unsafe {
                syscall4(
                    SYS_EPOLL_CTL,
                    self.epfd as i64,
                    op,
                    fd as i64,
                    std::ptr::addr_of!(ev) as i64,
                )
            })?;
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, events)
        }

        pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, events)
        }

        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wait up to `timeout_ms` and append `(token, readiness)`
        /// pairs to `out`.  A signal interruption reports no events.
        pub fn wait(&mut self, out: &mut Vec<(u64, u32)>, timeout_ms: i32) -> io::Result<()> {
            let n = unsafe {
                syscall4(
                    SYS_EPOLL_WAIT,
                    self.epfd as i64,
                    self.events.as_mut_ptr() as i64,
                    self.events.len() as i64,
                    timeout_ms as i64,
                )
            };
            if n == -EINTR {
                return Ok(());
            }
            let n = check(n)? as usize;
            for ev in &self.events[..n] {
                out.push((ev.data, ev.events));
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                let _ = syscall4(SYS_CLOSE, self.epfd as i64, 0, 0, 0);
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!(
    "xrd-net's reactor needs raw file descriptors (std::os::fd); \
     only unix targets are supported"
);

#[cfg(all(unix, not(all(target_os = "linux", target_arch = "x86_64"))))]
pub(crate) mod sys {
    //! Portable fallback: a sweep poller.  With no readiness syscall
    //! available dependency-free, every registered socket is reported
    //! ready each tick and the reactor's nonblocking I/O turns
    //! spurious readiness into cheap `WouldBlock`s.  Degraded (a ~1 ms
    //! sweep cadence instead of true wakeups) but correct — the state
    //! machines never rely on readiness being genuine.

    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    pub struct Poller {
        registered: Vec<(RawFd, u64, u32)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Vec::new(),
            })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.registered.push((fd, token, events));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            for entry in &mut self.registered {
                if entry.0 == fd {
                    *entry = (fd, token, events);
                }
            }
            Ok(())
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.retain(|&(f, _, _)| f != fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<(u64, u32)>, timeout_ms: i32) -> io::Result<()> {
            std::thread::sleep(Duration::from_millis((timeout_ms as u64).min(1)));
            for &(_, token, events) in &self.registered {
                // A zero-interest registration solicits nothing (e.g. a
                // half-closed connection awaiting its deferred
                // response): reporting it would read as the unmaskable
                // ERR/HUP, which this poller cannot actually detect.
                if events != 0 {
                    out.push((token, events));
                }
            }
            Ok(())
        }
    }
}

use std::os::fd::AsRawFd;

use sys::Poller;

// ---------------------------------------------------------------------
// Per-connection state machine
// ---------------------------------------------------------------------

/// What a connection's state machine wants done with it after being
/// driven as far as the socket allows.
enum Action {
    /// Still alive; wait for the readiness the machine is blocked on.
    Keep,
    /// Still alive with work already buffered: hit the per-event frame
    /// budget ([`FRAMES_PER_EVENT`]).  Re-drive it next loop iteration
    /// — do *not* wait for readiness, which may never fire again for
    /// bytes that already left the kernel buffer.
    Yield,
    /// Finished or failed; deregister and close.
    Drop,
    /// This connection's [`Frame::Shutdown`] acknowledgement has fully
    /// drained: stop the whole daemon.
    Stop,
}

/// Frames one connection may consume per visit before the reactor
/// moves on.  Without the budget, a peer that keeps small pipelined
/// frames flowing (and drains its responses) would keep `advance`'s
/// flush→process→read loop running and monopolize the reactor thread,
/// starving every other connection.
const FRAMES_PER_EVENT: usize = 64;

/// The reactor's metric handles, resolved once at bind time so the
/// per-event hot path is a relaxed atomic bump — never a registry
/// lookup.  Per-tag frame counters are cached in a tag-indexed table,
/// filled on first sight of each tag (one registry lookup per tag per
/// reactor, ever).
struct ReactorMetrics {
    /// Poller wait returns.
    wakes: &'static Counter,
    /// Readiness events reported across all waits (events/wake =
    /// `ready_events / wakes`).
    ready_events: &'static Counter,
    /// Connections accepted and registered.
    accepts: &'static Counter,
    /// Connections refused (draining, or socket setup failed).
    accepts_rejected: &'static Counter,
    /// Currently open connections.
    conns_open: &'static Gauge,
    /// Connections closed (any reason).
    conns_closed: &'static Counter,
    /// Payload bytes read off sockets.
    bytes_in: &'static Counter,
    /// Payload bytes written to sockets.
    bytes_out: &'static Counter,
    /// Complete frames decoded (sum of the per-tag counters).
    frames_in: &'static Counter,
    /// Visits that exhausted [`FRAMES_PER_EVENT`] and yielded.
    budget_yields: &'static Counter,
    /// Writes that hit `WouldBlock` — the peer is not draining its
    /// responses and TCP backpressure is holding the connection.
    write_stalls: &'static Counter,
    /// Jobs deferred to the worker pool on behalf of a connection.
    deferred_jobs: &'static Counter,
    /// Connections dropped over an unparseable frame (the silent-drop
    /// path: also debug-logged with the peer address).
    err_malformed: &'static Counter,
    /// Connections dropped on a socket read/write error.
    err_io: &'static Counter,
    /// Per-tag `frames.in.<TagName>` counters, tag-indexed.
    by_tag: [Option<&'static Counter>; 256],
}

impl ReactorMetrics {
    fn new() -> ReactorMetrics {
        ReactorMetrics {
            wakes: xrd_obs::counter("reactor.wakes"),
            ready_events: xrd_obs::counter("reactor.ready_events"),
            accepts: xrd_obs::counter("reactor.accepts"),
            accepts_rejected: xrd_obs::counter("reactor.accepts_rejected"),
            conns_open: xrd_obs::gauge("reactor.conns_open"),
            conns_closed: xrd_obs::counter("reactor.conns_closed"),
            bytes_in: xrd_obs::counter("reactor.bytes_in"),
            bytes_out: xrd_obs::counter("reactor.bytes_out"),
            frames_in: xrd_obs::counter("reactor.frames_in"),
            budget_yields: xrd_obs::counter("reactor.budget_yields"),
            write_stalls: xrd_obs::counter("reactor.write_stalls"),
            deferred_jobs: xrd_obs::counter("reactor.deferred_jobs"),
            err_malformed: xrd_obs::counter("reactor.err.malformed_frame"),
            err_io: xrd_obs::counter("reactor.err.io"),
            by_tag: [None; 256],
        }
    }

    /// Count one decoded frame, total and per tag.
    fn count_frame(&mut self, tag: u8) {
        self.frames_in.incr();
        let counter = match self.by_tag[tag as usize] {
            Some(c) => c,
            None => {
                let name = Frame::tag_name(tag).unwrap_or("Unknown");
                let c = xrd_obs::counter(&format!("frames.in.{name}"));
                self.by_tag[tag as usize] = Some(c);
                c
            }
        };
        counter.incr();
    }
}

struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded-but-unsent response bytes; `outpos` marks the sent
    /// prefix.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Readiness interest currently registered with the poller.
    registered: u32,
    /// Close once `outbuf` drains (protocol error or shutdown ack).
    closing: bool,
    /// This connection carried [`Frame::Shutdown`]: stop the daemon
    /// once the acknowledgement is flushed.
    is_shutdown: bool,
    /// The pending response slot: a deferred job is computing this
    /// connection's next response on the worker pool.  While occupied,
    /// no further requests are processed (or even read) — the job's
    /// completion re-opens the slot and queues its frames.
    pending: bool,
    /// The peer closed its write half (EOF on read).  It may still be
    /// reading: a half-closing request/response client must receive
    /// its pending deferred response before the connection drops.
    read_closed: bool,
}

impl Connection {
    fn new(stream: TcpStream) -> Connection {
        Connection {
            stream,
            decoder: FrameDecoder::new(),
            outbuf: Vec::new(),
            outpos: 0,
            registered: interest::READ | interest::READ_HANGUP,
            closing: false,
            is_shutdown: false,
            pending: false,
            read_closed: false,
        }
    }

    fn queue(&mut self, frame: &Frame) {
        self.outbuf.extend_from_slice(&frame.encode());
    }

    fn has_pending_output(&self) -> bool {
        self.outpos < self.outbuf.len()
    }

    /// The readiness this connection should be registered for: drain
    /// output first; only solicit (and therefore read) new requests
    /// once the previous response is fully on the wire.  While a
    /// deferred response is pending, solicit nothing; once the peer
    /// has half-closed, its hangup is old news — stop soliciting even
    /// that, or the level-triggered poller re-reports it forever
    /// (errors and full hangups are delivered regardless of the mask).
    fn wanted_interest(&self) -> u32 {
        let hangup = if self.read_closed {
            0
        } else {
            interest::READ_HANGUP
        };
        if self.has_pending_output() {
            interest::WRITE | hangup
        } else if self.pending || self.read_closed {
            hangup
        } else {
            interest::READ | hangup
        }
    }

    /// Drive this connection as far as the socket allows or the frame
    /// budget permits: flush pending output, process buffered frames
    /// (one at a time — the next request is handled only after the
    /// previous response has drained), read newly arrived bytes,
    /// repeat.  Deferred jobs the service produced are appended to
    /// `deferred` for the reactor to submit (the connection is already
    /// marked pending).
    fn advance(
        &mut self,
        token: ConnId,
        service: &Arc<dyn Service>,
        workers: &Arc<WorkerPool>,
        read_buf: &mut [u8],
        deferred: &mut Vec<(ConnId, Job)>,
        metrics: &mut ReactorMetrics,
    ) -> Action {
        let mut frames_this_visit = 0;
        loop {
            // 1. Flush whatever output is pending.
            while self.has_pending_output() {
                match self.stream.write(&self.outbuf[self.outpos..]) {
                    Ok(0) => return Action::Drop,
                    Ok(n) => {
                        metrics.bytes_out.add(n as u64);
                        self.outpos += n;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        metrics.write_stalls.incr();
                        return Action::Keep;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        metrics.err_io.incr();
                        return Action::Drop;
                    }
                }
            }
            self.outbuf.clear();
            self.outpos = 0;
            if self.closing {
                return if self.is_shutdown {
                    Action::Stop
                } else {
                    Action::Drop
                };
            }
            if self.pending {
                // The response is still being computed on the pool.  A
                // readiness visit in this state is connection trouble —
                // we solicit no reads, but the level-triggered poller
                // keeps re-reporting a hangup until acted on, which
                // would busy-spin the loop for the length of the job.
                if self.read_closed {
                    // Interest is down to the unmaskable ERR/HUP: the
                    // peer is gone in both directions, the response
                    // has no reader.  (Its completion is discarded on
                    // arrival.)
                    return Action::Drop;
                }
                // Probe the socket: a *half*-closing request/response
                // client (EOF here) still gets its response — only a
                // write failure ends that connection; stray bytes are
                // buffered, not processed.
                return match self.stream.read(read_buf) {
                    Ok(0) => {
                        self.read_closed = true;
                        Action::Keep
                    }
                    Ok(n) => {
                        metrics.bytes_in.add(n as u64);
                        self.decoder.feed(&read_buf[..n]);
                        Action::Keep
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Action::Keep,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Action::Keep,
                    Err(_) => {
                        metrics.err_io.incr();
                        Action::Drop
                    }
                };
            }

            // 2. Process one buffered request, if complete — unless
            // this visit's budget is spent, in which case yield the
            // thread to the other connections and resume next tick.
            if frames_this_visit >= FRAMES_PER_EVENT {
                metrics.budget_yields.incr();
                return Action::Yield;
            }
            frames_this_visit += 1;
            match self.decoder.try_frame() {
                Some(Ok(Frame::Shutdown)) => {
                    metrics.count_frame(Frame::Shutdown.tag());
                    self.queue(&Frame::Ok);
                    self.closing = true;
                    self.is_shutdown = true;
                    continue;
                }
                Some(Ok(Frame::Ping)) => {
                    // Liveness probe, answered by the reactor itself so
                    // "process up and reading its socket" is observable
                    // even while the service is busy in a deferred job.
                    metrics.count_frame(Frame::Ping.tag());
                    self.queue(&Frame::Pong);
                    continue;
                }
                Some(Ok(Frame::StatsRequest)) => {
                    // Answered by the reactor itself — like Shutdown —
                    // so every daemon kind serves scrapes without its
                    // service knowing the frame exists.
                    metrics.count_frame(Frame::StatsRequest.tag());
                    self.queue(&Frame::StatsReport {
                        snapshot: Box::new(xrd_obs::global().snapshot()),
                    });
                    continue;
                }
                Some(Ok(frame)) => {
                    metrics.count_frame(frame.tag());
                    match service.handle(token, frame, workers) {
                        Outcome::Reply(frames) => {
                            for frame in &frames {
                                self.queue(frame);
                            }
                        }
                        Outcome::Defer(job) => {
                            self.pending = true;
                            metrics.deferred_jobs.incr();
                            deferred.push((token, job));
                        }
                    }
                    continue;
                }
                Some(Err(e)) => {
                    // Unparseable bytes: count, log the peer, report,
                    // and close (the stream may be desynchronized) —
                    // after the report drains.
                    metrics.err_malformed.incr();
                    xrd_obs::debug!(
                        "dropping conn {token} ({:?}): bad frame: {e}",
                        self.stream.peer_addr()
                    );
                    self.queue(&crate::daemon::err(
                        error_code::BAD_STATE,
                        format!("bad frame: {e}"),
                    ));
                    self.closing = true;
                    continue;
                }
                None => {}
            }

            // 3. Pull newly arrived bytes off the socket.
            match self.stream.read(read_buf) {
                Ok(0) => return Action::Drop, // peer hung up
                Ok(n) => {
                    metrics.bytes_in.add(n as u64);
                    self.decoder.feed(&read_buf[..n]);
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Action::Keep,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    metrics.err_io.incr();
                    return Action::Drop;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------

/// Token of the listening socket.
const LISTENER_TOKEN: u64 = 0;

/// Token of the self-pipe's read end (worker-pool completions wake the
/// poller through it); connections get `2..`.
const WAKE_TOKEN: u64 = 1;

/// Worker threads per daemon when not specified: enough to keep hop
/// crypto off the reactor thread and use a few cores, capped so a
/// many-daemon loopback deployment stays at O(daemons) threads.
fn default_pool_size() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4)
}

/// Wakes the reactor's poller from worker threads by writing a byte
/// into its self-pipe (a loopback TCP pair — portable, std-only).  A
/// full pipe means a wakeup is already pending, so `WouldBlock` is
/// success.
struct Waker {
    tx: Mutex<TcpStream>,
}

impl Waker {
    fn wake(&self) {
        if let Ok(tx) = self.tx.lock() {
            let _ = (&*tx).write(&[1u8]);
        }
    }
}

/// Bytes awaiting delivery to a connection: a deferred job's response
/// (which re-opens the pending slot) or a [`ReactorHandle`] push
/// (which does not).
struct Completion {
    conn: ConnId,
    bytes: Vec<u8>,
    reopens_slot: bool,
}

/// Completed deferred jobs and handle pushes awaiting delivery.
type Completions = Mutex<Vec<Completion>>;

/// The event loop serving every connection of one daemon from a single
/// thread.  Built by [`Reactor::bind`], consumed by [`Reactor::run`]
/// (which the daemon runs on one spawned thread).
pub struct Reactor {
    poller: Poller,
    listener: TcpListener,
    addr: SocketAddr,
    conns: HashMap<u64, Connection>,
    next_token: u64,
    service: Arc<dyn Service>,
    workers: Arc<WorkerPool>,
    /// Read end of the self-pipe; drained whenever it turns readable.
    wake_rx: TcpStream,
    waker: Arc<Waker>,
    completions: Arc<Completions>,
    stop: Arc<AtomicBool>,
    /// A [`Frame::Shutdown`] is being acknowledged: refuse new
    /// connections while it drains.
    draining: bool,
    /// Pre-resolved metric handles (global registry) for the loop.
    metrics: ReactorMetrics,
}

impl Reactor {
    /// Bind `addr` (nonblocking) and prepare the loop; no thread is
    /// spawned here, so the bound address is known before `run`.  The
    /// worker pool defaults to `min(4, available_parallelism)` threads
    /// (spawned lazily on the first deferred job).
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Arc<dyn Service>) -> std::io::Result<Reactor> {
        Reactor::bind_with_workers(addr, service, default_pool_size())
    }

    /// [`Reactor::bind`] with an explicit worker-pool size.
    pub fn bind_with_workers<A: ToSocketAddrs>(
        addr: A,
        service: Arc<dyn Service>,
        workers: usize,
    ) -> std::io::Result<Reactor> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        // Best-effort: absorb whole connect storms in the accept queue
        // instead of making late clients retransmit SYNs.
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        let _ = sys::widen_backlog(listener.as_raw_fd(), 4096);
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        // The self-pipe: a loopback TCP pair private to this reactor.
        // The temporary listener closes as soon as the pair exists.
        let pipe_listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let tx = TcpStream::connect(pipe_listener.local_addr()?)?;
        let (wake_rx, _) = pipe_listener.accept()?;
        wake_rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        let waker = Arc::new(Waker { tx: Mutex::new(tx) });
        let completions: Arc<Completions> = Arc::new(Mutex::new(Vec::new()));
        service.attach(ReactorHandle {
            completions: Arc::clone(&completions),
            waker: Arc::clone(&waker),
        });
        Ok(Reactor {
            poller,
            listener,
            addr,
            conns: HashMap::new(),
            next_token: WAKE_TOKEN + 1,
            service,
            workers: WorkerPool::new(workers),
            wake_rx,
            waker,
            completions,
            stop: Arc::new(AtomicBool::new(false)),
            draining: false,
            metrics: ReactorMetrics::new(),
        })
    }

    /// The bound address (useful with port-0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The stop flag: set it and poke the listener (one throwaway
    /// connect) to make `run` return promptly; `run` also re-checks it
    /// at least every 100 ms (`WAIT_MS`) on its own.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Number of currently open connections (for tests/introspection).
    pub fn n_connections(&self) -> usize {
        self.conns.len()
    }

    /// Run the event loop until the stop flag is set or a peer's
    /// [`Frame::Shutdown`] is acknowledged.  Consumes the reactor; all
    /// sockets close on return (the worker pool is drained and joined
    /// first).
    pub fn run(mut self) {
        let mut poller = self.poller;
        if poller
            .add(self.listener.as_raw_fd(), LISTENER_TOKEN, interest::READ)
            .is_err()
        {
            return;
        }
        if poller
            .add(self.wake_rx.as_raw_fd(), WAKE_TOKEN, interest::READ)
            .is_err()
        {
            return;
        }
        let mut read_buf = vec![0u8; READ_CHUNK];
        let mut events: Vec<(u64, u32)> = Vec::with_capacity(256);
        // Connections that hit their frame budget mid-visit: they have
        // work buffered in user space, so readiness may never fire for
        // it again — re-drive them every iteration until they block.
        let mut yielded: Vec<u64> = Vec::new();
        // Jobs the service deferred during an `advance`, submitted to
        // the pool right after (collected here to keep `advance`'s
        // borrows simple).
        let mut deferred: Vec<(ConnId, Job)> = Vec::new();

        'outer: while !self.stop.load(Ordering::SeqCst) {
            events.clear();
            // With yielded work pending, poll without blocking so the
            // backlog keeps draining at event-loop cadence.
            let timeout = if yielded.is_empty() { WAIT_MS } else { 0 };
            if poller.wait(&mut events, timeout).is_err() {
                break;
            }
            self.metrics.wakes.incr();
            self.metrics.ready_events.add(events.len() as u64);
            // Deliver completed deferred responses (re-opening each
            // connection's pending slot) and handle pushes (which ride
            // alongside): queue the bytes and drive the connection this
            // iteration.
            let done: Vec<Completion> =
                std::mem::take(&mut *self.completions.lock().expect("completions poisoned"));
            for completion in done {
                let Some(conn) = self.conns.get_mut(&completion.conn) else {
                    continue; // connection died while its job ran
                };
                if completion.reopens_slot {
                    conn.pending = false;
                }
                conn.outbuf.extend_from_slice(&completion.bytes);
                events.push((completion.conn, 0));
            }
            // Budget-limited connections first (fairness: they were cut
            // off last iteration), then fresh readiness.
            events.splice(0..0, yielded.drain(..).map(|t| (t, 0)));
            for &(token, _readiness) in &events {
                if token == WAKE_TOKEN {
                    // Drain the self-pipe; the completions it announced
                    // were collected above (or will be next iteration).
                    loop {
                        match self.wake_rx.read(&mut read_buf[..64]) {
                            Ok(0) => break,
                            Ok(_) => continue,
                            Err(_) => break,
                        }
                    }
                    continue;
                }
                if token == LISTENER_TOKEN {
                    // Drain the whole accept backlog: nonblocking, so a
                    // connect storm costs one registration each, not a
                    // thread each.
                    loop {
                        match self.listener.accept() {
                            Ok((stream, _)) => {
                                if self.draining
                                    || stream.set_nonblocking(true).is_err()
                                    || stream.set_nodelay(true).is_err()
                                {
                                    self.metrics.accepts_rejected.incr();
                                    continue; // drop it
                                }
                                let token = self.next_token;
                                self.next_token += 1;
                                let conn = Connection::new(stream);
                                if poller
                                    .add(conn.stream.as_raw_fd(), token, conn.registered)
                                    .is_ok()
                                {
                                    self.conns.insert(token, conn);
                                    self.metrics.accepts.incr();
                                    self.metrics.conns_open.incr();
                                } else {
                                    self.metrics.accepts_rejected.incr();
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => break,
                        }
                    }
                    continue;
                }
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue; // already dropped this iteration
                };
                let action = conn.advance(
                    token,
                    &self.service,
                    &self.workers,
                    &mut read_buf,
                    &mut deferred,
                    &mut self.metrics,
                );
                match action {
                    Action::Keep => {
                        let wanted = conn.wanted_interest();
                        if wanted != conn.registered
                            && poller
                                .modify(conn.stream.as_raw_fd(), token, wanted)
                                .is_ok()
                        {
                            conn.registered = wanted;
                        }
                        if conn.is_shutdown {
                            self.draining = true;
                        }
                    }
                    Action::Yield => yielded.push(token),
                    Action::Drop => {
                        let conn = self.conns.remove(&token).expect("present");
                        let _ = poller.remove(conn.stream.as_raw_fd());
                        self.metrics.conns_closed.incr();
                        self.metrics.conns_open.decr();
                        self.service.on_close(token);
                    }
                    Action::Stop => {
                        self.stop.store(true, Ordering::SeqCst);
                        break 'outer;
                    }
                }
                // Ship whatever the service deferred: the job's frames
                // come back through `completions` + the self-pipe.
                for (token, job) in deferred.drain(..) {
                    let completions = Arc::clone(&self.completions);
                    let waker = Arc::clone(&self.waker);
                    self.workers.spawn_job(move || {
                        let bytes = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                            .unwrap_or_else(|_| {
                                crate::daemon::err(
                                    error_code::BAD_STATE,
                                    "deferred handler panicked",
                                )
                                .encode()
                            });
                        completions
                            .lock()
                            .expect("completions poisoned")
                            .push(Completion {
                                conn: token,
                                bytes,
                                reopens_slot: true,
                            });
                        waker.wake();
                    });
                }
            }
        }
        // Let in-flight and queued jobs finish, then join the workers —
        // only then close the sockets (peers see EOF, not RST).
        self.workers.shutdown();
        for &token in self.conns.keys() {
            self.service.on_close(token);
        }
        // The process-wide gauge must not keep counting sockets this
        // (possibly in-process, as in tests) reactor is about to close.
        self.metrics.conns_open.add(-(self.conns.len() as i64));
        self.metrics.conns_closed.add(self.conns.len() as u64);
        // Dropping `self.conns` and the listener closes every socket;
        // peers see EOF.
    }
}
