//! A hand-rolled, dependency-free event-driven reactor for the XRD
//! daemons: one thread, thousands of connections.
//!
//! The daemons used to burn one OS thread per client connection, which
//! caps a single daemon far below the paper's per-server client
//! populations (§8 assumes hundreds of thousands of submitters per
//! round).  The reactor replaces that with the classic single-threaded
//! readiness loop:
//!
//! * every socket (listener included) is nonblocking;
//! * a `Poller` — raw `epoll` syscalls on Linux/x86-64, a degraded
//!   sweep poller on other unix targets, no external crates either
//!   way — reports which sockets are ready;
//! * each connection owns a tiny state machine: an incremental
//!   [`FrameDecoder`](crate::codec::FrameDecoder) accumulating request
//!   bytes and an outbound buffer drained as the socket accepts them.
//!
//! A peer that dribbles a frame one byte at a time, stalls mid-frame,
//! or stops reading its responses costs the daemon nothing but a
//! buffer: the loop simply moves on to whichever socket is ready next.
//! Backpressure is structural — a connection's next request is not
//! *processed* (or even read off the kernel buffer) until its previous
//! response has fully drained, so a slow reader throttles itself via
//! TCP flow control instead of ballooning daemon memory.
//!
//! Frame handlers run inline on the reactor thread.  That is the right
//! trade for XRD: per-frame work is either trivial (submission checks,
//! mailbox ops) or a batch-boundary crypto call (`MixBatch`) that
//! already fans out across the scoped-thread pool inside
//! `MixServer::process_round` — an async executor would add latency and
//! complexity for nothing.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::codec::{error_code, Frame, FrameDecoder};

/// A request→response frame handler shared by every connection of a
/// daemon.
pub type FrameHandler = Arc<dyn Fn(Frame) -> Frame + Send + Sync>;

/// How long one readiness wait may block before re-checking the stop
/// flag (shutdown latency bound, not a busy-poll interval).
const WAIT_MS: i32 = 100;

/// Socket read chunk.  One syscall per chunk; 64 KiB amortizes the
/// syscall cost for batch frames while staying cache-friendly.
const READ_CHUNK: usize = 64 * 1024;

// ---------------------------------------------------------------------
// Poller: epoll on Linux/x86-64, a sweep fallback elsewhere
// ---------------------------------------------------------------------

/// Readable/writable interest and readiness bits (epoll encoding; the
/// fallback poller uses the same constants).
pub mod interest {
    /// Readable (`EPOLLIN`).
    pub const READ: u32 = 0x001;
    /// Writable (`EPOLLOUT`).
    pub const WRITE: u32 = 0x004;
    /// Error condition (`EPOLLERR`); always reported, never requested.
    pub const ERROR: u32 = 0x008;
    /// Peer hung up (`EPOLLHUP`); always reported, never requested.
    pub const HANGUP: u32 = 0x010;
    /// Peer closed its write half (`EPOLLRDHUP`).
    pub const READ_HANGUP: u32 = 0x2000;
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! `epoll` via raw x86-64 Linux syscalls — the workspace links no
    //! libc-style crate, and `std` does not expose readiness APIs, so
    //! the three syscalls the reactor needs are issued directly.

    use std::io;
    use std::os::fd::RawFd;

    const SYS_CLOSE: i64 = 3;
    const SYS_LISTEN: i64 = 50;
    const SYS_EPOLL_WAIT: i64 = 232;
    const SYS_EPOLL_CTL: i64 = 233;
    const SYS_EPOLL_CREATE1: i64 = 291;

    const EPOLL_CLOEXEC: i64 = 0o2000000;
    const EPOLL_CTL_ADD: i64 = 1;
    const EPOLL_CTL_DEL: i64 = 2;
    const EPOLL_CTL_MOD: i64 = 3;
    const EINTR: i64 = 4;

    /// `struct epoll_event` — packed on x86-64 (no padding between the
    /// 32-bit event mask and the 64-bit user data).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// One `syscall` instruction, kernel convention: args in
    /// rdi/rsi/rdx/r10, number in rax, result in rax (negative errno on
    /// failure); rcx and r11 are clobbered by the instruction itself.
    #[inline]
    unsafe fn syscall4(n: i64, a1: i64, a2: i64, a3: i64, a4: i64) -> i64 {
        let ret;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    /// Re-issue `listen(2)` on an already-listening socket to widen its
    /// accept backlog (Linux applies the new value in place).  `std`
    /// hard-codes a 128-entry backlog, which a thousand-client connect
    /// storm overflows in milliseconds on a loaded host — every
    /// overflow costs the client a ~1 s SYN retransmit.
    pub fn widen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
        check(unsafe { syscall4(SYS_LISTEN, fd as i64, backlog as i64, 0, 0) })?;
        Ok(())
    }

    /// An epoll instance.
    pub struct Poller {
        epfd: RawFd,
        /// Reused kernel-facing event buffer.
        events: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) })?;
            Ok(Poller {
                epfd: epfd as RawFd,
                events: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i64, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            let ev = EpollEvent {
                events,
                data: token,
            };
            check(unsafe {
                syscall4(
                    SYS_EPOLL_CTL,
                    self.epfd as i64,
                    op,
                    fd as i64,
                    std::ptr::addr_of!(ev) as i64,
                )
            })?;
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, events)
        }

        pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, events)
        }

        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wait up to `timeout_ms` and append `(token, readiness)`
        /// pairs to `out`.  A signal interruption reports no events.
        pub fn wait(&mut self, out: &mut Vec<(u64, u32)>, timeout_ms: i32) -> io::Result<()> {
            let n = unsafe {
                syscall4(
                    SYS_EPOLL_WAIT,
                    self.epfd as i64,
                    self.events.as_mut_ptr() as i64,
                    self.events.len() as i64,
                    timeout_ms as i64,
                )
            };
            if n == -EINTR {
                return Ok(());
            }
            let n = check(n)? as usize;
            for ev in &self.events[..n] {
                out.push((ev.data, ev.events));
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                let _ = syscall4(SYS_CLOSE, self.epfd as i64, 0, 0, 0);
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!(
    "xrd-net's reactor needs raw file descriptors (std::os::fd); \
     only unix targets are supported"
);

#[cfg(all(unix, not(all(target_os = "linux", target_arch = "x86_64"))))]
mod sys {
    //! Portable fallback: a sweep poller.  With no readiness syscall
    //! available dependency-free, every registered socket is reported
    //! ready each tick and the reactor's nonblocking I/O turns
    //! spurious readiness into cheap `WouldBlock`s.  Degraded (a ~1 ms
    //! sweep cadence instead of true wakeups) but correct — the state
    //! machines never rely on readiness being genuine.

    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    pub struct Poller {
        registered: Vec<(RawFd, u64, u32)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Vec::new(),
            })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            self.registered.push((fd, token, events));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
            for entry in &mut self.registered {
                if entry.0 == fd {
                    *entry = (fd, token, events);
                }
            }
            Ok(())
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.retain(|&(f, _, _)| f != fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<(u64, u32)>, timeout_ms: i32) -> io::Result<()> {
            std::thread::sleep(Duration::from_millis((timeout_ms as u64).min(1)));
            for &(_, token, events) in &self.registered {
                out.push((token, events));
            }
            Ok(())
        }
    }
}

use std::os::fd::AsRawFd;

use sys::Poller;

// ---------------------------------------------------------------------
// Per-connection state machine
// ---------------------------------------------------------------------

/// What a connection's state machine wants done with it after being
/// driven as far as the socket allows.
enum Action {
    /// Still alive; wait for the readiness the machine is blocked on.
    Keep,
    /// Still alive with work already buffered: hit the per-event frame
    /// budget ([`FRAMES_PER_EVENT`]).  Re-drive it next loop iteration
    /// — do *not* wait for readiness, which may never fire again for
    /// bytes that already left the kernel buffer.
    Yield,
    /// Finished or failed; deregister and close.
    Drop,
    /// This connection's [`Frame::Shutdown`] acknowledgement has fully
    /// drained: stop the whole daemon.
    Stop,
}

/// Frames one connection may consume per visit before the reactor
/// moves on.  Without the budget, a peer that keeps small pipelined
/// frames flowing (and drains its responses) would keep `advance`'s
/// flush→process→read loop running and monopolize the reactor thread,
/// starving every other connection.
const FRAMES_PER_EVENT: usize = 64;

struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded-but-unsent response bytes; `outpos` marks the sent
    /// prefix.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Readiness interest currently registered with the poller.
    registered: u32,
    /// Close once `outbuf` drains (protocol error or shutdown ack).
    closing: bool,
    /// This connection carried [`Frame::Shutdown`]: stop the daemon
    /// once the acknowledgement is flushed.
    is_shutdown: bool,
}

impl Connection {
    fn new(stream: TcpStream) -> Connection {
        Connection {
            stream,
            decoder: FrameDecoder::new(),
            outbuf: Vec::new(),
            outpos: 0,
            registered: interest::READ | interest::READ_HANGUP,
            closing: false,
            is_shutdown: false,
        }
    }

    fn queue(&mut self, frame: &Frame) {
        self.outbuf.extend_from_slice(&frame.encode());
    }

    fn has_pending_output(&self) -> bool {
        self.outpos < self.outbuf.len()
    }

    /// The readiness this connection should be registered for: drain
    /// output first; only solicit (and therefore read) new requests
    /// once the previous response is fully on the wire.
    fn wanted_interest(&self) -> u32 {
        if self.has_pending_output() {
            interest::WRITE | interest::READ_HANGUP
        } else {
            interest::READ | interest::READ_HANGUP
        }
    }

    /// Drive this connection as far as the socket allows or the frame
    /// budget permits: flush pending output, process buffered frames
    /// (one at a time — the next request is handled only after the
    /// previous response has drained), read newly arrived bytes,
    /// repeat.
    fn advance(&mut self, handler: &FrameHandler, read_buf: &mut [u8]) -> Action {
        let mut frames_this_visit = 0;
        loop {
            // 1. Flush whatever output is pending.
            while self.has_pending_output() {
                match self.stream.write(&self.outbuf[self.outpos..]) {
                    Ok(0) => return Action::Drop,
                    Ok(n) => self.outpos += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Action::Keep,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return Action::Drop,
                }
            }
            self.outbuf.clear();
            self.outpos = 0;
            if self.closing {
                return if self.is_shutdown {
                    Action::Stop
                } else {
                    Action::Drop
                };
            }

            // 2. Process one buffered request, if complete — unless
            // this visit's budget is spent, in which case yield the
            // thread to the other connections and resume next tick.
            if frames_this_visit >= FRAMES_PER_EVENT {
                return Action::Yield;
            }
            frames_this_visit += 1;
            match self.decoder.try_frame() {
                Some(Ok(Frame::Shutdown)) => {
                    self.queue(&Frame::Ok);
                    self.closing = true;
                    self.is_shutdown = true;
                    continue;
                }
                Some(Ok(frame)) => {
                    let response = handler(frame);
                    self.queue(&response);
                    continue;
                }
                Some(Err(e)) => {
                    // Unparseable bytes: report and close (the stream
                    // may be desynchronized) — after the report drains.
                    self.queue(&crate::daemon::err(
                        error_code::BAD_STATE,
                        format!("bad frame: {e}"),
                    ));
                    self.closing = true;
                    continue;
                }
                None => {}
            }

            // 3. Pull newly arrived bytes off the socket.
            match self.stream.read(read_buf) {
                Ok(0) => return Action::Drop, // peer hung up
                Ok(n) => {
                    self.decoder.feed(&read_buf[..n]);
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Action::Keep,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Action::Drop,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------

/// Token of the listening socket; connections get `1..`.
const LISTENER_TOKEN: u64 = 0;

/// The event loop serving every connection of one daemon from a single
/// thread.  Built by [`Reactor::bind`], consumed by [`Reactor::run`]
/// (which the daemon runs on one spawned thread).
pub struct Reactor {
    poller: Poller,
    listener: TcpListener,
    addr: SocketAddr,
    conns: HashMap<u64, Connection>,
    next_token: u64,
    handler: FrameHandler,
    stop: Arc<AtomicBool>,
    /// A [`Frame::Shutdown`] is being acknowledged: refuse new
    /// connections while it drains.
    draining: bool,
}

impl Reactor {
    /// Bind `addr` (nonblocking) and prepare the loop; no thread is
    /// spawned here, so the bound address is known before `run`.
    pub fn bind<A: ToSocketAddrs>(addr: A, handler: FrameHandler) -> std::io::Result<Reactor> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        // Best-effort: absorb whole connect storms in the accept queue
        // instead of making late clients retransmit SYNs.
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        let _ = sys::widen_backlog(listener.as_raw_fd(), 4096);
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        Ok(Reactor {
            poller,
            listener,
            addr,
            conns: HashMap::new(),
            next_token: LISTENER_TOKEN + 1,
            handler,
            stop: Arc::new(AtomicBool::new(false)),
            draining: false,
        })
    }

    /// The bound address (useful with port-0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The stop flag: set it and poke the listener (one throwaway
    /// connect) to make `run` return promptly; `run` also re-checks it
    /// at least every [`WAIT_MS`] on its own.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Number of currently open connections (for tests/introspection).
    pub fn n_connections(&self) -> usize {
        self.conns.len()
    }

    /// Run the event loop until the stop flag is set or a peer's
    /// [`Frame::Shutdown`] is acknowledged.  Consumes the reactor; all
    /// sockets close on return.
    pub fn run(mut self) {
        let mut poller = self.poller;
        if poller
            .add(self.listener.as_raw_fd(), LISTENER_TOKEN, interest::READ)
            .is_err()
        {
            return;
        }
        let mut read_buf = vec![0u8; READ_CHUNK];
        let mut events: Vec<(u64, u32)> = Vec::with_capacity(256);
        // Connections that hit their frame budget mid-visit: they have
        // work buffered in user space, so readiness may never fire for
        // it again — re-drive them every iteration until they block.
        let mut yielded: Vec<u64> = Vec::new();

        'outer: while !self.stop.load(Ordering::SeqCst) {
            events.clear();
            // With yielded work pending, poll without blocking so the
            // backlog keeps draining at event-loop cadence.
            let timeout = if yielded.is_empty() { WAIT_MS } else { 0 };
            if poller.wait(&mut events, timeout).is_err() {
                break;
            }
            // Budget-limited connections first (fairness: they were cut
            // off last iteration), then fresh readiness.
            events.splice(0..0, yielded.drain(..).map(|t| (t, 0)));
            for &(token, _readiness) in &events {
                if token == LISTENER_TOKEN {
                    // Drain the whole accept backlog: nonblocking, so a
                    // connect storm costs one registration each, not a
                    // thread each.
                    loop {
                        match self.listener.accept() {
                            Ok((stream, _)) => {
                                if self.draining
                                    || stream.set_nonblocking(true).is_err()
                                    || stream.set_nodelay(true).is_err()
                                {
                                    continue; // drop it
                                }
                                let token = self.next_token;
                                self.next_token += 1;
                                let conn = Connection::new(stream);
                                if poller
                                    .add(conn.stream.as_raw_fd(), token, conn.registered)
                                    .is_ok()
                                {
                                    self.conns.insert(token, conn);
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => break,
                        }
                    }
                    continue;
                }
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue; // already dropped this iteration
                };
                match conn.advance(&self.handler, &mut read_buf) {
                    Action::Keep => {
                        let wanted = conn.wanted_interest();
                        if wanted != conn.registered
                            && poller
                                .modify(conn.stream.as_raw_fd(), token, wanted)
                                .is_ok()
                        {
                            conn.registered = wanted;
                        }
                        if conn.is_shutdown {
                            self.draining = true;
                        }
                    }
                    Action::Yield => yielded.push(token),
                    Action::Drop => {
                        let conn = self.conns.remove(&token).expect("present");
                        let _ = poller.remove(conn.stream.as_raw_fd());
                    }
                    Action::Stop => {
                        self.stop.store(true, Ordering::SeqCst);
                        break 'outer;
                    }
                }
            }
        }
        // Dropping `self.conns` and the listener closes every socket;
        // peers see EOF.
    }
}
