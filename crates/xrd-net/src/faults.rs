//! Deterministic fault injection for adversarial deployment testing:
//! a frame-aware TCP proxy ([`FaultProxy`]) that sits between a
//! coordinator (or client) and one daemon and misdelivers traffic
//! according to a [`FaultPlan`].
//!
//! The proxy understands the wire protocol's `[u32 len | u8 tag |
//! payload]` framing just enough to target faults at specific frame
//! types without parsing payloads: it can drop, corrupt, delay,
//! truncate, reorder or stall individual frames, or cut the
//! connection outright.  Every injected fault bumps a
//! `fault.injected.<kind>` counter, so a chaos run's injected-fault
//! budget is visible in the same metrics scrape as the dispute
//! counters it is expected to trigger (see `docs/FAULTS.md`).
//!
//! Plans are deterministic: rule matching is pure counting (`skip`
//! then `count` matching frames, in traffic order) and the only
//! randomness — which payload byte a `corrupt` flips — comes from the
//! plan's seed.  Re-running the same workload against the same plan
//! injects the same faults.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::{Frame, MAX_FRAME_LEN};

/// What a matching [`FaultRule`] does to a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Swallow the frame entirely.
    Drop,
    /// Flip one payload byte (seed-chosen) and forward the frame.
    Corrupt,
    /// Forward the frame after sleeping `ms`.
    Delay,
    /// Forward the length prefix and half the body, then cut the
    /// connection — the peer is left mid-frame.
    Truncate,
    /// Hold the frame and emit it after the next frame in the same
    /// direction (a two-frame swap).
    Reorder,
    /// Stop forwarding in this direction without closing, for `ms`
    /// (or until shutdown when `ms` is 0) — what a wedged peer looks
    /// like; read deadlines are the intended victim.
    Stall,
    /// Cut the connection immediately, both directions.
    Disconnect,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Delay => "delay",
            FaultKind::Truncate => "truncate",
            FaultKind::Reorder => "reorder",
            FaultKind::Stall => "stall",
            FaultKind::Disconnect => "disconnect",
        }
    }
}

impl std::str::FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultKind, String> {
        match s {
            "drop" => Ok(FaultKind::Drop),
            "corrupt" => Ok(FaultKind::Corrupt),
            "delay" => Ok(FaultKind::Delay),
            "truncate" => Ok(FaultKind::Truncate),
            "reorder" => Ok(FaultKind::Reorder),
            "stall" => Ok(FaultKind::Stall),
            "disconnect" => Ok(FaultKind::Disconnect),
            other => Err(format!("unknown fault kind {other:?}")),
        }
    }
}

/// Which pump direction a rule watches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Client → daemon (requests, submissions, chunks).
    Up,
    /// Daemon → client (responses, hop outputs).
    Down,
    /// Either direction.
    Both,
}

impl Direction {
    fn matches(self, up: bool) -> bool {
        match self {
            Direction::Up => up,
            Direction::Down => !up,
            Direction::Both => true,
        }
    }
}

/// One fault: fires on the `skip+1`-th through `skip+count`-th frames
/// that match its tag filter and direction, across all of the proxy's
/// connections in traffic order.
#[derive(Clone, Copy, Debug)]
pub struct FaultRule {
    /// What to do to matching frames.
    pub kind: FaultKind,
    /// Only frames with this wire tag match (`None`: every frame).
    pub tag: Option<u8>,
    /// Matching frames to let through untouched first.
    pub skip: u32,
    /// Matching frames to fault after the skip (0 disables the rule).
    pub count: u32,
    /// Milliseconds for [`FaultKind::Delay`]/[`FaultKind::Stall`].
    pub ms: u64,
    /// Which pump direction the rule watches.
    pub dir: Direction,
}

impl FaultRule {
    /// A rule faulting the first frame of `kind` (any tag, both
    /// directions); builder-style setters refine it.
    pub fn new(kind: FaultKind) -> FaultRule {
        FaultRule {
            kind,
            tag: None,
            skip: 0,
            count: 1,
            ms: 0,
            dir: Direction::Both,
        }
    }

    /// Only fault frames with this wire tag.
    pub fn tag(mut self, tag: u8) -> FaultRule {
        self.tag = Some(tag);
        self
    }

    /// Let this many matching frames through first.
    pub fn skip(mut self, n: u32) -> FaultRule {
        self.skip = n;
        self
    }

    /// Fault this many matching frames (after the skip).
    pub fn count(mut self, n: u32) -> FaultRule {
        self.count = n;
        self
    }

    /// Delay/stall duration in milliseconds.
    pub fn ms(mut self, ms: u64) -> FaultRule {
        self.ms = ms;
        self
    }

    /// Restrict the rule to one pump direction.
    pub fn dir(mut self, dir: Direction) -> FaultRule {
        self.dir = dir;
        self
    }
}

/// A seeded schedule of [`FaultRule`]s for one proxy.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for the plan's randomness (corrupt-byte choice).
    pub seed: u64,
    /// The rules, evaluated in order per frame; the first match fires.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (a faithful proxy).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Append a rule.
    pub fn with(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Parse a plan from its config-file syntax: one rule per line,
    /// `<kind> [tag=FrameName|tag=0xNN] [skip=N] [count=N] [ms=N]
    /// [dir=up|down|both]`, with `#` comments and a `seed=N` line.
    ///
    /// ```text
    /// seed=42
    /// # lose the third submission on its way in
    /// drop tag=Submit skip=2 dir=up
    /// corrupt tag=MixBatchChunk
    /// stall tag=MixBatchEnd ms=500
    /// ```
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(seed) = line.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|e| format!("line {}: bad seed: {e}", lineno + 1))?;
                continue;
            }
            let mut words = line.split_whitespace();
            let kind: FaultKind = words
                .next()
                .expect("non-empty line has a first word")
                .parse()
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let mut rule = FaultRule::new(kind);
            for word in words {
                let (key, value) = word.split_once('=').ok_or_else(|| {
                    format!("line {}: expected key=value, got {word:?}", lineno + 1)
                })?;
                match key {
                    "tag" => {
                        rule.tag = Some(
                            parse_tag(value).map_err(|e| format!("line {}: {e}", lineno + 1))?,
                        )
                    }
                    "skip" => {
                        rule.skip = value
                            .parse()
                            .map_err(|e| format!("line {}: bad skip: {e}", lineno + 1))?
                    }
                    "count" => {
                        rule.count = value
                            .parse()
                            .map_err(|e| format!("line {}: bad count: {e}", lineno + 1))?
                    }
                    "ms" => {
                        rule.ms = value
                            .parse()
                            .map_err(|e| format!("line {}: bad ms: {e}", lineno + 1))?
                    }
                    "dir" => {
                        rule.dir = match value {
                            "up" => Direction::Up,
                            "down" => Direction::Down,
                            "both" => Direction::Both,
                            other => {
                                return Err(format!(
                                    "line {}: bad dir {other:?} (up|down|both)",
                                    lineno + 1
                                ))
                            }
                        }
                    }
                    other => return Err(format!("line {}: unknown key {other:?}", lineno + 1)),
                }
            }
            plan.rules.push(rule);
        }
        Ok(plan)
    }
}

/// `tag=` values: a frame name as printed by the protocol docs
/// (`Submit`, `MixBatchChunk`, …) or a raw `0xNN` byte.
fn parse_tag(value: &str) -> Result<u8, String> {
    if let Some(hex) = value.strip_prefix("0x") {
        return u8::from_str_radix(hex, 16).map_err(|e| format!("bad tag {value:?}: {e}"));
    }
    (0..=u8::MAX)
        .find(|&t| Frame::tag_name(t) == Some(value))
        .ok_or_else(|| format!("unknown frame name {value:?}"))
}

/// Live matching state of one rule (skip/count consumed so far).
struct RuleState {
    rule: FaultRule,
    skipped: u32,
    fired: u32,
}

/// State shared by every pump of one proxy: per-rule counters plus the
/// plan's RNG.  Global across connections so `skip`/`count` index the
/// proxy's whole traffic stream, matching how an operator reads a plan.
struct PlanState {
    rules: Vec<RuleState>,
    rng: StdRng,
}

impl PlanState {
    /// Decide what happens to one frame: the first rule that matches
    /// (direction, tag, past its skip, under its count) fires.
    /// Returns the action plus the faulted byte index for corruption.
    fn decide(&mut self, up: bool, tag: u8, body_len: usize) -> Option<(FaultKind, u64, usize)> {
        for state in &mut self.rules {
            let r = &state.rule;
            if !r.dir.matches(up) || r.tag.is_some_and(|t| t != tag) || state.fired >= r.count {
                continue;
            }
            if state.skipped < r.skip {
                state.skipped += 1;
                continue;
            }
            state.fired += 1;
            // Prefer flipping a payload byte (keeps the stream framed
            // but the content wrong); a tagless frame gets its tag
            // flipped, which desyncs the peer's decoder instead.
            let corrupt_at = if body_len > 1 {
                1 + self.rng.gen_range(0..body_len - 1)
            } else {
                0
            };
            return Some((r.kind, r.ms, corrupt_at));
        }
        None
    }
}

/// Fault-injection metric handles, resolved once per process.
fn fault_counter(kind: FaultKind) -> &'static xrd_obs::Counter {
    static METRICS: std::sync::OnceLock<[&'static xrd_obs::Counter; 7]> =
        std::sync::OnceLock::new();
    let all = METRICS.get_or_init(|| {
        [
            xrd_obs::counter("fault.injected.drop"),
            xrd_obs::counter("fault.injected.corrupt"),
            xrd_obs::counter("fault.injected.delay"),
            xrd_obs::counter("fault.injected.truncate"),
            xrd_obs::counter("fault.injected.reorder"),
            xrd_obs::counter("fault.injected.stall"),
            xrd_obs::counter("fault.injected.disconnect"),
        ]
    });
    match kind {
        FaultKind::Drop => all[0],
        FaultKind::Corrupt => all[1],
        FaultKind::Delay => all[2],
        FaultKind::Truncate => all[3],
        FaultKind::Reorder => all[4],
        FaultKind::Stall => all[5],
        FaultKind::Disconnect => all[6],
    }
}

/// A running fault proxy: every connection accepted on its listen
/// address is bridged to the upstream daemon through two frame-aware
/// pumps that consult the [`FaultPlan`] per frame.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Bridge `listen` to the daemon at `upstream` under `plan`.
    pub fn spawn<A: ToSocketAddrs>(
        listen: A,
        upstream: SocketAddr,
        plan: FaultPlan,
    ) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(PlanState {
            rules: plan
                .rules
                .iter()
                .map(|&rule| RuleState {
                    rule,
                    skipped: 0,
                    fired: 0,
                })
                .collect(),
            rng: StdRng::seed_from_u64(plan.seed),
        }));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = incoming else { continue };
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                spawn_pump(&client, &server, true, &state, &accept_stop);
                spawn_pump(&server, &client, false, &state, &accept_stop);
            }
        });
        Ok(FaultProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — what clients dial instead of the
    /// daemon.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop.  Existing pumps die
    /// with their connections (stalled pumps poll the stop flag).
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One direction's pump: read frames from `from`, apply the plan,
/// write survivors to `to`.  EOF or error on either side closes both.
fn spawn_pump(
    from: &TcpStream,
    to: &TcpStream,
    up: bool,
    state: &Arc<Mutex<PlanState>>,
    stop: &Arc<AtomicBool>,
) {
    let (Ok(from), Ok(to)) = (from.try_clone(), to.try_clone()) else {
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
        return;
    };
    let state = Arc::clone(state);
    let stop = Arc::clone(stop);
    std::thread::spawn(move || {
        pump(from, to, up, &state, &stop);
    });
}

fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    up: bool,
    state: &Arc<Mutex<PlanState>>,
    stop: &Arc<AtomicBool>,
) {
    // A frame held back by an active Reorder rule, emitted after its
    // successor (or at stream end).
    let mut held: Option<Vec<u8>> = None;
    while let Some(frame) = read_raw_frame(&mut from) {
        let tag = frame[4];
        let action = state
            .lock()
            .expect("fault plan poisoned")
            .decide(up, tag, frame.len() - 4);
        let verdict = match action {
            None => Ok(Some(frame)),
            Some((kind, ms, corrupt_at)) => {
                fault_counter(kind).incr();
                xrd_obs::debug!(
                    "fault injected: {} on {} frame (dir {})",
                    kind.name(),
                    Frame::tag_name(tag).unwrap_or("?"),
                    if up { "up" } else { "down" },
                );
                match kind {
                    FaultKind::Drop => Ok(None),
                    FaultKind::Corrupt => {
                        let mut frame = frame;
                        frame[4 + corrupt_at] ^= 0xA5;
                        Ok(Some(frame))
                    }
                    FaultKind::Delay => {
                        std::thread::sleep(Duration::from_millis(ms));
                        Ok(Some(frame))
                    }
                    FaultKind::Truncate => {
                        let cut = 4 + (frame.len() - 4) / 2;
                        let _ = to.write_all(&frame[..cut]);
                        Err(())
                    }
                    FaultKind::Reorder => {
                        if held.is_none() {
                            held = Some(frame);
                            Ok(None)
                        } else {
                            // Two simultaneous holds degenerate to
                            // pass-through; one swap at a time.
                            Ok(Some(frame))
                        }
                    }
                    FaultKind::Stall => {
                        let deadline =
                            (ms > 0).then(|| std::time::Instant::now() + Duration::from_millis(ms));
                        while !stop.load(Ordering::SeqCst)
                            && deadline.is_none_or(|d| std::time::Instant::now() < d)
                        {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        // A bounded stall resumes (deadline passed);
                        // an unbounded one only ends at shutdown.
                        if deadline.is_some() {
                            Ok(Some(frame))
                        } else {
                            Err(())
                        }
                    }
                    FaultKind::Disconnect => Err(()),
                }
            }
        };
        match verdict {
            Ok(Some(frame)) => {
                if to.write_all(&frame).is_err() {
                    break;
                }
                if let Some(held_frame) = held.take() {
                    if to.write_all(&held_frame).is_err() {
                        break;
                    }
                }
            }
            Ok(None) => {}
            Err(()) => break,
        }
    }
    if let Some(held_frame) = held {
        let _ = to.write_all(&held_frame);
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Read one raw wire frame (length prefix included).  `None` on EOF,
/// error, or an over-cap length (treated as peer desync).
fn read_raw_frame(from: &mut TcpStream) -> Option<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    from.read_exact(&mut len_bytes).ok()?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return None;
    }
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&len_bytes);
    from.read_exact(&mut frame[4..]).ok()?;
    Some(frame)
}
