//! Launch real `xrd-netd` processes from a deployment manifest.
//!
//! [`launch_manifest`] turns a validated [`Manifest`] into a running
//! multi-process deployment: it runs the §6.1 key ceremony in-process,
//! writes each mix server's config (secrets + public bundle) to a
//! private scratch directory, spawns one OS process per declared
//! daemon, wires the daemon-to-daemon forwarding links (each hop's
//! `--successor` flag, spawned in reverse hop order so every successor
//! address is known before its predecessor starts), and collects the
//! actual bound addresses from the daemons' `LISTENING <addr>` lines —
//! so `port 0` manifests work on any machine.
//!
//! The result, a [`LaunchedCluster`], is the multi-process analogue of
//! [`crate::remote::LocalCluster`]: connect a coordinator with
//! [`LaunchedCluster::connect`], tear everything down with
//! [`LaunchedCluster::shutdown`] (a wire [`Frame::Shutdown`] per
//! daemon, escalating to SIGKILL only for processes that ignore it).
//!
//! The launcher always spawns locally — for a multi-host manifest it
//! is run once per host, and each invocation can be restricted to
//! that host's processes.  See `docs/DEPLOYMENT.md` for the operator
//! walkthrough.

use std::collections::HashMap;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rand::RngCore;

use xrd_mixnet::chain_keys::{generate_chain_keys, rotate_inner_keys, ChainPublicKeys};
use xrd_topology::Topology;

use crate::codec::{encode_server_config, Frame};
use crate::conn::{Conn, NetError};
use crate::manifest::{Manifest, ProcessSpec, Role};
use crate::remote::RemoteDeployment;

/// One spawned daemon process and where it is actually listening.
struct ManagedProcess {
    child: Child,
    addr: SocketAddr,
    label: String,
}

/// A running multi-process deployment spawned by [`launch_manifest`]:
/// every declared daemon as its own OS process, addresses resolved,
/// keys generated.  Dropping the cluster kills any process still
/// running; prefer [`LaunchedCluster::shutdown`] for a clean wire-level
/// stop.
pub struct LaunchedCluster {
    processes: Vec<ManagedProcess>,
    /// Actual daemon addresses per chain, hop order.
    chain_addrs: Vec<Vec<SocketAddr>>,
    /// Every chain's public key bundle (round-0 inner keys active).
    chain_keys: Vec<ChainPublicKeys>,
    /// Actual mailbox shard addresses, shard order.
    mailbox_addrs: Vec<SocketAddr>,
    topo: Topology,
    config_dir: PathBuf,
}

impl LaunchedCluster {
    /// Daemon processes running (mix hops + mailbox shards).
    pub fn n_processes(&self) -> usize {
        self.processes.len()
    }

    /// The deployment's topology (derived from the manifest seed).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Actual daemon addresses per chain, hop order.
    pub fn chain_addrs(&self) -> &[Vec<SocketAddr>] {
        &self.chain_addrs
    }

    /// Actual mailbox shard addresses, shard order.
    pub fn mailbox_addrs(&self) -> &[SocketAddr] {
        &self.mailbox_addrs
    }

    /// Connect a coordinator to the running cluster.
    pub fn connect(&self) -> Result<RemoteDeployment, NetError> {
        self.connect_timeouts(
            crate::conn::ConnTimeouts::default(),
            crate::coordinator::RetryPolicy::default(),
        )
    }

    /// Connect a coordinator with explicit deadlines.  Scale runs size
    /// the read ceiling to the population: a loaded mix hop stays
    /// legitimately silent for however long decrypting its whole batch
    /// takes, and on an oversubscribed host that can be minutes.
    pub fn connect_timeouts(
        &self,
        timeouts: crate::conn::ConnTimeouts,
        retry: crate::coordinator::RetryPolicy,
    ) -> Result<RemoteDeployment, NetError> {
        RemoteDeployment::connect_with(
            self.topo.clone(),
            self.chain_addrs.clone(),
            self.chain_keys.clone(),
            self.mailbox_addrs.clone(),
            timeouts,
            retry,
        )
    }

    /// Stop every daemon: a [`Frame::Shutdown`] over the wire, then up
    /// to five seconds for each process to exit on its own before it
    /// is killed.  Returns the number of processes that needed the
    /// kill.
    pub fn shutdown(&mut self) -> usize {
        for p in &self.processes {
            if let Ok(mut conn) = Conn::connect(p.addr) {
                let _ = conn.send(&Frame::Shutdown);
            }
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut killed = 0;
        for p in &mut self.processes {
            loop {
                match p.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        xrd_obs::warn!("launcher: {} ignored Shutdown; killing", p.label);
                        let _ = p.child.kill();
                        let _ = p.child.wait();
                        killed += 1;
                        break;
                    }
                }
            }
        }
        let _ = std::fs::remove_dir_all(&self.config_dir);
        killed
    }
}

impl Drop for LaunchedCluster {
    fn drop(&mut self) {
        for p in &mut self.processes {
            if let Ok(None) = p.child.try_wait() {
                let _ = p.child.kill();
                let _ = p.child.wait();
            }
        }
        let _ = std::fs::remove_dir_all(&self.config_dir);
    }
}

/// Spawn the deployment a manifest describes, using the `xrd-netd`
/// binary at `netd`.  `rng` seeds the key ceremony (every chain's
/// keys are generated here and written, per server, to a scratch
/// directory the cluster owns).
///
/// Mix daemons are spawned chain by chain in **reverse hop order**:
/// the last hop first (no successor), then each predecessor with
/// `--successor` pointing at the *actual* bound address of the hop it
/// feeds — unless the manifest pins one explicitly — so forwarding
/// links survive `port 0` manifests.  Every spawn blocks until the
/// daemon announces `LISTENING <addr>`; a child that exits without
/// announcing aborts the launch (and tears down everything already
/// spawned).
pub fn launch_manifest<R: RngCore + ?Sized>(
    rng: &mut R,
    manifest: &Manifest,
    netd: &Path,
) -> std::io::Result<LaunchedCluster> {
    manifest
        .validate()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
    let topo = manifest.topology();
    let k = manifest.chain_len;

    static LAUNCH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let config_dir = std::env::temp_dir().join(format!(
        "xrd-launch-{}-{}",
        std::process::id(),
        LAUNCH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&config_dir)?;

    // Index the manifest's processes by role coordinates.
    let mut mix_specs: HashMap<(usize, usize), &ProcessSpec> = HashMap::new();
    let mut shard_specs: HashMap<usize, &ProcessSpec> = HashMap::new();
    for p in &manifest.processes {
        match p.role {
            Role::Mix { chain, hop, .. } => {
                mix_specs.insert((chain, hop), p);
            }
            Role::Mailbox { shard } => {
                shard_specs.insert(shard, p);
            }
        }
    }

    let mut cluster = LaunchedCluster {
        processes: Vec::new(),
        chain_addrs: Vec::new(),
        chain_keys: Vec::new(),
        mailbox_addrs: Vec::new(),
        topo,
        config_dir: config_dir.clone(),
    };

    // Key ceremony + mix daemons, chain by chain.
    for chain in 0..cluster.topo.n_chains() {
        let (mut secrets, mut public) = generate_chain_keys(rng, k, chain as u64);
        rotate_inner_keys(rng, &mut secrets, &mut public, 0);

        let mut addrs: Vec<SocketAddr> = vec![SocketAddr::from(([0, 0, 0, 0], 0)); k];
        for (hop, server_secrets) in secrets.into_iter().enumerate().rev() {
            let spec = mix_specs[&(chain, hop)];
            let listen = manifest.addr_of(spec).expect("validated");
            let config_path = config_dir.join(format!("chain-{chain}-hop-{hop}.cfg"));
            std::fs::write(&config_path, encode_server_config(&server_secrets, &public))?;

            let pinned = match spec.role {
                Role::Mix { successor, .. } => successor,
                Role::Mailbox { .. } => unreachable!("mix index holds mix specs"),
            };
            let successor = if hop + 1 < k {
                Some(pinned.unwrap_or(addrs[hop + 1]))
            } else {
                None
            };

            let label = format!("mix chain={chain} hop={hop}");
            let mut command = Command::new(netd);
            command
                .arg("mix")
                .arg("--config")
                .arg(&config_path)
                .arg("--listen")
                .arg(listen.to_string());
            if let Some(successor) = successor {
                command.arg("--successor").arg(successor.to_string());
            }
            let addr = spawn_announced(&mut cluster, command, &label)?;
            addrs[hop] = addr;
        }
        cluster.chain_addrs.push(addrs);
        cluster.chain_keys.push(public);
    }

    // Mailbox shards.
    for shard in 0..manifest.n_shards {
        let spec = shard_specs[&shard];
        let listen = manifest.addr_of(spec).expect("validated");
        let label = format!("mailbox shard={shard}");
        let mut command = Command::new(netd);
        command
            .arg("mailbox")
            .arg("--shard")
            .arg(shard.to_string())
            .arg("--shards")
            .arg(manifest.n_shards.to_string())
            .arg("--listen")
            .arg(listen.to_string());
        let addr = spawn_announced(&mut cluster, command, &label)?;
        cluster.mailbox_addrs.push(addr);
    }

    Ok(cluster)
}

/// Spawn one daemon process and block until it prints `LISTENING
/// <addr>`.  On any failure the already-running cluster is left to the
/// caller's `Drop` (which kills it).
fn spawn_announced(
    cluster: &mut LaunchedCluster,
    mut command: Command,
    label: &str,
) -> std::io::Result<SocketAddr> {
    let mut child = command
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .stdin(Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.strip_prefix("LISTENING ") {
                    match rest.trim().parse::<SocketAddr>() {
                        Ok(addr) => break addr,
                        Err(e) => {
                            let _ = child.kill();
                            let _ = child.wait();
                            return Err(std::io::Error::other(format!(
                                "{label}: unparseable announcement `{line}`: {e}"
                            )));
                        }
                    }
                }
            }
            Some(Err(e)) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(std::io::Error::other(format!(
                    "{label}: reading announcement: {e}"
                )));
            }
            None => {
                let status = child.wait();
                return Err(std::io::Error::other(format!(
                    "{label}: exited before announcing its address ({status:?})"
                )));
            }
        }
    };
    // Keep draining the child's stdout so it never blocks on a full
    // pipe (daemons are quiet after the announcement, but stay safe).
    std::thread::spawn(move || for _line in lines {});
    cluster.processes.push(ManagedProcess {
        child,
        addr,
        label: label.to_string(),
    });
    Ok(addr)
}
