//! Launch real `xrd-netd` processes from a deployment manifest.
//!
//! [`launch_manifest`] turns a validated [`Manifest`] into a running
//! multi-process deployment: it runs the §6.1 key ceremony in-process,
//! writes each mix server's config (secrets + public bundle) to a
//! private scratch directory, spawns one OS process per declared
//! daemon, wires the daemon-to-daemon forwarding links (each hop's
//! `--successor` flag, spawned in reverse hop order so every successor
//! address is known before its predecessor starts), and collects the
//! actual bound addresses from the daemons' `LISTENING <addr>` lines —
//! so `port 0` manifests work on any machine.
//!
//! The result, a [`LaunchedCluster`], is the multi-process analogue of
//! [`crate::remote::LocalCluster`]: connect a coordinator with
//! [`LaunchedCluster::connect`], tear everything down with
//! [`LaunchedCluster::shutdown`] (a wire [`Frame::Shutdown`] per
//! daemon, escalating to SIGKILL only for processes that ignore it).
//!
//! # Supervision
//!
//! A manifest with `restart N` (N > 0) launches a **supervised**
//! cluster: every daemon gets durable on-disk state (a `--journal`
//! file per mix hop, a `--dir` store per mailbox shard) and a
//! supervisor thread watches the children.  A child that exits with a
//! failure status — a crash, a `kill -9` — is respawned from its
//! config + journal with exponential backoff, up to N times; a child
//! that exits cleanly (wire [`Frame::Shutdown`]) is left down.  The
//! supervisor publishes `supervisor.restarts` / `supervisor.crashes`
//! counters, scrapeable over the wire from a loopback stats listener
//! ([`LaunchedCluster::stats_addr`]) that serves the launcher
//! process's own metric registry.
//!
//! The scratch directory is created mode `0o700` (it holds server
//! secrets).  A clean [`LaunchedCluster::shutdown`] of a supervised
//! cluster scrubs the secret `*.cfg` files but keeps journals and
//! mailbox stores on disk for post-mortems; an unsupervised shutdown
//! (and `Drop` in every case) removes the whole directory.
//!
//! The launcher always spawns locally — for a multi-host manifest it
//! is run once per host, and each invocation can be restricted to
//! that host's processes.  See `docs/DEPLOYMENT.md` for the operator
//! walkthrough.

use std::collections::HashMap;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::RngCore;

use xrd_mixnet::chain_keys::{generate_chain_keys, rotate_inner_keys, ChainPublicKeys};
use xrd_topology::Topology;

use crate::codec::{encode_server_config, error_code, Frame};
use crate::conn::{Conn, NetError};
use crate::daemon::DaemonHandle;
use crate::manifest::{Manifest, ProcessSpec, Role};
use crate::remote::RemoteDeployment;

/// Supervisor metric handles, resolved once per process.
fn supervisor_metrics() -> &'static SupervisorMetrics {
    static METRICS: std::sync::OnceLock<SupervisorMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| SupervisorMetrics {
        restarts: xrd_obs::counter("supervisor.restarts"),
        crashes: xrd_obs::counter("supervisor.crashes"),
    })
}

struct SupervisorMetrics {
    /// Crashed children successfully respawned.
    restarts: &'static xrd_obs::Counter,
    /// Children that exited with a failure status (or a signal).
    crashes: &'static xrd_obs::Counter,
}

/// One spawned daemon process, where it is actually listening, and
/// everything the supervisor needs to respawn it in place.
struct ManagedProcess {
    child: Child,
    addr: SocketAddr,
    label: String,
    /// The `xrd-netd` binary this child was spawned from.
    program: PathBuf,
    /// Full argv (minus argv\[0\]), with `--listen` pinned to the
    /// actual bound address so a respawn rebinds the same port.
    args: Vec<String>,
    /// Times this process has been respawned after a crash.
    restarts: u32,
    /// Exited cleanly (wire `Shutdown`); the supervisor leaves it down.
    done: bool,
    /// Crashed with its restart budget exhausted; permanently down.
    dead: bool,
}

/// A running multi-process deployment spawned by [`launch_manifest`]:
/// every declared daemon as its own OS process, addresses resolved,
/// keys generated.  Dropping the cluster kills any process still
/// running; prefer [`LaunchedCluster::shutdown`] for a clean wire-level
/// stop.
pub struct LaunchedCluster {
    processes: Arc<Mutex<Vec<ManagedProcess>>>,
    /// Actual daemon addresses per chain, hop order.
    chain_addrs: Vec<Vec<SocketAddr>>,
    /// Every chain's public key bundle (round-0 inner keys active).
    chain_keys: Vec<ChainPublicKeys>,
    /// Actual mailbox shard addresses, shard order.
    mailbox_addrs: Vec<SocketAddr>,
    topo: Topology,
    config_dir: PathBuf,
    /// Per-process crash-restart budget (the manifest's `restart N`).
    restart_budget: u32,
    supervisor: Option<std::thread::JoinHandle<()>>,
    supervisor_stop: Arc<AtomicBool>,
    /// Loopback reactor serving this process's metric registry (so
    /// `supervisor.*` counters are wire-scrapeable like daemon stats).
    stats_daemon: Option<DaemonHandle>,
}

impl LaunchedCluster {
    /// Daemon processes running (mix hops + mailbox shards).
    pub fn n_processes(&self) -> usize {
        self.processes.lock().expect("launcher lock").len()
    }

    /// The deployment's topology (derived from the manifest seed).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Actual daemon addresses per chain, hop order.
    pub fn chain_addrs(&self) -> &[Vec<SocketAddr>] {
        &self.chain_addrs
    }

    /// Actual mailbox shard addresses, shard order.
    pub fn mailbox_addrs(&self) -> &[SocketAddr] {
        &self.mailbox_addrs
    }

    /// Labels of every managed process, spawn order (chaos harness
    /// hook: pick a victim by index).
    pub fn process_labels(&self) -> Vec<String> {
        self.processes
            .lock()
            .expect("launcher lock")
            .iter()
            .map(|p| p.label.clone())
            .collect()
    }

    /// Listening address of process `index` (spawn order).
    pub fn process_addr(&self, index: usize) -> SocketAddr {
        self.processes.lock().expect("launcher lock")[index].addr
    }

    /// Address of the launcher's loopback stats listener, if the
    /// cluster is supervised.  A wire [`Frame::StatsRequest`] here
    /// returns the launcher process's counters — including
    /// `supervisor.restarts` and `supervisor.crashes`.
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.stats_daemon.as_ref().map(|d| d.addr())
    }

    /// Kill process `index` with SIGKILL — the chaos harness's crash
    /// injector.  The supervisor (if any) will observe the failure
    /// exit and respawn it from its on-disk config + journal.
    pub fn kill_process(&self, index: usize) {
        let mut procs = self.processes.lock().expect("launcher lock");
        let p = &mut procs[index];
        xrd_obs::warn!("launcher: killing {} (crash injection)", p.label);
        let _ = p.child.kill();
    }

    /// Wait until process `index` answers a wire [`Frame::Ping`]
    /// again, up to `timeout`.  Returns the time it took — the
    /// kill-to-liveness recovery latency — or `None` on timeout.
    pub fn await_live(&self, index: usize, timeout: Duration) -> Option<Duration> {
        let addr = self.process_addr(index);
        let start = Instant::now();
        while start.elapsed() < timeout {
            if let Ok(mut conn) = Conn::connect(addr) {
                if conn.ping().is_ok() {
                    return Some(start.elapsed());
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        None
    }

    /// Connect a coordinator to the running cluster.  Supervised
    /// clusters get the crash-recovery retry policy: a refused
    /// connection during a round is a daemon mid-reincarnation, not a
    /// dead deployment.
    pub fn connect(&self) -> Result<RemoteDeployment, NetError> {
        let retry = if self.restart_budget > 0 {
            crate::coordinator::RetryPolicy::crash_recovery()
        } else {
            crate::coordinator::RetryPolicy::default()
        };
        self.connect_timeouts(crate::conn::ConnTimeouts::default(), retry)
    }

    /// Connect a coordinator with explicit deadlines.  Scale runs size
    /// the read ceiling to the population: a loaded mix hop stays
    /// legitimately silent for however long decrypting its whole batch
    /// takes, and on an oversubscribed host that can be minutes.
    pub fn connect_timeouts(
        &self,
        timeouts: crate::conn::ConnTimeouts,
        retry: crate::coordinator::RetryPolicy,
    ) -> Result<RemoteDeployment, NetError> {
        RemoteDeployment::connect_with(
            self.topo.clone(),
            self.chain_addrs.clone(),
            self.chain_keys.clone(),
            self.mailbox_addrs.clone(),
            timeouts,
            retry,
        )
    }

    /// Stop every daemon: a [`Frame::Shutdown`] over the wire, then up
    /// to five seconds for each process to exit on its own before it
    /// is killed.  Returns the number of processes that needed the
    /// kill.
    ///
    /// The supervisor (if any) is stopped *first*, so a shutting-down
    /// daemon is never mistaken for a crash and respawned.  On a
    /// supervised cluster the scratch directory's secret `*.cfg` files
    /// are scrubbed but journals and mailbox stores are retained; an
    /// unsupervised cluster removes the whole directory.
    pub fn shutdown(&mut self) -> usize {
        self.stop_supervisor();
        let mut procs = self.processes.lock().expect("launcher lock");
        for p in procs.iter_mut() {
            if p.done || p.dead {
                continue;
            }
            if let Ok(mut conn) = Conn::connect(p.addr) {
                let _ = conn.send(&Frame::Shutdown);
            }
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut killed = 0;
        for p in procs.iter_mut() {
            if p.done || p.dead {
                continue;
            }
            loop {
                match p.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        xrd_obs::warn!("launcher: {} ignored Shutdown; killing", p.label);
                        let _ = p.child.kill();
                        let _ = p.child.wait();
                        killed += 1;
                        break;
                    }
                }
            }
        }
        drop(procs);
        if let Some(mut stats) = self.stats_daemon.take() {
            stats.shutdown();
        }
        if self.restart_budget > 0 {
            scrub_configs(&self.config_dir);
        } else {
            let _ = std::fs::remove_dir_all(&self.config_dir);
        }
        killed
    }

    fn stop_supervisor(&mut self) {
        self.supervisor_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LaunchedCluster {
    fn drop(&mut self) {
        self.stop_supervisor();
        let mut procs = self.processes.lock().expect("launcher lock");
        for p in procs.iter_mut() {
            if let Ok(None) = p.child.try_wait() {
                let _ = p.child.kill();
                let _ = p.child.wait();
            }
        }
        drop(procs);
        // Unconditional: journals only matter while the cluster could
        // still be revived, and leaking scratch dirs into /tmp is
        // worse than losing a post-mortem on an unclean drop.
        let _ = std::fs::remove_dir_all(&self.config_dir);
    }
}

/// Remove the secret config files (`*.cfg`) from the scratch
/// directory, leaving journals and mailbox stores in place.
fn scrub_configs(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "cfg") {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Spawn the deployment a manifest describes, using the `xrd-netd`
/// binary at `netd`.  `rng` seeds the key ceremony (every chain's
/// keys are generated here and written, per server, to a scratch
/// directory the cluster owns).
///
/// Mix daemons are spawned chain by chain in **reverse hop order**:
/// the last hop first (no successor), then each predecessor with
/// `--successor` pointing at the *actual* bound address of the hop it
/// feeds — unless the manifest pins one explicitly — so forwarding
/// links survive `port 0` manifests.  Every spawn blocks until the
/// daemon announces `LISTENING <addr>`; a child that exits without
/// announcing aborts the launch (and tears down everything already
/// spawned).
///
/// A manifest with `restart N` (N > 0) additionally provisions durable
/// state (`--journal` per mix hop, `--dir` per mailbox shard) and
/// starts the supervisor thread described in the module docs.
pub fn launch_manifest<R: RngCore + ?Sized>(
    rng: &mut R,
    manifest: &Manifest,
    netd: &Path,
) -> std::io::Result<LaunchedCluster> {
    manifest
        .validate()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
    let topo = manifest.topology();
    let k = manifest.chain_len;
    let supervised = manifest.restart > 0;

    static LAUNCH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let config_dir = std::env::temp_dir().join(format!(
        "xrd-launch-{}-{}",
        std::process::id(),
        LAUNCH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    // The directory holds server secrets: owner-only from birth.
    #[cfg(unix)]
    {
        use std::os::unix::fs::DirBuilderExt;
        std::fs::DirBuilder::new()
            .recursive(true)
            .mode(0o700)
            .create(&config_dir)?;
    }
    #[cfg(not(unix))]
    std::fs::create_dir_all(&config_dir)?;

    // Index the manifest's processes by role coordinates.
    let mut mix_specs: HashMap<(usize, usize), &ProcessSpec> = HashMap::new();
    let mut shard_specs: HashMap<usize, &ProcessSpec> = HashMap::new();
    for p in &manifest.processes {
        match p.role {
            Role::Mix { chain, hop, .. } => {
                mix_specs.insert((chain, hop), p);
            }
            Role::Mailbox { shard } => {
                shard_specs.insert(shard, p);
            }
        }
    }

    let mut cluster = LaunchedCluster {
        processes: Arc::new(Mutex::new(Vec::new())),
        chain_addrs: Vec::new(),
        chain_keys: Vec::new(),
        mailbox_addrs: Vec::new(),
        topo,
        config_dir: config_dir.clone(),
        restart_budget: manifest.restart,
        supervisor: None,
        supervisor_stop: Arc::new(AtomicBool::new(false)),
        stats_daemon: None,
    };

    // Key ceremony + mix daemons, chain by chain.
    for chain in 0..cluster.topo.n_chains() {
        let (mut secrets, mut public) = generate_chain_keys(rng, k, chain as u64);
        rotate_inner_keys(rng, &mut secrets, &mut public, 0);

        let mut addrs: Vec<SocketAddr> = vec![SocketAddr::from(([0, 0, 0, 0], 0)); k];
        for (hop, server_secrets) in secrets.into_iter().enumerate().rev() {
            let spec = mix_specs[&(chain, hop)];
            let listen = manifest.addr_of(spec).expect("validated");
            let config_path = config_dir.join(format!("chain-{chain}-hop-{hop}.cfg"));
            std::fs::write(&config_path, encode_server_config(&server_secrets, &public))?;

            let pinned = match spec.role {
                Role::Mix { successor, .. } => successor,
                Role::Mailbox { .. } => unreachable!("mix index holds mix specs"),
            };
            let successor = if hop + 1 < k {
                Some(pinned.unwrap_or(addrs[hop + 1]))
            } else {
                None
            };

            let label = format!("mix chain={chain} hop={hop}");
            let mut args = vec![
                "mix".to_string(),
                "--config".to_string(),
                config_path.display().to_string(),
                "--listen".to_string(),
                listen.to_string(),
            ];
            if let Some(successor) = successor {
                args.push("--successor".to_string());
                args.push(successor.to_string());
            }
            if supervised {
                args.push("--journal".to_string());
                args.push(
                    config_dir
                        .join(format!("chain-{chain}-hop-{hop}.journal"))
                        .display()
                        .to_string(),
                );
            }
            let addr = spawn_announced(&mut cluster, netd, args, &label)?;
            addrs[hop] = addr;
        }
        cluster.chain_addrs.push(addrs);
        cluster.chain_keys.push(public);
    }

    // Mailbox shards.
    for shard in 0..manifest.n_shards {
        let spec = shard_specs[&shard];
        let listen = manifest.addr_of(spec).expect("validated");
        let label = format!("mailbox shard={shard}");
        let mut args = vec![
            "mailbox".to_string(),
            "--shard".to_string(),
            shard.to_string(),
            "--shards".to_string(),
            manifest.n_shards.to_string(),
            "--listen".to_string(),
            listen.to_string(),
        ];
        if supervised {
            let dir = config_dir.join(format!("mailbox-shard-{shard}"));
            std::fs::create_dir_all(&dir)?;
            args.push("--dir".to_string());
            args.push(dir.display().to_string());
        }
        let addr = spawn_announced(&mut cluster, netd, args, &label)?;
        cluster.mailbox_addrs.push(addr);
    }

    if supervised {
        cluster.stats_daemon = Some(crate::daemon::spawn_daemon(
            "127.0.0.1:0",
            crate::reactor::service_fn(|frame| {
                // Ping, StatsRequest and Shutdown are answered by the
                // reactor itself; nothing else is served here.
                crate::daemon::err(
                    error_code::UNSUPPORTED,
                    format!(
                        "launcher stats listener does not serve {}",
                        Frame::tag_name(frame.tag()).unwrap_or("unknown frame")
                    ),
                )
            }),
        )?);
        cluster.supervisor = Some(spawn_supervisor(
            Arc::clone(&cluster.processes),
            Arc::clone(&cluster.supervisor_stop),
            manifest.restart,
        ));
    }

    Ok(cluster)
}

/// Start the supervisor thread: reap exited children, leave clean
/// exits down, respawn crashes from their on-disk config + journal
/// with exponential backoff until the per-process budget runs out.
fn spawn_supervisor(
    processes: Arc<Mutex<Vec<ManagedProcess>>>,
    stop: Arc<AtomicBool>,
    budget: u32,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("xrd-supervisor".into())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Find one crashed child per sweep; the respawn (which
                // blocks on the announcement) runs outside the lock.
                let mut respawn: Option<(usize, PathBuf, Vec<String>, String, u32)> = None;
                {
                    let mut procs = processes.lock().expect("launcher lock");
                    for (i, p) in procs.iter_mut().enumerate() {
                        if p.done || p.dead {
                            continue;
                        }
                        let status = match p.child.try_wait() {
                            Ok(Some(status)) => status,
                            Ok(None) => continue,
                            Err(e) => {
                                xrd_obs::warn!("supervisor: wait({}) failed: {e}", p.label);
                                continue;
                            }
                        };
                        if status.success() {
                            // Wire Shutdown: deliberate, stays down.
                            p.done = true;
                            continue;
                        }
                        supervisor_metrics().crashes.incr();
                        if p.restarts >= budget {
                            xrd_obs::warn!(
                                "supervisor: {} crashed ({status}); restart budget ({budget}) exhausted",
                                p.label
                            );
                            p.dead = true;
                            continue;
                        }
                        xrd_obs::warn!(
                            "supervisor: {} crashed ({status}); respawning (attempt {}/{budget})",
                            p.label,
                            p.restarts + 1
                        );
                        respawn = Some((
                            i,
                            p.program.clone(),
                            p.args.clone(),
                            p.label.clone(),
                            p.restarts,
                        ));
                        break;
                    }
                }
                let Some((i, program, args, label, prior)) = respawn else {
                    std::thread::sleep(Duration::from_millis(25));
                    continue;
                };
                // Exponential backoff: 50ms · 2^attempt, capped.
                let backoff = Duration::from_millis(50u64 << prior.min(6));
                std::thread::sleep(backoff);
                match spawn_process(&program, &args, &label) {
                    Ok((child, addr)) => {
                        supervisor_metrics().restarts.incr();
                        let mut procs = processes.lock().expect("launcher lock");
                        let p = &mut procs[i];
                        p.child = child;
                        p.addr = addr;
                        p.restarts = prior + 1;
                    }
                    Err(e) => {
                        xrd_obs::warn!("supervisor: respawn of {label} failed: {e}");
                        let mut procs = processes.lock().expect("launcher lock");
                        procs[i].dead = true;
                    }
                }
            }
        })
        .expect("spawn supervisor thread")
}

/// Spawn one daemon process, register it with the cluster, and pin its
/// `--listen` argument to the actual bound address so a supervisor
/// respawn rebinds the same port.
fn spawn_announced(
    cluster: &mut LaunchedCluster,
    netd: &Path,
    mut args: Vec<String>,
    label: &str,
) -> std::io::Result<SocketAddr> {
    let (child, addr) = spawn_process(netd, &args, label)?;
    if let Some(pos) = args.iter().position(|a| a == "--listen") {
        args[pos + 1] = addr.to_string();
    }
    cluster
        .processes
        .lock()
        .expect("launcher lock")
        .push(ManagedProcess {
            child,
            addr,
            label: label.to_string(),
            program: netd.to_path_buf(),
            args,
            restarts: 0,
            done: false,
            dead: false,
        });
    Ok(addr)
}

/// Spawn one daemon process and block until it prints `LISTENING
/// <addr>`.  On any failure the already-running cluster is left to the
/// caller's `Drop` (which kills it).
fn spawn_process(
    program: &Path,
    args: &[String],
    label: &str,
) -> std::io::Result<(Child, SocketAddr)> {
    let mut child = Command::new(program)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .stdin(Stdio::null())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.strip_prefix("LISTENING ") {
                    match rest.trim().parse::<SocketAddr>() {
                        Ok(addr) => break addr,
                        Err(e) => {
                            let _ = child.kill();
                            let _ = child.wait();
                            return Err(std::io::Error::other(format!(
                                "{label}: unparseable announcement `{line}`: {e}"
                            )));
                        }
                    }
                }
            }
            Some(Err(e)) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(std::io::Error::other(format!(
                    "{label}: reading announcement: {e}"
                )));
            }
            None => {
                let status = child.wait();
                return Err(std::io::Error::other(format!(
                    "{label}: exited before announcing its address ({status:?})"
                )));
            }
        }
    };
    // Keep draining the child's stdout so it never blocks on a full
    // pipe (daemons are quiet after the announcement, but stay safe).
    std::thread::spawn(move || for _line in lines {});
    Ok((child, addr))
}
