//! Client side of an XRD wire-protocol connection: a persistent TCP
//! stream carrying request/response [`Frame`] pairs, with byte
//! accounting for throughput reporting.
//!
//! The client side stays deliberately simple — blocking sockets, one
//! [`Conn`] per daemon endpoint.  The event-driven daemons answer a
//! connection's requests strictly in order and apply backpressure by
//! not reading ahead, so *pipelining* — several [`Conn::send`]s before
//! collecting responses with [`Conn::recv`] — works as long as the
//! in-flight requests plus their responses fit in the kernel socket
//! buffers (small frames like `Submit`/`Ok`: the storm driver in
//! [`crate::swarm`] pipelines a thousand connections this way).  Do
//! not pipeline behind a request with a large response (`GetBatch`,
//! `MixBatch`): the daemon stops reading until that response drains,
//! and a client still blocked in `send` never reaches `recv` — both
//! sides would wait on full buffers forever.
//!
//! Streamed batches (`MixBatchStart/Chunk…/End`) are the sanctioned
//! exception to the one-request-one-response shape: many request
//! frames, one multi-frame response that begins only after the End —
//! so the sender never competes with its own response stream.  These
//! rules are spec, not implementation detail: see `docs/PROTOCOL.md`
//! §6 ("Connection semantics, backpressure and pipelining").

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::codec::{CodecError, Frame};

/// Errors surfaced by wire operations.
#[derive(Debug)]
pub enum NetError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer sent bytes that do not parse as a frame.
    Codec(CodecError),
    /// The peer closed the connection mid-exchange.
    Disconnected,
    /// A blocking socket operation exceeded its deadline (see
    /// [`ConnTimeouts`]).  The stream may be mid-frame afterwards, so
    /// the connection must be dropped or reconnected — not reused.
    Timeout {
        /// Which operation timed out (`"connect"`, `"read"`, `"write"`).
        op: &'static str,
    },
    /// The peer answered with [`Frame::Error`].
    Remote {
        /// Machine-readable error code.
        code: u16,
        /// Human-readable context.
        message: String,
    },
    /// The peer answered with an unexpected frame type.
    Protocol(String),
}

impl NetError {
    /// Whether retrying the enclosing exchange on a fresh connection
    /// could plausibly succeed.  Transport-level trouble (socket
    /// errors, desynced streams, hangups, deadlines) is retryable; a
    /// daemon that *rejected* the request semantically is not — with
    /// the exception of `BAD_STATE`, which a corrupted-in-flight
    /// stream also produces (the daemon rejects the garbled chunk).
    pub fn retryable(&self) -> bool {
        match self {
            NetError::Io(_) | NetError::Codec(_) | NetError::Disconnected => true,
            NetError::Timeout { .. } => true,
            NetError::Remote { code, .. } => *code == crate::codec::error_code::BAD_STATE,
            NetError::Protocol(_) => false,
        }
    }

    fn from_io(e: std::io::Error, op: &'static str) -> NetError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                NetError::Timeout { op }
            }
            _ => NetError::Io(e),
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout { op } => write!(f, "{op} deadline exceeded"),
            NetError::Remote { code, message } => {
                write!(f, "remote error {code}: {message}")
            }
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::from_io(e, "read")
    }
}

/// Deadlines for one connection's blocking socket operations.
///
/// Defaults are deliberately generous — they exist to turn a stalled
/// or byzantine peer into an error instead of an eternal hang, not to
/// police latency.  Debug-build crypto on large batches is slow, so
/// the read deadline leaves ample headroom.
#[derive(Clone, Copy, Debug)]
pub struct ConnTimeouts {
    /// Deadline for the TCP connect itself.
    pub connect: Duration,
    /// Deadline for each blocking read (time with *no* bytes arriving;
    /// a slow-but-flowing peer resets it with every buffered refill).
    pub read: Duration,
    /// Deadline for each blocking write.
    pub write: Duration,
}

impl Default for ConnTimeouts {
    fn default() -> ConnTimeouts {
        ConnTimeouts {
            connect: Duration::from_secs(5),
            read: Duration::from_secs(60),
            write: Duration::from_secs(30),
        }
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> NetError {
        NetError::Codec(e)
    }
}

/// Client-side error counters, resolved once per process.  Every path
/// that gives up on a connection (or a request) is counted by cause
/// and debug-logs the peer — a client that silently drops a daemon
/// connection is as opaque as a daemon that silently drops a client.
fn conn_metrics() -> &'static ConnMetrics {
    static METRICS: std::sync::OnceLock<ConnMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ConnMetrics {
        err_codec: xrd_obs::counter("conn.err.codec"),
        err_disconnected: xrd_obs::counter("conn.err.disconnected"),
        err_remote: xrd_obs::counter("conn.err.remote"),
    })
}

struct ConnMetrics {
    /// Responses that did not parse as a frame (stream desync).
    err_codec: &'static xrd_obs::Counter,
    /// Peers that hung up mid-exchange.
    err_disconnected: &'static xrd_obs::Counter,
    /// [`Frame::Error`] responses received.
    err_remote: &'static xrd_obs::Counter,
}

/// A persistent request/response connection to one daemon.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    peer: SocketAddr,
    timeouts: ConnTimeouts,
    bytes_sent: u64,
    bytes_received: u64,
}

impl Conn {
    /// Connect to a daemon with the default [`ConnTimeouts`].
    pub fn connect(addr: SocketAddr) -> Result<Conn, NetError> {
        Conn::connect_with(addr, ConnTimeouts::default())
    }

    /// Connect to a daemon with explicit deadlines.
    pub fn connect_with(addr: SocketAddr, timeouts: ConnTimeouts) -> Result<Conn, NetError> {
        let stream = TcpStream::connect_timeout(&addr, timeouts.connect)
            .map_err(|e| NetError::from_io(e, "connect"))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeouts.read))?;
        stream.set_write_timeout(Some(timeouts.write))?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Conn {
            reader,
            writer,
            peer: addr,
            timeouts,
            bytes_sent: 0,
            bytes_received: 0,
        })
    }

    /// The deadlines this connection was opened with.
    pub fn timeouts(&self) -> ConnTimeouts {
        self.timeouts
    }

    /// Drop the current stream and dial the same peer again with the
    /// same deadlines, preserving byte accounting.  The recovery move
    /// after a [`NetError::Timeout`] or codec desync left the old
    /// stream unusable.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        let fresh = Conn::connect_with(self.peer, self.timeouts)?;
        self.reader = fresh.reader;
        self.writer = fresh.writer;
        Ok(())
    }

    /// The daemon's address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Bytes written so far (frame bytes, including prefixes).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Bytes read so far (approximate: counted per decoded frame).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Fire one frame without awaiting a response.  Responses to
    /// pipelined sends arrive in send order; collect each with
    /// [`Conn::recv`].
    pub fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        let encoded = frame.encode();
        if encoded.len() - 4 > crate::codec::MAX_FRAME_LEN {
            return Err(NetError::Codec(CodecError::Oversized {
                declared: encoded.len() - 4,
                cap: crate::codec::MAX_FRAME_LEN,
            }));
        }
        self.bytes_sent += encoded.len() as u64;
        self.writer
            .write_all(&encoded)
            .map_err(|e| NetError::from_io(e, "write"))?;
        self.writer
            .flush()
            .map_err(|e| NetError::from_io(e, "write"))?;
        Ok(())
    }

    /// Queue one frame into the write buffer **without flushing** —
    /// the pipelining fast path (one syscall per window instead of one
    /// per frame).  Call [`Conn::flush`] before awaiting responses, or
    /// the tail of the batch may never reach the peer.
    pub fn send_buffered(&mut self, frame: &Frame) -> Result<(), NetError> {
        let encoded = frame.encode();
        if encoded.len() - 4 > crate::codec::MAX_FRAME_LEN {
            return Err(NetError::Codec(CodecError::Oversized {
                declared: encoded.len() - 4,
                cap: crate::codec::MAX_FRAME_LEN,
            }));
        }
        self.bytes_sent += encoded.len() as u64;
        self.writer
            .write_all(&encoded)
            .map_err(|e| NetError::from_io(e, "write"))
    }

    /// Flush every frame queued with [`Conn::send_buffered`] to the
    /// socket.
    pub fn flush(&mut self) -> Result<(), NetError> {
        self.writer
            .flush()
            .map_err(|e| NetError::from_io(e, "write"))
    }

    /// Await one frame.
    pub fn recv(&mut self) -> Result<Frame, NetError> {
        match crate::codec::read_frame_with_len(&mut self.reader)? {
            None => {
                conn_metrics().err_disconnected.incr();
                xrd_obs::debug!("peer {} disconnected mid-exchange", self.peer);
                Err(NetError::Disconnected)
            }
            Some(Err(e)) => {
                conn_metrics().err_codec.incr();
                xrd_obs::debug!("peer {} sent an unparseable frame: {e}", self.peer);
                Err(e.into())
            }
            Some(Ok((frame, wire_len))) => {
                self.bytes_received += wire_len;
                Ok(frame)
            }
        }
    }

    /// Await one frame, also returning its raw *body* bytes (tag plus
    /// payload) — what a relay needs to forward the frame's payload to
    /// another daemon verbatim, or to digest it without re-encoding
    /// (see [`crate::codec::reframe_output_chunk`]).
    pub fn recv_with_body(&mut self) -> Result<(Frame, Vec<u8>), NetError> {
        match crate::codec::read_frame_with_body(&mut self.reader)? {
            None => {
                conn_metrics().err_disconnected.incr();
                xrd_obs::debug!("peer {} disconnected mid-exchange", self.peer);
                Err(NetError::Disconnected)
            }
            Some(Err(e)) => {
                conn_metrics().err_codec.incr();
                xrd_obs::debug!("peer {} sent an unparseable frame: {e}", self.peer);
                Err(e.into())
            }
            Some(Ok((frame, body))) => {
                self.bytes_received += 4 + body.len() as u64;
                Ok((frame, body))
            }
        }
    }

    /// Fire pre-encoded wire bytes (one or more complete frames,
    /// length prefixes included) without awaiting responses — the send
    /// half of the relay's raw-forward path, and of streamed batches
    /// built once with [`crate::codec::ChunkedBatch`].
    pub fn send_encoded(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.bytes_sent += bytes.len() as u64;
        self.writer
            .write_all(bytes)
            .map_err(|e| NetError::from_io(e, "write"))?;
        self.writer
            .flush()
            .map_err(|e| NetError::from_io(e, "write"))?;
        Ok(())
    }

    /// One request/response exchange.  [`Frame::Error`] responses are
    /// turned into [`NetError::Remote`].
    pub fn request(&mut self, frame: &Frame) -> Result<Frame, NetError> {
        self.send(frame)?;
        match self.recv()? {
            Frame::Error { code, message } => {
                conn_metrics().err_remote.incr();
                xrd_obs::debug!("peer {} answered error {code}: {message}", self.peer);
                Err(NetError::Remote { code, message })
            }
            other => Ok(other),
        }
    }

    /// Request and insist on [`Frame::Ok`].
    pub fn request_ok(&mut self, frame: &Frame) -> Result<(), NetError> {
        match self.request(frame)? {
            Frame::Ok => Ok(()),
            other => Err(NetError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    /// One [`Frame::Ping`]→[`Frame::Pong`] liveness probe (served by
    /// the daemon's reactor itself, so it answers even mid-round).
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.request(&Frame::Ping)? {
            Frame::Pong => Ok(()),
            other => Err(NetError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }
}
