//! # xrd-net
//!
//! The networked XRD deployment: everything needed to run the round
//! protocol of the in-process `xrd_core::Deployment` as real services
//! exchanging batches over TCP — the reproduction's analogue of the
//! paper's EC2 testbed (§8).
//!
//! * [`codec`] — the length-prefixed binary wire protocol: submissions,
//!   mix batches, hop attestations, inner-key reveals and rotations,
//!   blame messages, mailbox delivery/fetch; hand-rolled, hard size
//!   caps, canonical-encoding checks;
//! * [`conn`] — the client side of a connection (request/response with
//!   byte accounting);
//! * [`reactor`] — the event-driven core: a dependency-free
//!   epoll-based readiness loop (raw syscalls on Linux/x86-64, sweep
//!   fallback elsewhere) serving every connection of a daemon from one
//!   thread, with per-connection incremental decode/encode state
//!   machines;
//! * [`daemon`] — [`MixServerDaemon`] (one hop of one chain) and
//!   [`MailboxDaemon`] (one shard), each a single reactor thread
//!   holding thousands of concurrent connections;
//! * [`coordinator`] — [`ChainClient`], driving one chain's round state
//!   machine over the wire: submission window → k hops with
//!   cross-server proof verification → blame → inner-key reveal;
//! * [`remote`] — [`RemoteDeployment`] (implements
//!   `xrd_core::RoundBackend`, so it is interchangeable with the
//!   in-process deployment) and [`launch_local`] (a whole deployment on
//!   loopback, one port per daemon);
//! * [`swarm`] — a concurrent client fleet with latency/throughput
//!   reporting, plus [`submit_storm`]: ≥1000 concurrent submitter
//!   connections against a single daemon.
//!
//! The `xrd-netd` binary wraps the daemons for standalone (multi-
//! process or multi-machine) operation.

#![warn(missing_docs)]

pub mod codec;
pub mod conn;
pub mod coordinator;
pub mod daemon;
pub mod reactor;
pub mod remote;
pub mod swarm;

pub use codec::{CodecError, Frame};
pub use conn::{Conn, NetError};
pub use coordinator::ChainClient;
pub use daemon::{DaemonHandle, MailboxDaemon, MixServerDaemon};
pub use remote::{launch_local, LocalCluster, RemoteDeployment};
pub use swarm::{
    run_swarm, submit_storm, StormConfig, StormReport, SwarmConfig, SwarmReport, SwarmRoundStats,
};
