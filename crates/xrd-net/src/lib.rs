//! # xrd-net
//!
//! The networked XRD deployment: everything needed to run the round
//! protocol of the in-process `xrd_core::Deployment` as real services
//! exchanging batches over TCP — the reproduction's analogue of the
//! paper's EC2 testbed (§8).
//!
//! * [`codec`] — the length-prefixed binary wire protocol: submissions,
//!   mix batches (whole and chunk-streamed, with a running stream
//!   digest), hop attestations, inner-key reveals and rotations, blame
//!   messages, mailbox delivery/fetch; hand-rolled, hard size caps,
//!   canonical-encoding checks.  Spec: `docs/PROTOCOL.md`;
//! * [`conn`] — the client side of a connection (request/response with
//!   byte accounting, raw-forward helpers for relays);
//! * [`reactor`] — the event-driven core: a dependency-free
//!   epoll-based readiness loop (raw syscalls on Linux/x86-64, sweep
//!   fallback elsewhere) serving every connection of a daemon from one
//!   thread, with per-connection incremental decode/encode state
//!   machines, plus a small fixed-size worker pool that batch crypto
//!   is deferred to (a pending response slot per connection keeps the
//!   loop serving submissions while a hop runs);
//! * [`daemon`] — [`MixServerDaemon`] (one hop of one chain) and
//!   [`MailboxDaemon`] (one shard), each a single reactor thread
//!   holding thousands of concurrent connections; streamed batch
//!   chunks start hop crypto the moment they arrive;
//! * [`coordinator`] — [`ChainClient`], driving one chain's round state
//!   machine over the wire: submission window → k hops (whole-batch, or
//!   chunk-streamed as a pipeline with verbatim next-hop forwarding) →
//!   cross-server proof verification → blame → inner-key reveal;
//! * [`remote`] — [`RemoteDeployment`] (implements
//!   `xrd_core::RoundBackend`, so it is interchangeable with the
//!   in-process deployment) and [`launch_local`] (a whole deployment on
//!   loopback, one port per daemon);
//! * [`swarm`] — the emulated client fleet: a single-threaded client
//!   reactor ([`swarm::reactor`]) pumping 10k–100k per-user connection
//!   state machines (submit → ack, fetch pages → ack) from one epoll
//!   loop, with latency/throughput reporting; [`submit_storm`] storms
//!   one daemon with tens of thousands of concurrent submitters;
//! * [`manifest`] — parsed, validated deployment manifests: hosts,
//!   per-process chain/hop/shard placement, ports, and the
//!   daemon-to-daemon forwarding links, all checked against the
//!   seed-derived topology;
//! * [`launcher`] — spawn real `xrd-netd` processes from a manifest
//!   (key ceremony, config files, `--successor` wiring, address
//!   discovery) and connect a [`RemoteDeployment`] to them.  See
//!   `docs/DEPLOYMENT.md`;
//! * [`faults`] — the adversarial deployment harness: a seeded,
//!   frame-aware fault-injecting TCP proxy ([`FaultProxy`]) for chaos
//!   testing, complementing the byzantine daemon modes of [`daemon`]
//!   and the dispute-based liar localization in [`coordinator`].  See
//!   `docs/FAULTS.md`.
//!
//! The `xrd-netd` binary wraps the daemons for standalone (multi-
//! process or multi-machine) operation.

#![warn(missing_docs)]

pub mod codec;
pub mod conn;
pub mod coordinator;
pub mod daemon;
pub mod faults;
pub mod launcher;
pub mod manifest;
pub mod reactor;
pub mod remote;
pub mod swarm;

pub use codec::{BatchAssembler, ChunkedBatch, CodecError, Frame, StreamDigest, StreamError};
pub use conn::{Conn, ConnTimeouts, NetError};
pub use coordinator::{ChainClient, MixPhase, PendingChainRound, RetryPolicy, Transport};
pub use daemon::{ByzantineMode, DaemonHandle, MailboxDaemon, MixServerDaemon, SubmissionPolicy};
pub use faults::{Direction, FaultKind, FaultPlan, FaultProxy, FaultRule};
pub use launcher::{launch_manifest, LaunchedCluster};
pub use manifest::{Manifest, ManifestError};
pub use remote::{
    launch_local, launch_local_faulty, launch_local_faulty_with, launch_local_with_mailbox_faults,
    LocalCluster, RemoteDeployment,
};
pub use swarm::{
    mailbox_storm, run_swarm, submit_storm, MailboxStormConfig, MailboxStormReport, StormConfig,
    StormReport, SwarmConfig, SwarmReport, SwarmRoundStats,
};
