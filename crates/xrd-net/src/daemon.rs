//! The XRD server daemons: long-lived TCP services speaking the wire
//! protocol of [`crate::codec`].
//!
//! * [`MixServerDaemon`] — one hop position of one mix chain: accepts
//!   user submissions during the round window, fixes the canonical
//!   batch, runs AHS hops, verifies other servers' hop attestations,
//!   answers blame requests, reveals inner keys and rotates them.
//! * [`MailboxDaemon`] — one mailbox shard: accepts deliveries from the
//!   mix layer and drains mailboxes for fetching clients.
//!
//! Both daemons are event-driven: all connections of a daemon are
//! served by **one** reactor thread (see [`crate::reactor`]) running a
//! readiness loop over nonblocking sockets — no async runtime, no
//! per-connection threads, no external crates.  One daemon holds
//! thousands of concurrent submitter connections at a constant thread
//! count; batch-boundary crypto (`MixBatch`) still fans out across the
//! scoped-thread pool inside `MixServer::process_round`.  A
//! [`DaemonHandle`] owns the reactor thread and shuts the daemon down
//! when asked (or on drop).

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use xrd_core::mailbox::shard_of;
use xrd_mixnet::chain_keys::{rotation_share, ChainPublicKeys, ServerSecrets};
use xrd_mixnet::client::Submission;
use xrd_mixnet::message::outer_ct_len;
use xrd_mixnet::server::{input_digest, verify_hop, MixError, MixServer};

use crate::codec::{error_code, Frame};
use crate::reactor::{FrameHandler, Reactor};

// ---------------------------------------------------------------------
// Generic daemon plumbing
// ---------------------------------------------------------------------

/// A running daemon: its bound address plus shutdown control.  The
/// daemon itself is one reactor thread serving every connection.
pub struct DaemonHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon's bound address (useful with `port 0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the daemon stops of its own accord (a peer sent
    /// [`Frame::Shutdown`]).
    pub fn wait(&mut self) {
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }

    /// Stop the reactor (closing every open connection) and join it.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // The reactor re-checks the flag at its next wakeup; a
            // throwaway connect makes that wakeup immediate.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve `handler` on `addr` from one reactor thread.  The handler maps
/// each request frame to a response frame; [`Frame::Shutdown`] (handled
/// by the reactor itself) additionally stops the whole daemon.
fn spawn_daemon<A: ToSocketAddrs>(addr: A, handler: FrameHandler) -> std::io::Result<DaemonHandle> {
    let reactor = Reactor::bind(addr, handler)?;
    let addr = reactor.local_addr();
    let stop = reactor.stop_flag();
    let reactor_thread = std::thread::spawn(move || reactor.run());
    Ok(DaemonHandle {
        addr,
        stop,
        reactor_thread: Some(reactor_thread),
    })
}

pub(crate) fn err(code: u16, message: impl Into<String>) -> Frame {
    let mut message = message.into();
    // Error detail is advisory; keep it far below the codec's byte-string
    // cap no matter what (e.g. a Debug-printed jumbo frame).
    if message.len() > 512 {
        let cut = (0..=512).rev().find(|&i| message.is_char_boundary(i));
        message.truncate(cut.unwrap_or(0));
        message.push('…');
    }
    Frame::Error { code, message }
}

// ---------------------------------------------------------------------
// Mix-server daemon
// ---------------------------------------------------------------------

/// Mutable state of one mix-server daemon.
struct MixState {
    /// Long-term secrets (bsk/msk survive rotations; isk is per-round).
    secrets: ServerSecrets,
    /// The server executing hops under the *active* key bundle.
    server: MixServer,
    /// Prepared-but-inactive inner key: `(inner_epoch, isk)`.
    pending_isk: Option<(u64, xrd_crypto::Scalar)>,
    /// Round currently accepting submissions.
    open_round: Option<u64>,
    /// Submissions received for the open round (arrival order).
    pending_subs: Vec<Submission>,
    /// Canonical (sorted) batches per closed round.
    batches: HashMap<u64, Vec<Submission>>,
    /// Daemon-local randomness (shuffles, proofs).
    rng: StdRng,
}

impl MixState {
    fn public(&self) -> &ChainPublicKeys {
        self.server.public()
    }

    fn handle(&mut self, frame: Frame) -> Frame {
        match frame {
            Frame::Ping => Frame::Ok,
            Frame::OpenRound { round } => {
                self.open_round = Some(round);
                self.pending_subs.clear();
                Frame::Ok
            }
            Frame::Submit { round, submission } => {
                if self.open_round != Some(round) {
                    return err(error_code::UNKNOWN_ROUND, "no submission window open");
                }
                let k = self.public().len();
                if submission.ct.len() != outer_ct_len(k) {
                    return err(error_code::REJECTED_SUBMISSION, "wrong onion size");
                }
                if !submission.verify_pok(round) {
                    return err(error_code::REJECTED_SUBMISSION, "invalid PoK");
                }
                self.pending_subs.push(submission);
                Frame::Ok
            }
            Frame::CloseSubmissions { round } => {
                if self.open_round != Some(round) {
                    return err(error_code::UNKNOWN_ROUND, "window not open for round");
                }
                self.open_round = None;
                // Canonical order: sort by serialized bytes, so every
                // server that received the same set fixes the same batch.
                let mut batch = std::mem::take(&mut self.pending_subs);
                batch.sort_by_cached_key(|s| s.to_bytes());
                batch.dedup();
                let entries: Vec<_> = batch.iter().map(|s| s.to_entry()).collect();
                let digest = input_digest(&entries);
                let count = batch.len() as u64;
                self.batches.insert(round, batch);
                // Only the current and previous rounds are ever fetched
                // or blamed; pruning older batches bounds daemon memory
                // over a long-lived deployment.
                self.batches.retain(|&r, _| r + 1 >= round);
                Frame::BatchDigest {
                    round,
                    digest,
                    count,
                }
            }
            Frame::GetBatch { round } => match self.batches.get(&round) {
                Some(batch) => Frame::SubmissionBatch {
                    round,
                    submissions: batch.clone(),
                },
                None => err(error_code::UNKNOWN_ROUND, "no batch for round"),
            },
            Frame::MixBatch { round, entries } => {
                let position = self.secrets.position as u32;
                match self.server.process_round(&mut self.rng, round, entries) {
                    Ok(result) => Frame::HopOutput {
                        round,
                        position,
                        outputs: result.outputs,
                        proof: result.proof,
                    },
                    Err(MixError::DecryptFailure(failed)) => Frame::HopFailure {
                        round,
                        position,
                        failed: failed.into_iter().map(|i| i as u64).collect(),
                    },
                    Err(MixError::Malformed) => err(error_code::BAD_STATE, "malformed batch"),
                }
            }
            Frame::VerifyHop {
                round,
                position,
                inputs,
                outputs,
                proof,
            } => {
                let ok = (position as usize) < self.public().len()
                    && verify_hop(
                        self.public(),
                        position as usize,
                        round,
                        &inputs,
                        &outputs,
                        &proof,
                    );
                Frame::VerifyResult { ok }
            }
            Frame::RevealInnerKey { round: _ } => Frame::InnerKeyReveal {
                position: self.secrets.position as u32,
                isk: self.server.reveal_inner_key(),
            },
            Frame::PrepareRotation { inner_epoch } => {
                let (isk, share) =
                    rotation_share(&mut self.rng, self.secrets.position, inner_epoch);
                self.pending_isk = Some((inner_epoch, isk));
                Frame::RotationShare { inner_epoch, share }
            }
            Frame::ActivateRotation { keys } => {
                let Some((epoch, isk)) = self.pending_isk.take() else {
                    return err(error_code::BAD_ROTATION, "no rotation prepared");
                };
                if keys.inner_epoch != epoch {
                    self.pending_isk = Some((epoch, isk));
                    return err(error_code::BAD_ROTATION, "epoch mismatch");
                }
                let position = self.secrets.position;
                if keys.len() != self.public().len()
                    || keys.ipks[position] != xrd_crypto::GroupElement::base_mul(&isk)
                {
                    return err(error_code::BAD_ROTATION, "bundle does not carry my share");
                }
                if !keys.verify() {
                    return err(error_code::BAD_ROTATION, "bundle fails verification");
                }
                self.secrets.isk = isk;
                self.server = MixServer::new(self.secrets.clone(), keys);
                Frame::Ok
            }
            Frame::Accuse {
                round: _,
                input_index,
            } => match self.server.accuse(&mut self.rng, input_index as usize) {
                Some(accusation) => Frame::Accusation { accusation },
                None => err(error_code::NO_BLAME_STATE, "no retained state for slot"),
            },
            Frame::RevealSlot {
                round: _,
                output_index,
            } => Frame::SlotReveal {
                reveal: self
                    .server
                    .blame_reveal(&mut self.rng, output_index as usize)
                    .map(Box::new),
            },
            other => err(
                error_code::UNSUPPORTED,
                format!("mix daemon cannot serve {other:?}"),
            ),
        }
    }
}

/// A running mix-server daemon for one `(chain, position)`.
pub struct MixServerDaemon;

impl MixServerDaemon {
    /// Spawn a daemon serving hop `secrets.position` of a chain whose
    /// active public bundle is `public`, listening on `addr` (use
    /// `127.0.0.1:0` for an OS-assigned port).
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        secrets: ServerSecrets,
        public: ChainPublicKeys,
        rng_seed: u64,
    ) -> std::io::Result<DaemonHandle> {
        let state = Arc::new(Mutex::new(MixState {
            server: MixServer::new(secrets.clone(), public),
            secrets,
            pending_isk: None,
            open_round: None,
            pending_subs: Vec::new(),
            batches: HashMap::new(),
            rng: StdRng::seed_from_u64(rng_seed),
        }));
        spawn_daemon(
            addr,
            Arc::new(move |frame| state.lock().expect("mix state poisoned").handle(frame)),
        )
    }

    /// Spawn with a seed drawn from the OS RNG.
    pub fn spawn_os_seeded<A: ToSocketAddrs>(
        addr: A,
        secrets: ServerSecrets,
        public: ChainPublicKeys,
    ) -> std::io::Result<DaemonHandle> {
        let seed = rand::rngs::OsRng.next_u64();
        Self::spawn(addr, secrets, public, seed)
    }
}

// ---------------------------------------------------------------------
// Mailbox daemon
// ---------------------------------------------------------------------

struct MailboxState {
    /// This daemon's shard index and the deployment's shard count, used
    /// to reject deliveries that belong elsewhere.
    shard: usize,
    n_shards: usize,
    boxes: HashMap<[u8; 32], Vec<Vec<u8>>>,
}

impl MailboxState {
    fn handle(&mut self, frame: Frame) -> Frame {
        match frame {
            Frame::Ping => Frame::Ok,
            Frame::Deliver { round: _, messages } => {
                for m in &messages {
                    if shard_of(&m.mailbox, self.n_shards) != self.shard {
                        return err(error_code::BAD_STATE, "message routed to wrong shard");
                    }
                }
                for m in messages {
                    self.boxes.entry(m.mailbox).or_default().push(m.sealed);
                }
                Frame::Ok
            }
            Frame::Fetch { mailbox } => Frame::MailboxContents {
                sealed: self.boxes.remove(&mailbox).unwrap_or_default(),
            },
            other => err(
                error_code::UNSUPPORTED,
                format!("mailbox daemon cannot serve {other:?}"),
            ),
        }
    }
}

/// A running mailbox-shard daemon.
pub struct MailboxDaemon;

impl MailboxDaemon {
    /// Spawn the daemon owning `shard` of `n_shards`, listening on
    /// `addr`.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        shard: usize,
        n_shards: usize,
    ) -> std::io::Result<DaemonHandle> {
        assert!(shard < n_shards);
        let state = Arc::new(Mutex::new(MailboxState {
            shard,
            n_shards,
            boxes: HashMap::new(),
        }));
        spawn_daemon(
            addr,
            Arc::new(move |frame| state.lock().expect("mailbox state poisoned").handle(frame)),
        )
    }
}
