//! The XRD server daemons: long-lived TCP services speaking the wire
//! protocol of [`crate::codec`].
//!
//! * [`MixServerDaemon`] — one hop position of one mix chain: accepts
//!   user submissions during the round window, fixes the canonical
//!   batch, runs AHS hops, verifies other servers' hop attestations,
//!   answers blame requests, reveals inner keys and rotates them.
//! * [`MailboxDaemon`] — one mailbox shard: accepts (idempotent,
//!   batch-deduped) deliveries from the mix layer and serves clients
//!   paginated, ack-driven fetches over a pluggable
//!   [`MailboxStore`] — in-memory or log-structured persistent.
//!
//! Both daemons are event-driven: all connections of a daemon are
//! served by **one** reactor thread (see [`crate::reactor`]) running a
//! readiness loop over nonblocking sockets — no async runtime, no
//! per-connection threads, no external crates.  One daemon holds
//! thousands of concurrent submitter connections at a constant thread
//! count.
//!
//! Batch-boundary crypto never runs on the reactor thread: `MixBatch`
//! hops, streamed `MixBatchStart/Chunk/End` sessions and `VerifyHop`
//! attestation checks are **deferred** to the reactor's small
//! fixed-size worker pool (the connection's pending response slot
//! holds its place), so the event loop keeps accepting and verifying
//! submissions while a hop's crypto is in flight.  Streamed chunks are
//! dispatched to the pool *as they arrive* — a hop's compute overlaps
//! the remainder of its own transfer.  A [`DaemonHandle`] owns the
//! reactor thread and shuts the daemon down when asked (or on drop).

use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use xrd_core::mailbox::{
    shard_of, LogMailboxStore, LogStoreConfig, MailboxError, MailboxHub, MailboxStore,
};
use xrd_crypto::nizk::{DleqProof, SchnorrProof};
use xrd_crypto::ristretto::GroupElement;
use xrd_mixnet::chain_keys::{rotation_share, ChainPublicKeys, ServerSecrets};
use xrd_mixnet::client::Submission;
use xrd_mixnet::message::{outer_ct_len, MixEntry};
use xrd_mixnet::server::{input_digest, verify_hop_keys, ChunkKernel, MixError, MixServer};

use xrd_core::Journal;

use crate::codec::{
    decode_server_config, dispute_context, encode_hop_output_stream, encode_server_config,
    error_code, ChunkedBatch, Frame, StreamDigest, StreamError, STREAM_CHUNK,
};
use crate::conn::{Conn, NetError};
use crate::reactor::{service_fn, ConnId, Outcome, Reactor, ReactorHandle, Service, WorkerPool};

// ---------------------------------------------------------------------
// Generic daemon plumbing
// ---------------------------------------------------------------------

/// A running daemon: its bound address plus shutdown control.  The
/// daemon itself is one reactor thread serving every connection.
pub struct DaemonHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The daemon's bound address (useful with `port 0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the daemon stops of its own accord (a peer sent
    /// [`Frame::Shutdown`]).
    pub fn wait(&mut self) {
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }

    /// Stop the reactor (closing every open connection) and join it.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // The reactor re-checks the flag at its next wakeup; a
            // throwaway connect makes that wakeup immediate.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve `service` on `addr` from one reactor thread.  The service maps
/// each request frame to a response; [`Frame::Shutdown`] (handled
/// by the reactor itself) additionally stops the whole daemon.
pub(crate) fn spawn_daemon<A: ToSocketAddrs>(
    addr: A,
    service: Arc<dyn Service>,
) -> std::io::Result<DaemonHandle> {
    let reactor = Reactor::bind(addr, service)?;
    let addr = reactor.local_addr();
    let stop = reactor.stop_flag();
    let reactor_thread = std::thread::spawn(move || reactor.run());
    Ok(DaemonHandle {
        addr,
        stop,
        reactor_thread: Some(reactor_thread),
    })
}

/// Hop-job metric handles, resolved once per process (the jobs run as
/// move closures on the worker pool, so they cannot borrow handles
/// from the service).
fn hop_job_metrics() -> &'static HopJobMetrics {
    static METRICS: std::sync::OnceLock<HopJobMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| HopJobMetrics {
        wait_chunks_us: xrd_obs::hist("hop.wait_chunks_us"),
        encode_us: xrd_obs::hist("hop.encode_us"),
    })
}

struct HopJobMetrics {
    /// How long a streamed hop's End job waited for the session's chunk
    /// jobs to land (tail of the decrypt/blind phase still in flight
    /// when the End frame arrived).
    wait_chunks_us: &'static xrd_obs::Histogram,
    /// Output-encoding latency per completed hop (chunked stream or
    /// monolithic frame).
    encode_us: &'static xrd_obs::Histogram,
}

pub(crate) fn err(code: u16, message: impl Into<String>) -> Frame {
    let mut message = message.into();
    // Error detail is advisory; keep it far below the codec's byte-string
    // cap no matter what (e.g. a Debug-printed jumbo frame).
    if message.len() > 512 {
        let cut = (0..=512).rev().find(|&i| message.is_char_boundary(i));
        message.truncate(cut.unwrap_or(0));
        message.push('…');
    }
    Frame::Error { code, message }
}

// ---------------------------------------------------------------------
// Mix-server daemon
// ---------------------------------------------------------------------

/// Submission-window abuse limits for one mix daemon.
///
/// Submissions are anonymous by design, so "per user" can only mean
/// "per connection" at this layer: one client pumping one connection
/// cannot fill the window past `max_per_conn`, and the window as a
/// whole is capped at `max_pending` regardless of connection count —
/// a flooding client costs bounded daemon memory and cannot starve
/// the round.  Violations are rejected with
/// [`error_code::QUOTA_EXCEEDED`] and counted under
/// `submit.rejected.quota`.
#[derive(Clone, Copy, Debug)]
pub struct SubmissionPolicy {
    /// Submissions accepted from one connection per window.
    pub max_per_conn: u32,
    /// Total submissions held for the open window.
    pub max_pending: usize,
}

impl Default for SubmissionPolicy {
    fn default() -> SubmissionPolicy {
        SubmissionPolicy {
            // Deployments fan many users' submissions through few
            // connections (the coordinator's submit workers), so the
            // per-connection cap is generous; the window cap is the
            // codec's batch bound.
            max_per_conn: 4096,
            max_pending: crate::codec::MAX_BATCH,
        }
    }
}

/// Mix-daemon metric handles, resolved once per process.
fn mix_metrics() -> &'static MixMetrics {
    static METRICS: std::sync::OnceLock<MixMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| MixMetrics {
        rejected_quota: xrd_obs::counter("submit.rejected.quota"),
        evidence_served: xrd_obs::counter("dispute.evidence.served"),
        verdicts_heard: xrd_obs::counter("dispute.verdicts.heard"),
    })
}

struct MixMetrics {
    /// Submissions rejected by [`SubmissionPolicy`].
    rejected_quota: &'static xrd_obs::Counter,
    /// [`Frame::DisputeOpen`]s answered with signed evidence.
    evidence_served: &'static xrd_obs::Counter,
    /// [`Frame::DisputeVerdict`]s received and recorded.
    verdicts_heard: &'static xrd_obs::Counter,
}

/// Mutable state of one mix-server daemon.
struct MixState {
    /// Long-term secrets (bsk/msk survive rotations; isk is per-round).
    secrets: ServerSecrets,
    /// The server executing hops under the *active* key bundle.
    server: MixServer,
    /// Prepared-but-inactive inner key: `(inner_epoch, isk)`.
    pending_isk: Option<(u64, xrd_crypto::Scalar)>,
    /// Round currently accepting submissions.
    open_round: Option<u64>,
    /// Submissions received for the open round (arrival order).
    pending_subs: Vec<Submission>,
    /// Canonical (sorted) batches per closed round.
    batches: HashMap<u64, Vec<Submission>>,
    /// In-flight streamed hop sessions, one per connection.
    streams: HashMap<ConnId, HopStreamSession>,
    /// Submission-window abuse limits.
    policy: SubmissionPolicy,
    /// Submissions accepted per connection for the open window.
    submitted: HashMap<ConnId, u32>,
    /// Dispute verdicts gossiped to this server: `(round, accused,
    /// claim)` triples, retained for operator inspection.
    verdicts: Vec<(u64, u32, u8)>,
    /// Rounds the coordinator marked for daemon-to-daemon forwarding
    /// ([`Frame::MixForward`]), mapped to the *report* connection —
    /// the coordinator's own connection, where this hop's
    /// [`Frame::HopForwarded`] attestation (or, for the last hop, the
    /// full output stream) is pushed.
    forward_reports: HashMap<u64, ConnId>,
    /// Daemon-local randomness (shuffles, proofs).
    rng: StdRng,
    /// Durable control state (rotation epoch + shares, open window):
    /// what a respawned process must recover to rejoin its chain with
    /// the keys its peers expect.  `None` = this daemon is disposable
    /// only in the "whole deployment restarts" sense.
    journal: Option<Journal>,
}

// Journal record kinds for [`MixState`]'s control state.  One byte of
// kind followed by the payload; unknown kinds are skipped on restore
// (forward compatibility for rolling restarts).
/// `[kind][round:u64]` — a submission window opened.
const JREC_OPEN_ROUND: u8 = 1;
/// `[kind][inner_epoch:u64][isk:32]` — a rotation share was prepared
/// (and promised to the coordinator) for this epoch.
const JREC_PREPARE: u8 = 2;
/// `[kind][server config]` — a rotation activated; the payload is the
/// full [`encode_server_config`] bundle (secrets + active public keys),
/// replacing launch-time state wholesale on restore.
const JREC_ACTIVATE: u8 = 3;

/// One connection's in-flight streamed hop.  The session itself holds
/// only bookkeeping — every chunk's entries are *moved* into its
/// worker job (no copy on the reactor thread) and handed back through
/// the [`ChunkWork`] latch alongside the computed slots.
struct HopStreamSession {
    /// Entries the Start frame declared.
    total: usize,
    /// Entries received across chunks so far (overrun enforcement).
    received: usize,
    kernel: ChunkKernel,
    work: Arc<ChunkWork>,
    /// Chunk jobs dispatched so far (what the End job's latch waits
    /// for).
    jobs: usize,
}

/// Results of a session's chunk jobs: `(entry offset, entries, slots)`
/// pieces plus a completion latch.  The End job is enqueued on the
/// pool's FIFO *after* every chunk job of its session, so by the time
/// it runs, each of them has at least started — `wait_collect` can
/// only block on jobs already running on other workers, never on
/// queued ones (no deadlock at any pool size).
#[derive(Default)]
struct ChunkWork {
    #[allow(clippy::type_complexity)] // (offset, entries, slots) triples
    done: Mutex<Vec<(usize, Vec<MixEntry>, Vec<Option<MixEntry>>)>>,
    cv: Condvar,
}

impl ChunkWork {
    fn push(&self, start: usize, entries: Vec<MixEntry>, slots: Vec<Option<MixEntry>>) {
        self.done
            .lock()
            .expect("chunk work poisoned")
            .push((start, entries, slots));
        self.cv.notify_all();
    }

    /// Block until `jobs` pieces have landed, then reassemble the
    /// batch and its per-entry slots into stream order.
    fn wait_collect(&self, jobs: usize) -> (Vec<MixEntry>, Vec<Option<MixEntry>>) {
        let mut done = self.done.lock().expect("chunk work poisoned");
        while done.len() < jobs {
            done = self.cv.wait(done).expect("chunk work poisoned");
        }
        let mut pieces = std::mem::take(&mut *done);
        drop(done);
        pieces.sort_by_key(|(start, _, _)| *start);
        let mut inputs = Vec::new();
        let mut slots = Vec::new();
        for (_, entries, chunk_slots) in pieces {
            inputs.extend(entries);
            slots.extend(chunk_slots);
        }
        (inputs, slots)
    }
}

/// Forwarding metric handles, resolved once per process.
fn forward_metrics() -> &'static ForwardMetrics {
    static METRICS: std::sync::OnceLock<ForwardMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ForwardMetrics {
        batches: xrd_obs::counter("forward.batches"),
        failures: xrd_obs::counter("forward.failures"),
    })
}

struct ForwardMetrics {
    /// Output batches streamed straight to the next hop.
    batches: &'static xrd_obs::Counter,
    /// Forward attempts that failed past the reconnect retry (the
    /// coordinator falls back to relayed streaming).
    failures: &'static xrd_obs::Counter,
}

/// Everything a forwarded hop's End job needs to route its output
/// onward and its attestation back.
struct ForwardCtx {
    /// Connection the batch arrived on — the coordinator for hop 0,
    /// the predecessor daemon otherwise.  The job's reply goes here,
    /// and the predecessor's own forward blocks on it, so acks (and
    /// failures) cascade back up the chain.
    inbound: ConnId,
    /// The coordinator's connection (where [`Frame::MixForward`]
    /// arrived); unsolicited attestations are pushed onto it.
    report: ConnId,
    /// Next hop of the chain (`None` on the last hop).
    successor: Option<SocketAddr>,
    /// Cached blocking link to the successor.
    link: Arc<Mutex<Option<Conn>>>,
    /// Push handle onto this daemon's own reactor.
    handle: Option<ReactorHandle>,
}

/// Stream `outputs` to the successor as a normal
/// `MixBatchStart/Chunk/End` round and await its single ack frame —
/// with one reconnect retry, since the cached link may have idled out
/// between rounds.  (A restarted stream is safe: a second Start on the
/// same connection replaces the incomplete session.)
fn forward_batch(
    link: &Mutex<Option<Conn>>,
    successor: SocketAddr,
    round: u64,
    outputs: &[MixEntry],
) -> Result<(), NetError> {
    let batch = ChunkedBatch::build(round, outputs, STREAM_CHUNK);
    let mut guard = link.lock().expect("forward link poisoned");
    for attempt in 0..2 {
        if guard.is_none() {
            *guard = match Conn::connect(successor) {
                Ok(conn) => Some(conn),
                Err(_) if attempt == 0 => continue,
                Err(e) => return Err(e),
            };
        }
        let conn = guard.as_mut().expect("link just ensured");
        let result = (|| {
            for bytes in batch.frames() {
                conn.send_encoded(bytes)?;
            }
            match conn.recv()? {
                Frame::Ok => Ok(()),
                Frame::Error { code, message } => Err(NetError::Remote { code, message }),
                other => Err(NetError::Protocol(format!(
                    "expected Ok from next hop, got {other:?}"
                ))),
            }
        })();
        match result {
            Ok(()) => return Ok(()),
            Err(e) if attempt == 0 && e.retryable() => {
                *guard = None;
                continue;
            }
            Err(e) => {
                *guard = None;
                return Err(e);
            }
        }
    }
    unreachable!("forward_batch loop always returns within two attempts")
}

/// Route one forwarded hop's completed output.  Non-last hops stream
/// it straight to the successor and report a keys-only
/// [`Frame::HopForwarded`] attestation (the §6.3 statement involves
/// only DH key columns, so the coordinator audits the chain without
/// ever seeing the intermediate ciphertexts); the last hop pushes the
/// full output stream back to the coordinator — its attestation rides
/// in the stream's End frame.  Returns the bytes to reply on the
/// inbound connection.
fn forward_hop_output(
    fwd: &ForwardCtx,
    round: u64,
    position: u32,
    input_dhs: Vec<GroupElement>,
    outputs: &[MixEntry],
    proof: DleqProof,
) -> Vec<u8> {
    let Some(successor) = fwd.successor else {
        let bytes = encode_hop_output_stream(round, position, outputs, &proof, STREAM_CHUNK);
        forward_metrics().batches.incr();
        if fwd.report == fwd.inbound {
            // Single-hop chain: the coordinator streamed to us and is
            // awaiting this very reply.
            return bytes;
        }
        let Some(handle) = &fwd.handle else {
            forward_metrics().failures.incr();
            return err(
                error_code::BAD_STATE,
                "no reactor handle for forwarded report",
            )
            .encode();
        };
        handle.push(fwd.report, bytes);
        return Frame::Ok.encode();
    };
    if let Err(e) = forward_batch(&fwd.link, successor, round, outputs) {
        forward_metrics().failures.incr();
        return err(
            error_code::BAD_STATE,
            format!("forward to next hop {successor} failed: {e}"),
        )
        .encode();
    }
    forward_metrics().batches.incr();
    let attestation = Frame::HopForwarded {
        round,
        position,
        input_dhs,
        output_dhs: outputs.iter().map(|e| e.dh).collect(),
        proof,
    };
    if fwd.report == fwd.inbound {
        // Hop 0: the coordinator is awaiting our reply — the
        // attestation *is* the reply, and it doubles as the signal
        // that the whole downstream cascade acked.
        return attestation.encode();
    }
    let Some(handle) = &fwd.handle else {
        forward_metrics().failures.incr();
        return err(
            error_code::BAD_STATE,
            "no reactor handle for forwarded report",
        )
        .encode();
    };
    handle.push(fwd.report, attestation.encode());
    Frame::Ok.encode()
}

impl MixState {
    fn public(&self) -> &ChainPublicKeys {
        self.server.public()
    }

    /// Append one control record durably (fsync) before the state
    /// change it describes is acknowledged.  A journal failure is
    /// answered as a storage error: promising durability we cannot
    /// deliver would break the respawn contract.
    fn journal_record(&mut self, payload: &[u8]) -> Option<Frame> {
        if let Some(j) = &mut self.journal {
            if let Err(e) = j.append_sync(payload) {
                return Some(err(error_code::STORAGE, format!("state journal: {e}")));
            }
        }
        None
    }

    fn handle(&mut self, conn: ConnId, frame: Frame) -> Frame {
        match frame {
            Frame::Ping => Frame::Pong,
            Frame::OpenRound { round } => {
                // Idempotent for the coordinator's retry path: a
                // re-sent open for the already-open round must not
                // discard submissions accepted in between.
                if self.open_round != Some(round) {
                    self.open_round = Some(round);
                    self.pending_subs.clear();
                    self.submitted.clear();
                    let mut rec = vec![JREC_OPEN_ROUND];
                    rec.extend_from_slice(&round.to_le_bytes());
                    if let Some(e) = self.journal_record(&rec) {
                        return e;
                    }
                }
                Frame::Ok
            }
            Frame::Submit { round, submission } => {
                if self.open_round != Some(round) {
                    return err(error_code::UNKNOWN_ROUND, "no submission window open");
                }
                if self.pending_subs.len() >= self.policy.max_pending {
                    mix_metrics().rejected_quota.incr();
                    return err(error_code::QUOTA_EXCEEDED, "submission window full");
                }
                if self.submitted.get(&conn).copied().unwrap_or(0) >= self.policy.max_per_conn {
                    mix_metrics().rejected_quota.incr();
                    return err(error_code::QUOTA_EXCEEDED, "per-connection quota exhausted");
                }
                let k = self.public().len();
                if submission.ct.len() != outer_ct_len(k) {
                    return err(error_code::REJECTED_SUBMISSION, "wrong onion size");
                }
                if !submission.verify_pok(round) {
                    return err(error_code::REJECTED_SUBMISSION, "invalid PoK");
                }
                *self.submitted.entry(conn).or_insert(0) += 1;
                self.pending_subs.push(submission);
                Frame::Ok
            }
            Frame::CloseSubmissions { round } => {
                if self.open_round != Some(round) {
                    // Idempotent for the coordinator's retry path: a
                    // window already fixed re-answers its digest (the
                    // first response may have been lost in flight).
                    if let Some(batch) = self.batches.get(&round) {
                        let entries: Vec<_> = batch.iter().map(|s| s.to_entry()).collect();
                        return Frame::BatchDigest {
                            round,
                            digest: input_digest(&entries),
                            count: batch.len() as u64,
                        };
                    }
                    return err(error_code::UNKNOWN_ROUND, "window not open for round");
                }
                self.open_round = None;
                // Canonical order: sort by serialized bytes, so every
                // server that received the same set fixes the same batch.
                let mut batch = std::mem::take(&mut self.pending_subs);
                batch.sort_by_cached_key(|s| s.to_bytes());
                batch.dedup();
                let entries: Vec<_> = batch.iter().map(|s| s.to_entry()).collect();
                let digest = input_digest(&entries);
                let count = batch.len() as u64;
                self.batches.insert(round, batch);
                // Only the current and previous rounds are ever fetched
                // or blamed; pruning older batches bounds daemon memory
                // over a long-lived deployment.
                self.batches.retain(|&r, _| r + 1 >= round);
                Frame::BatchDigest {
                    round,
                    digest,
                    count,
                }
            }
            Frame::GetBatch { round } => match self.batches.get(&round) {
                Some(batch) => Frame::SubmissionBatch {
                    round,
                    submissions: batch.clone(),
                },
                None => err(error_code::UNKNOWN_ROUND, "no batch for round"),
            },
            Frame::RevealInnerKey { round: _ } => Frame::InnerKeyReveal {
                position: self.secrets.position as u32,
                isk: self.server.reveal_inner_key(),
            },
            Frame::PrepareRotation { inner_epoch } => {
                let (isk, share) =
                    rotation_share(&mut self.rng, self.secrets.position, inner_epoch);
                self.pending_isk = Some((inner_epoch, isk));
                // The share is a promise to the coordinator: if this
                // process dies before activation, its replacement must
                // still hold the isk the assembled bundle will carry.
                let mut rec = vec![JREC_PREPARE];
                rec.extend_from_slice(&inner_epoch.to_le_bytes());
                rec.extend_from_slice(&isk.to_bytes());
                if let Some(e) = self.journal_record(&rec) {
                    return e;
                }
                Frame::RotationShare { inner_epoch, share }
            }
            Frame::ActivateRotation { keys } => {
                if self.server.public() == &keys {
                    // Already running this bundle: a retry of an
                    // activation whose Ok was lost, or a respawned
                    // process that restored it from its journal.
                    return Frame::Ok;
                }
                let Some((epoch, isk)) = self.pending_isk.take() else {
                    return err(error_code::BAD_ROTATION, "no rotation prepared");
                };
                if keys.inner_epoch != epoch {
                    self.pending_isk = Some((epoch, isk));
                    return err(error_code::BAD_ROTATION, "epoch mismatch");
                }
                let position = self.secrets.position;
                if keys.len() != self.public().len()
                    || keys.ipks[position] != xrd_crypto::GroupElement::base_mul(&isk)
                {
                    return err(error_code::BAD_ROTATION, "bundle does not carry my share");
                }
                if !keys.verify() {
                    return err(error_code::BAD_ROTATION, "bundle fails verification");
                }
                self.secrets.isk = isk;
                self.server = MixServer::new(self.secrets.clone(), keys);
                // Activation obsoletes every earlier record: compact
                // the journal down to the new bundle (plus the open
                // window, if one is in flight).
                if let Some(j) = &mut self.journal {
                    let mut act = vec![JREC_ACTIVATE];
                    act.extend_from_slice(&encode_server_config(
                        &self.secrets,
                        self.server.public(),
                    ));
                    let mut open = Vec::new();
                    let mut records: Vec<&[u8]> = vec![&act];
                    if let Some(round) = self.open_round {
                        open.push(JREC_OPEN_ROUND);
                        open.extend_from_slice(&round.to_le_bytes());
                        records.push(&open);
                    }
                    if let Err(e) = j.rewrite(&records) {
                        return err(error_code::STORAGE, format!("state journal: {e}"));
                    }
                }
                Frame::Ok
            }
            Frame::Accuse {
                round: _,
                input_index,
            } => match self.server.accuse(&mut self.rng, input_index as usize) {
                Some(accusation) => Frame::Accusation { accusation },
                None => err(error_code::NO_BLAME_STATE, "no retained state for slot"),
            },
            Frame::RevealSlot {
                round: _,
                output_index,
            } => Frame::SlotReveal {
                reveal: self
                    .server
                    .blame_reveal(&mut self.rng, output_index as usize)
                    .map(Box::new),
            },
            Frame::DisputeVerdict {
                round,
                accused,
                claim,
                upheld,
                votes: _,
            } => {
                mix_metrics().verdicts_heard.incr();
                if upheld {
                    xrd_obs::info!(
                        "dispute verdict: round {round} server {accused} convicted (claim {claim})"
                    );
                    self.verdicts.push((round, accused, claim));
                }
                Frame::Ok
            }
            other => err(
                error_code::UNSUPPORTED,
                format!("mix daemon cannot serve {other:?}"),
            ),
        }
    }
}

/// The mix daemon's [`Service`]: cheap frames (submissions, window
/// control, key management, blame) are answered inline off
/// [`MixState::handle`]; hop crypto and attestation verification are
/// deferred to the worker pool so the reactor thread stays free to
/// serve submissions while a hop is in flight.
struct MixService {
    state: Arc<Mutex<MixState>>,
    /// Next hop of this daemon's chain, when deployed for
    /// daemon-to-daemon forwarding (static per process — the manifest
    /// places chains, so a hop's successor never changes while it
    /// runs).  `None` on the last hop and in relay-only deployments.
    successor: Option<SocketAddr>,
    /// Cached client connection to the successor, used only from
    /// worker jobs (never the reactor thread).  Reconnected on demand.
    forward_link: Arc<Mutex<Option<Conn>>>,
    /// Handle for pushing unsolicited frames (forwarded-mode
    /// attestations) to the coordinator's connection; installed by the
    /// reactor at bind time.
    handle: Mutex<Option<ReactorHandle>>,
}

impl MixService {
    fn new(state: Arc<Mutex<MixState>>, successor: Option<SocketAddr>) -> MixService {
        MixService {
            state,
            successor,
            forward_link: Arc::new(Mutex::new(None)),
            handle: Mutex::new(None),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MixState> {
        self.state.lock().expect("mix state poisoned")
    }

    /// `MixBatchStart`: open a streamed hop session for this
    /// connection.  A second Start on the same connection aborts and
    /// replaces the previous incomplete session (self-healing after a
    /// coordinator that gave up mid-stream).
    fn stream_start(&self, conn: ConnId, round: u64, total: u32) -> Outcome {
        let total = total as usize;
        if total > crate::codec::MAX_BATCH {
            return Outcome::reply(err(
                error_code::BAD_STATE,
                format!(
                    "stream rejected: {}",
                    StreamError::TooLarge { declared: total }
                ),
            ));
        }
        let mut state = self.lock();
        let kernel = state.server.chunk_kernel(round);
        state.streams.insert(
            conn,
            HopStreamSession {
                total,
                received: 0,
                kernel,
                work: Arc::new(ChunkWork::default()),
                jobs: 0,
            },
        );
        Outcome::Reply(Vec::new())
    }

    /// `MixBatchChunk`: dispatch the chunk's decrypt-and-blind to the
    /// pool immediately — compute overlaps the rest of the transfer.
    /// The entries move into the job (the reactor thread does only the
    /// overrun bookkeeping) and come back through the session latch
    /// for the End job to reassemble; the stream digest is likewise
    /// verified there, off this thread.
    fn stream_chunk(
        &self,
        conn: ConnId,
        entries: Vec<MixEntry>,
        workers: &Arc<WorkerPool>,
    ) -> Outcome {
        let mut state = self.lock();
        let Some(session) = state.streams.get_mut(&conn) else {
            return Outcome::reply(err(error_code::BAD_STATE, "chunk without MixBatchStart"));
        };
        if session.received + entries.len() > session.total {
            let e = StreamError::Overrun {
                received: session.received + entries.len(),
                total: session.total,
            };
            state.streams.remove(&conn);
            return Outcome::reply(err(error_code::BAD_STATE, format!("stream rejected: {e}")));
        }
        let start = session.received;
        session.received += entries.len();
        session.jobs += 1;
        let kernel = session.kernel.clone();
        let work = Arc::clone(&session.work);
        workers.spawn_job(move || {
            // A panicking kernel must still release the End job's
            // latch: empty slots make the hop report a malformed batch
            // (never blame) instead of wedging the session.
            let slots =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| kernel.process(&entries)))
                    .unwrap_or_default();
            work.push(start, entries, slots);
        });
        Outcome::Reply(Vec::new())
    }

    /// `MixBatchEnd`: defer the hop's assembly — the job waits for the
    /// session's chunk jobs, checks the stream digest, shuffles,
    /// proves, and either streams the output back to the sender or —
    /// in forwarded mode — pushes it straight to the chain's next hop,
    /// reporting only the keys-only attestation to the coordinator.
    fn stream_end(&self, conn: ConnId, digest: [u8; 32]) -> Outcome {
        let Some(session) = self.lock().streams.remove(&conn) else {
            return Outcome::reply(err(error_code::BAD_STATE, "end without MixBatchStart"));
        };
        let HopStreamSession {
            total,
            kernel,
            work,
            jobs,
            ..
        } = session;
        // Forwarded round?  Claim the report connection now (on the
        // reactor thread, under the state lock) so a duplicate End
        // cannot double-forward.
        let forward = self
            .lock()
            .forward_reports
            .remove(&kernel.round())
            .map(|report| ForwardCtx {
                inbound: conn,
                report,
                successor: self.successor,
                link: Arc::clone(&self.forward_link),
                handle: self.handle.lock().expect("handle poisoned").clone(),
            });
        let state = Arc::clone(&self.state);
        Outcome::Defer(Box::new(move || {
            let _span = xrd_obs::span_timer("hop.stream", kernel.round());
            let waited = std::time::Instant::now();
            let (inputs, slots) = work.wait_collect(jobs);
            hop_job_metrics()
                .wait_chunks_us
                .record_duration(waited.elapsed());
            if inputs.len() != total {
                let e = StreamError::Incomplete {
                    received: inputs.len(),
                    total,
                };
                return err(error_code::BAD_STATE, format!("stream rejected: {e}")).encode();
            }
            let mut computed = StreamDigest::new();
            computed.absorb_entries(&inputs);
            if computed.finalize() != digest {
                let e = StreamError::DigestMismatch;
                return err(error_code::BAD_STATE, format!("stream rejected: {e}")).encode();
            }
            let round = kernel.round();
            // Forwarded mode attests over key columns only (§6.3 —
            // the statement never involves ciphertexts), so the input
            // DH column is the one thing to save before the batch
            // moves into `finish_round`.
            let input_dhs: Option<Vec<GroupElement>> = forward
                .as_ref()
                .map(|_| inputs.iter().map(|e| e.dh).collect());
            let mut guard = state.lock().expect("mix state poisoned");
            let st = &mut *guard;
            let position = st.secrets.position as u32;
            match st.server.finish_round(&mut st.rng, round, inputs, slots) {
                Ok(result) => {
                    // The proof and shuffle are done; release the lock
                    // before the output encoding pass.
                    drop(guard);
                    if let Some(fwd) = forward {
                        return forward_hop_output(
                            &fwd,
                            round,
                            position,
                            input_dhs.unwrap_or_default(),
                            &result.outputs,
                            result.proof,
                        );
                    }
                    let encoding = std::time::Instant::now();
                    let bytes = encode_hop_output_stream(
                        round,
                        position,
                        &result.outputs,
                        &result.proof,
                        STREAM_CHUNK,
                    );
                    hop_job_metrics()
                        .encode_us
                        .record_duration(encoding.elapsed());
                    bytes
                }
                Err(MixError::DecryptFailure(failed)) => Frame::HopFailure {
                    round,
                    position,
                    failed: failed.into_iter().map(|i| i as u64).collect(),
                }
                .encode(),
                Err(MixError::Malformed) => err(error_code::BAD_STATE, "malformed batch").encode(),
            }
        }))
    }

    /// Whole-batch `MixBatch` (kept for small batches and
    /// backward compatibility): same crypto, same offload, monolithic
    /// framing.
    fn defer_mix(&self, round: u64, entries: Vec<MixEntry>) -> Outcome {
        let state = Arc::clone(&self.state);
        Outcome::Defer(Box::new(move || {
            let _span = xrd_obs::span_timer("hop.whole", round);
            // Heavy part first, without the state lock: the reactor
            // thread keeps serving submissions off the same state.
            let kernel = state
                .lock()
                .expect("mix state poisoned")
                .server
                .chunk_kernel(round);
            let slots = kernel.process_parallel(&entries);
            let mut guard = state.lock().expect("mix state poisoned");
            let st = &mut *guard;
            let position = st.secrets.position as u32;
            match st.server.finish_round(&mut st.rng, round, entries, slots) {
                Ok(result) => {
                    drop(guard);
                    let encoding = std::time::Instant::now();
                    let bytes = Frame::HopOutput {
                        round,
                        position,
                        outputs: result.outputs,
                        proof: result.proof,
                    }
                    .encode();
                    hop_job_metrics()
                        .encode_us
                        .record_duration(encoding.elapsed());
                    bytes
                }
                Err(MixError::DecryptFailure(failed)) => Frame::HopFailure {
                    round,
                    position,
                    failed: failed.into_iter().map(|i| i as u64).collect(),
                }
                .encode(),
                Err(MixError::Malformed) => err(error_code::BAD_STATE, "malformed batch").encode(),
            }
        }))
    }

    /// `DisputeOpen`: re-check the disputed attestation against this
    /// server's copy of the public bundle and answer with signed
    /// evidence.  The verification is pure public-data work off a
    /// bundle snapshot; the state lock is taken only for the signing
    /// nonce at the end.  `force_upheld` is the byzantine hook: a
    /// lying witness signs a fixed verdict instead of its honest
    /// re-check — producing transferable evidence of its own lie.
    fn defer_dispute(
        &self,
        round: u64,
        accused: u32,
        input_dhs: Vec<GroupElement>,
        output_dhs: Vec<GroupElement>,
        proof: DleqProof,
        force_upheld: Option<bool>,
    ) -> Outcome {
        let public = self.lock().server.public().clone();
        let state = Arc::clone(&self.state);
        Outcome::Defer(Box::new(move || {
            let valid = (accused as usize) < public.len()
                && input_dhs.len() == output_dhs.len()
                && verify_hop_keys(
                    &public,
                    accused as usize,
                    round,
                    input_dhs.iter(),
                    output_dhs.iter(),
                    &proof,
                );
            let upheld = force_upheld.unwrap_or(!valid);
            let ctx = dispute_context(round, accused, upheld, &input_dhs, &output_dhs, &proof);
            let mut guard = state.lock().expect("mix state poisoned");
            let st = &mut *guard;
            let position = st.secrets.position as u32;
            // `mpk_i = bpk_i^msk` — the mix key lives over the chained
            // blinding base for this position, not the group generator.
            let mpk = st.server.public().mpks[st.secrets.position];
            let base = st.server.public().bpks[st.secrets.position];
            let sig = SchnorrProof::prove(&mut st.rng, &ctx, &base, &mpk, &st.secrets.msk);
            drop(guard);
            mix_metrics().evidence_served.incr();
            Frame::DisputeEvidence {
                round,
                position,
                accused,
                upheld,
                sig,
            }
            .encode()
        }))
    }

    /// Attestation checks (full-entry or keys-only): pure public-data
    /// work off a snapshot of the bundle — no state lock held in the
    /// job at all.
    fn defer_verify(
        &self,
        round: u64,
        position: u32,
        input_dhs: Vec<GroupElement>,
        output_dhs: Vec<GroupElement>,
        proof: DleqProof,
    ) -> Outcome {
        let public = self.lock().server.public().clone();
        Outcome::Defer(Box::new(move || {
            let ok = (position as usize) < public.len()
                && input_dhs.len() == output_dhs.len()
                && verify_hop_keys(
                    &public,
                    position as usize,
                    round,
                    input_dhs.iter(),
                    output_dhs.iter(),
                    &proof,
                );
            Frame::VerifyResult { ok }.encode()
        }))
    }
}

impl Service for MixService {
    fn attach(&self, handle: ReactorHandle) {
        *self.handle.lock().expect("handle poisoned") = Some(handle);
    }

    fn handle(&self, conn: ConnId, frame: Frame, workers: &Arc<WorkerPool>) -> Outcome {
        match frame {
            Frame::MixForward { round } => {
                // The coordinator marks the round as forwarded; this
                // connection becomes the round's report channel for
                // the hop's attestation (or, last hop, its output).
                let mut state = self.lock();
                state.forward_reports.insert(round, conn);
                // Only the current and previous rounds are live.
                state.forward_reports.retain(|&r, _| r + 1 >= round);
                Outcome::reply(Frame::Ok)
            }
            Frame::MixBatchStart { round, total } => self.stream_start(conn, round, total),
            Frame::MixBatchChunk { entries } => self.stream_chunk(conn, entries, workers),
            Frame::MixBatchEnd { digest } => self.stream_end(conn, digest),
            Frame::MixBatch { round, entries } => self.defer_mix(round, entries),
            Frame::VerifyHop {
                round,
                position,
                inputs,
                outputs,
                proof,
            } => {
                if inputs.len() != outputs.len() {
                    return Outcome::reply(Frame::VerifyResult { ok: false });
                }
                self.defer_verify(
                    round,
                    position,
                    inputs.iter().map(|e| e.dh).collect(),
                    outputs.iter().map(|e| e.dh).collect(),
                    proof,
                )
            }
            Frame::VerifyHopKeys {
                round,
                position,
                input_dhs,
                output_dhs,
                proof,
            } => self.defer_verify(round, position, input_dhs, output_dhs, proof),
            Frame::DisputeOpen {
                round,
                accused,
                input_dhs,
                output_dhs,
                proof,
            } => self.defer_dispute(round, accused, input_dhs, output_dhs, proof, None),
            other => Outcome::reply(self.lock().handle(conn, other)),
        }
    }

    fn on_close(&self, conn: ConnId) {
        // Drop any half-assembled stream; its already-dispatched chunk
        // jobs finish into an orphaned latch and are freed with it.
        let mut state = self.lock();
        state.streams.remove(&conn);
        state.submitted.remove(&conn);
    }
}

/// How a byzantine mix daemon misbehaves (see `docs/FAULTS.md`).
///
/// Each mode is one concrete lie the dispute machinery must localize:
/// the daemon otherwise runs the full honest protocol, so the lie is
/// the *only* divergence a test observes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzantineMode {
    /// Answer every attestation check with `ok: false`, and uphold
    /// every dispute regardless of the evidence — a verifier trying
    /// to frame honest provers.
    LieVerify,
    /// Corrupt the daemon's input-agreement digest, simulating a
    /// server that equivocates about the batch it fixed.
    EquivocateDigest,
    /// Tamper with the daemon's own hop output after proving, so its
    /// emitted key column no longer matches its attestation.
    CorruptHop,
}

impl std::str::FromStr for ByzantineMode {
    type Err = String;

    fn from_str(s: &str) -> Result<ByzantineMode, String> {
        match s {
            "lie-verify" => Ok(ByzantineMode::LieVerify),
            "equivocate-digest" => Ok(ByzantineMode::EquivocateDigest),
            "corrupt-hop" => Ok(ByzantineMode::CorruptHop),
            other => Err(format!(
                "unknown byzantine mode {other:?} \
                 (expected lie-verify, equivocate-digest or corrupt-hop)"
            )),
        }
    }
}

/// A [`MixService`] wrapper that injects one [`ByzantineMode`]'s lie
/// and delegates everything else — the honest protocol with exactly
/// one strategic deviation.
struct ByzantineService {
    inner: MixService,
    mode: ByzantineMode,
}

impl ByzantineService {
    /// Lies told so far (`byzantine.lies` counter).
    fn metrics() -> &'static xrd_obs::Counter {
        static LIES: std::sync::OnceLock<&'static xrd_obs::Counter> = std::sync::OnceLock::new();
        LIES.get_or_init(|| xrd_obs::counter("byzantine.lies"))
    }
}

impl Service for ByzantineService {
    fn attach(&self, handle: ReactorHandle) {
        self.inner.attach(handle);
    }

    fn handle(&self, conn: ConnId, frame: Frame, workers: &Arc<WorkerPool>) -> Outcome {
        match (self.mode, &frame) {
            // A framing verifier: every attestation is "invalid".
            (ByzantineMode::LieVerify, Frame::VerifyHop { .. })
            | (ByzantineMode::LieVerify, Frame::VerifyHopKeys { .. }) => {
                Self::metrics().incr();
                Outcome::reply(Frame::VerifyResult { ok: false })
            }
            // ... and it perjures itself in disputes, signing `upheld`
            // over statements it knows verify — transferable evidence
            // of the lie.
            (ByzantineMode::LieVerify, Frame::DisputeOpen { .. }) => {
                let Frame::DisputeOpen {
                    round,
                    accused,
                    input_dhs,
                    output_dhs,
                    proof,
                } = frame
                else {
                    unreachable!()
                };
                Self::metrics().incr();
                self.inner
                    .defer_dispute(round, accused, input_dhs, output_dhs, proof, Some(true))
            }
            // An equivocator: its digest never matches the honest
            // majority's.
            (ByzantineMode::EquivocateDigest, Frame::CloseSubmissions { .. }) => {
                match self.inner.handle(conn, frame, workers) {
                    Outcome::Reply(mut frames) => {
                        for f in &mut frames {
                            if let Frame::BatchDigest { digest, .. } = f {
                                Self::metrics().incr();
                                digest[0] ^= 0xFF;
                            }
                        }
                        Outcome::Reply(frames)
                    }
                    other => other,
                }
            }
            // A tampering prover: its emitted key column diverges from
            // the column it proved over, so every honest verifier
            // rejects the attestation.
            (ByzantineMode::CorruptHop, Frame::MixBatch { .. }) => {
                match self.inner.handle(conn, frame, workers) {
                    Outcome::Defer(job) => Outcome::Defer(Box::new(move || {
                        let bytes = job();
                        match Frame::decode(bytes.get(4..).unwrap_or_default()) {
                            Ok(Frame::HopOutput {
                                round,
                                position,
                                mut outputs,
                                proof,
                            }) if outputs.len() >= 2 => {
                                Self::metrics().incr();
                                // Swapping two DH keys (but not their
                                // ciphertexts) breaks the proven
                                // input/output correspondence while
                                // every element still parses.
                                let dh = outputs[0].dh;
                                outputs[0].dh = outputs[1].dh;
                                outputs[1].dh = dh;
                                Frame::HopOutput {
                                    round,
                                    position,
                                    outputs,
                                    proof,
                                }
                                .encode()
                            }
                            _ => bytes,
                        }
                    })),
                    other => other,
                }
            }
            _ => self.inner.handle(conn, frame, workers),
        }
    }

    fn on_close(&self, conn: ConnId) {
        self.inner.on_close(conn);
    }
}

/// A running mix-server daemon for one `(chain, position)`.
pub struct MixServerDaemon;

impl MixServerDaemon {
    fn state(
        secrets: ServerSecrets,
        public: ChainPublicKeys,
        rng_seed: u64,
        policy: SubmissionPolicy,
        journal: Option<(Journal, Vec<Vec<u8>>)>,
    ) -> Arc<Mutex<MixState>> {
        let (journal, records) = match journal {
            Some((j, records)) => (Some(j), records),
            None => (None, Vec::new()),
        };
        let (secrets, public, pending_isk, open_round) = Self::restore(secrets, public, &records);
        Arc::new(Mutex::new(MixState {
            server: MixServer::new(secrets.clone(), public),
            secrets,
            pending_isk,
            open_round,
            pending_subs: Vec::new(),
            batches: HashMap::new(),
            streams: HashMap::new(),
            policy,
            submitted: HashMap::new(),
            verdicts: Vec::new(),
            forward_reports: HashMap::new(),
            rng: StdRng::seed_from_u64(rng_seed),
            journal,
        }))
    }

    /// Fold recovered journal records over the launch-time config: the
    /// latest activation replaces the key bundle wholesale, a prepared
    /// share after it re-arms `pending_isk`, and the open window id is
    /// whatever was last opened.  Unknown kinds and short payloads are
    /// skipped (the checksum already proved they were written whole).
    fn restore(
        secrets: ServerSecrets,
        public: ChainPublicKeys,
        records: &[Vec<u8>],
    ) -> (
        ServerSecrets,
        ChainPublicKeys,
        Option<(u64, xrd_crypto::Scalar)>,
        Option<u64>,
    ) {
        let mut secrets = secrets;
        let mut public = public;
        let mut pending_isk = None;
        let mut open_round = None;
        for rec in records {
            match rec.first() {
                Some(&JREC_OPEN_ROUND) if rec.len() == 9 => {
                    open_round = Some(u64::from_le_bytes(rec[1..9].try_into().expect("8 bytes")));
                }
                Some(&JREC_PREPARE) if rec.len() == 41 => {
                    let epoch = u64::from_le_bytes(rec[1..9].try_into().expect("8 bytes"));
                    let isk = xrd_crypto::Scalar::from_bytes_mod_order(
                        &rec[9..41].try_into().expect("32 bytes"),
                    );
                    pending_isk = Some((epoch, isk));
                }
                Some(&JREC_ACTIVATE) => {
                    if let Ok((s, p)) = decode_server_config(&rec[1..]) {
                        secrets = s;
                        public = p;
                        pending_isk = None;
                    }
                }
                _ => {}
            }
        }
        (secrets, public, pending_isk, open_round)
    }

    /// Spawn a daemon serving hop `secrets.position` of a chain whose
    /// active public bundle is `public`, listening on `addr` (use
    /// `127.0.0.1:0` for an OS-assigned port).
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        secrets: ServerSecrets,
        public: ChainPublicKeys,
        rng_seed: u64,
    ) -> std::io::Result<DaemonHandle> {
        Self::spawn_with_policy(addr, secrets, public, rng_seed, SubmissionPolicy::default())
    }

    /// Spawn with explicit submission-window limits.
    pub fn spawn_with_policy<A: ToSocketAddrs>(
        addr: A,
        secrets: ServerSecrets,
        public: ChainPublicKeys,
        rng_seed: u64,
        policy: SubmissionPolicy,
    ) -> std::io::Result<DaemonHandle> {
        let state = Self::state(secrets, public, rng_seed, policy, None);
        spawn_daemon(addr, Arc::new(MixService::new(state, None)))
    }

    /// Spawn with a chain successor for daemon-to-daemon forwarding:
    /// when the coordinator marks a round forwarded
    /// ([`Frame::MixForward`]), this hop streams its output straight
    /// to `successor` instead of back to the sender, reporting only
    /// its keys-only attestation.  Pass `None` on the last hop.
    pub fn spawn_with_successor<A: ToSocketAddrs>(
        addr: A,
        secrets: ServerSecrets,
        public: ChainPublicKeys,
        rng_seed: u64,
        successor: Option<SocketAddr>,
    ) -> std::io::Result<DaemonHandle> {
        let state = Self::state(secrets, public, rng_seed, SubmissionPolicy::default(), None);
        spawn_daemon(addr, Arc::new(MixService::new(state, successor)))
    }

    /// Spawn with a durable state journal at `journal` (created if
    /// absent, replayed if populated): rotation epochs/shares and the
    /// open submission window survive `kill -9`, so a supervisor can
    /// respawn this daemon from its on-disk config + journal and it
    /// rejoins the chain with the keys its peers expect.
    pub fn spawn_with_journal<A: ToSocketAddrs>(
        addr: A,
        secrets: ServerSecrets,
        public: ChainPublicKeys,
        rng_seed: u64,
        successor: Option<SocketAddr>,
        journal: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<DaemonHandle> {
        let (journal, records) = Journal::open(journal)?;
        let state = Self::state(
            secrets,
            public,
            rng_seed,
            SubmissionPolicy::default(),
            Some((journal, records)),
        );
        spawn_daemon(addr, Arc::new(MixService::new(state, successor)))
    }

    /// Spawn a *byzantine* daemon: the honest protocol with exactly
    /// one strategic lie injected (fault harness; see
    /// [`ByzantineMode`] and `docs/FAULTS.md`).
    pub fn spawn_byzantine<A: ToSocketAddrs>(
        addr: A,
        secrets: ServerSecrets,
        public: ChainPublicKeys,
        rng_seed: u64,
        mode: ByzantineMode,
    ) -> std::io::Result<DaemonHandle> {
        let state = Self::state(secrets, public, rng_seed, SubmissionPolicy::default(), None);
        spawn_daemon(
            addr,
            Arc::new(ByzantineService {
                inner: MixService::new(state, None),
                mode,
            }),
        )
    }

    /// Spawn with a seed drawn from the OS RNG.
    pub fn spawn_os_seeded<A: ToSocketAddrs>(
        addr: A,
        secrets: ServerSecrets,
        public: ChainPublicKeys,
    ) -> std::io::Result<DaemonHandle> {
        let seed = rand::rngs::OsRng.next_u64();
        Self::spawn(addr, secrets, public, seed)
    }
}

// ---------------------------------------------------------------------
// Mailbox daemon
// ---------------------------------------------------------------------

/// How many recent [`Frame::Deliver`] batch ids each shard remembers
/// for retry dedup.  A sender retries a batch within (at most) a few
/// connection lifetimes, so a small window is plenty; an id that has
/// aged out of it would only be re-stored if a sender retried a batch
/// thousands of batches later, which the coordinator never does.
const DELIVER_DEDUP_WINDOW: usize = 4096;

/// Mailbox-daemon metric handles, resolved once per process.  (The
/// store itself counts `mailbox.puts/pages/acks`; these cover the wire
/// layer in front of it.)
fn mailbox_metrics() -> &'static MailboxMetrics {
    static METRICS: std::sync::OnceLock<MailboxMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| MailboxMetrics {
        batches: xrd_obs::counter("mailbox.deliver.batches"),
        duplicates: xrd_obs::counter("mailbox.deliver.duplicates"),
    })
}

struct MailboxMetrics {
    /// Deliver batches stored.
    batches: &'static xrd_obs::Counter,
    /// Deliver batches answered from the dedup window (a retry whose
    /// original reply was lost).
    duplicates: &'static xrd_obs::Counter,
}

/// Map a store refusal onto the wire's error vocabulary.
fn mailbox_err(e: MailboxError) -> Frame {
    let code = match e {
        MailboxError::UnknownMailbox { .. } => error_code::UNKNOWN_MAILBOX,
        MailboxError::ShardFull { .. } => error_code::MAILBOX_FULL,
        MailboxError::Storage { .. } => error_code::STORAGE,
        // A wrong-shard put or an out-of-range cursor is a peer bug,
        // not a store condition the peer can act on.
        MailboxError::WrongShard { .. } | MailboxError::BadCursor { .. } => error_code::BAD_STATE,
    };
    err(code, e.to_string())
}

struct MailboxState {
    /// This daemon's shard index and the deployment's shard count, used
    /// to reject deliveries that belong elsewhere.
    shard: usize,
    n_shards: usize,
    store: Box<dyn MailboxStore + Send>,
    /// Recently stored `(round, batch)` Deliver ids, plus their arrival
    /// order for eviction.
    seen_batches: HashSet<(u64, u64)>,
    batch_order: VecDeque<(u64, u64)>,
}

impl MailboxState {
    fn handle(&mut self, frame: Frame) -> Frame {
        match frame {
            Frame::Ping => Frame::Pong,
            Frame::Deliver {
                round,
                batch,
                messages,
            } => {
                if self.seen_batches.contains(&(round, batch)) {
                    // A retry of a batch whose Ok got lost: it is
                    // already stored (and flushed), so just re-ack.
                    mailbox_metrics().duplicates.incr();
                    return Frame::Ok;
                }
                for m in &messages {
                    if shard_of(&m.mailbox, self.n_shards) != self.shard {
                        return err(error_code::BAD_STATE, "message routed to wrong shard");
                    }
                }
                // Open a durable delivery bracket.  A persistent store
                // that committed this id before a crash-restart answers
                // `false` — the batch is already on disk even though
                // this process's in-memory window never saw it.
                match self.store.begin_batch(round, batch) {
                    Ok(true) => {}
                    Ok(false) => {
                        mailbox_metrics().duplicates.incr();
                        return Frame::Ok;
                    }
                    Err(e) => return mailbox_err(e),
                }
                for m in messages {
                    if let Err(e) = self.store.put(round, m) {
                        // Roll the partial batch back so recovery never
                        // applies half a delivery; the sender retries
                        // the whole batch.
                        let _ = self.store.abort_batch(round, batch);
                        return mailbox_err(e);
                    }
                }
                if let Err(e) = self.store.commit_batch(round, batch) {
                    return mailbox_err(e);
                }
                // Durability point: the batch must survive a crash
                // before the sender is told it landed (it won't retry).
                if let Err(e) = self.store.flush() {
                    return mailbox_err(e);
                }
                self.seen_batches.insert((round, batch));
                self.batch_order.push_back((round, batch));
                if self.batch_order.len() > DELIVER_DEDUP_WINDOW {
                    let old = self.batch_order.pop_front().expect("len checked");
                    self.seen_batches.remove(&old);
                }
                mailbox_metrics().batches.incr();
                Frame::Ok
            }
            Frame::FetchPage {
                mailbox,
                cursor,
                max,
            } => match self.store.fetch_page(&mailbox, cursor, max as usize) {
                Ok(page) => Frame::MailboxPage {
                    sealed: page
                        .entries
                        .into_iter()
                        .map(|e| (e.round, e.sealed))
                        .collect(),
                    next_cursor: page.next_cursor,
                    remaining: page.remaining,
                },
                Err(e) => mailbox_err(e),
            },
            Frame::FetchAck { mailbox, upto } => match self.store.ack(&mailbox, upto) {
                Ok(_) => match self.store.flush() {
                    // Flush so acked retention survives a crash: a
                    // recovered shard must not resurrect retired
                    // entries for a client that already acked them.
                    Ok(()) => Frame::Ok,
                    Err(e) => mailbox_err(e),
                },
                Err(e) => mailbox_err(e),
            },
            other => err(
                error_code::UNSUPPORTED,
                format!("mailbox daemon cannot serve {other:?}"),
            ),
        }
    }
}

/// A running mailbox-shard daemon.
pub struct MailboxDaemon;

impl MailboxDaemon {
    /// Spawn the daemon owning `shard` of `n_shards`, listening on
    /// `addr`, with in-memory (non-persistent) storage.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        shard: usize,
        n_shards: usize,
    ) -> std::io::Result<DaemonHandle> {
        // The hub routes internally, so a single-shard hub is exactly
        // one shard's worth of storage; cross-shard routing is checked
        // at the daemon boundary above.
        Self::with_store(addr, shard, n_shards, Box::new(MailboxHub::new(1)))
    }

    /// Spawn the daemon with the log-structured persistent store in
    /// `dir` (created if absent, recovered if already populated).
    pub fn spawn_persistent<A: ToSocketAddrs>(
        addr: A,
        shard: usize,
        n_shards: usize,
        dir: impl Into<std::path::PathBuf>,
        cfg: LogStoreConfig,
    ) -> std::io::Result<DaemonHandle> {
        let store = LogMailboxStore::open(dir, shard, n_shards, cfg)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        Self::with_store(addr, shard, n_shards, Box::new(store))
    }

    /// Spawn the daemon over any [`MailboxStore`] backend.
    pub fn with_store<A: ToSocketAddrs>(
        addr: A,
        shard: usize,
        n_shards: usize,
        store: Box<dyn MailboxStore + Send>,
    ) -> std::io::Result<DaemonHandle> {
        assert!(shard < n_shards);
        let state = Arc::new(Mutex::new(MailboxState {
            shard,
            n_shards,
            store,
            seen_batches: HashSet::new(),
            batch_order: VecDeque::new(),
        }));
        spawn_daemon(
            addr,
            service_fn(move |frame| state.lock().expect("mailbox state poisoned").handle(frame)),
        )
    }
}
