//! Crash-chaos tier: `kill -9` a real daemon process mid-round and
//! demand the deployment heal itself — supervised respawn from the
//! on-disk config + journal, round recovery in the coordinator, exact
//! per-user delivery accounting, zero duplication, zero false
//! convictions, and a `supervisor.restarts == 1` wire-scraped ledger
//! of what happened.
//!
//! Three shapes:
//! * a seeded sweep killing one random daemon (mix hop *or* mailbox
//!   shard) per run at a random point in the middle round;
//! * a deterministic mailbox regression: SIGKILL between a `Deliver`'s
//!   ack and the client's receipt of it, then the client retries the
//!   identical batch against the respawned shard — which must refuse
//!   to double-store it (the durable dedup window);
//! * a restart-budget-exhausted negative: the same daemon killed twice
//!   on a budget of one must *degrade* the round, not hang it.

use std::io::BufRead;
use std::net::{IpAddr, SocketAddr};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use xrd_core::user::{Received, User};
use xrd_mixnet::{MailboxMessage, MAILBOX_MSG_LEN};
use xrd_net::codec::Frame;
use xrd_net::{launch_manifest, Conn, ConnTimeouts, Manifest, RetryPolicy};
use xrd_obs::Snapshot;

/// The supervisor counters are process-wide (the launcher runs in this
/// test process), so tests asserting on their deltas serialize here.
static SUPERVISOR_ACCOUNTING: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SUPERVISOR_ACCOUNTING
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Scrape a stats listener over the wire.
fn scrape(addr: SocketAddr) -> Snapshot {
    let mut conn = Conn::connect(addr).expect("stats listener reachable");
    match conn.request(&Frame::StatsRequest).expect("scrape answered") {
        Frame::StatsReport { snapshot } => *snapshot,
        other => panic!("expected StatsReport, got {other:?}"),
    }
}

fn delta(after: &Snapshot, before: &Snapshot, name: &str) -> u64 {
    after.counter(name) - before.counter(name)
}

/// One supervised deployment: 3 chains × 3 hops + 2 mailbox shards =
/// 11 real child processes, `restart 1`.
fn supervised_manifest(seed: u64) -> Manifest {
    let mut m = Manifest::single_host(
        "local",
        IpAddr::from([127, 0, 0, 1]),
        seed,
        3,   // servers (= chains)
        0.2, // fault fraction (sizing only)
        3,   // k
        2,   // mailbox shards
        0,   // OS-assigned ports
    );
    m.restart = 1;
    m
}

/// Drive one round with a paired-conversation population and assert
/// the full-strength contract: no degraded or aborted chains, nobody
/// convicted, exact ℓ-per-user accounting, every chat exactly once.
fn run_exact_round(
    deployment: &mut xrd_net::RemoteDeployment,
    rng: &mut StdRng,
    users: &mut [User],
    ell: usize,
) {
    let round = deployment.round();
    let n = users.len();
    for i in (0..n).step_by(2) {
        users[i].queue_chat(format!("r{round} {i}→{}", i + 1).into_bytes());
        users[i + 1].queue_chat(format!("r{round} {}→{i}", i + 1).into_bytes());
    }
    let (report, fetched) = deployment.run_round(rng, users).expect("round completes");
    assert!(
        report.failed_chains.is_empty(),
        "round {round} degraded: {report:?}"
    );
    assert!(
        report.aborted_chains.is_empty(),
        "round {round} aborted a chain: {report:?}"
    );
    assert!(
        report.convicted_by_chain.is_empty(),
        "round {round}: false conviction of an honest server: {report:?}"
    );
    assert_eq!(report.messages_mixed, n * ell, "round {round}");
    assert_eq!(report.delivered, n * ell, "round {round}");
    for (i, user) in users.iter().enumerate() {
        let got = fetched
            .get(&user.mailbox_id())
            .unwrap_or_else(|| panic!("user {i} missing from round {round} fetch"));
        assert_eq!(
            got.len(),
            ell,
            "user {i} round {round}: wrong entry count (loss or duplication)"
        );
        let partner = if i % 2 == 0 { i + 1 } else { i - 1 };
        let expect = format!("r{round} {partner}→{i}").into_bytes();
        let matches = got
            .iter()
            .filter(|r| matches!(r, Received::Chat { data, .. } if *data == expect))
            .count();
        assert_eq!(
            matches, 1,
            "user {i} round {round}: chat delivered {matches}×"
        );
    }
}

/// The sweep body: launch supervised, run a clean round, kill one
/// seeded-random daemon at a seeded-random moment of the middle round,
/// and demand the round (and the next) still account exactly.
/// Returns the kill-to-liveness recovery latency.
fn run_crash_seed(seed: u64) -> Duration {
    const N_USERS: usize = 24;
    let mut rng = StdRng::seed_from_u64(seed);
    let manifest = supervised_manifest(seed);
    let netd = Path::new(env!("CARGO_BIN_EXE_xrd-netd"));
    let mut cluster = launch_manifest(&mut rng, &manifest, netd).expect("cluster launches");
    assert_eq!(cluster.n_processes(), 11, "3 chains × 3 hops + 2 shards");
    let stats_addr = cluster
        .stats_addr()
        .expect("supervised cluster serves launcher stats");
    let before = scrape(stats_addr);

    let mut deployment = cluster.connect().expect("coordinator connects");
    let ell = deployment.topology().ell();
    let mut users: Vec<User> = (0..N_USERS).map(|_| User::new(&mut rng)).collect();
    for i in (0..N_USERS).step_by(2) {
        let (a, b) = (users[i].pk(), users[i + 1].pk());
        users[i].start_conversation(b);
        users[i + 1].start_conversation(a);
    }

    run_exact_round(&mut deployment, &mut rng, &mut users, ell);

    // Middle round: one random victim — any mix hop or mailbox shard —
    // killed at a random moment.  Whatever phase the kill lands in
    // (submission, mixing, delivery, fetch — or even between rounds)
    // is accepted: the contract is the same.
    let victim = (rng.next_u64() % 11) as usize;
    let delay = Duration::from_millis(20 + rng.next_u64() % 400);
    let label = cluster.process_labels()[victim].clone();
    let recovery = std::thread::scope(|scope| {
        let cluster = &cluster;
        let killer = scope.spawn(move || {
            std::thread::sleep(delay);
            cluster.kill_process(victim);
            cluster
                .await_live(victim, Duration::from_secs(30))
                .unwrap_or_else(|| panic!("{label} never came back after kill -9"))
        });
        run_exact_round(&mut deployment, &mut rng, &mut users, ell);
        killer.join().expect("killer thread")
    });

    // And the round after: the respawned daemon's journaled keys and
    // dedup window must line up with its peers.
    run_exact_round(&mut deployment, &mut rng, &mut users, ell);

    let after = scrape(stats_addr);
    assert_eq!(
        delta(&after, &before, "supervisor.crashes"),
        1,
        "exactly the injected crash"
    );
    assert_eq!(
        delta(&after, &before, "supervisor.restarts"),
        1,
        "exactly one respawn"
    );

    drop(deployment);
    assert_eq!(cluster.shutdown(), 0, "daemon(s) had to be killed");
    recovery
}

/// Tier-entry smoke: one seed of the sweep.
#[test]
fn kill9_of_one_daemon_mid_round_recovers_exactly() {
    let _guard = lock();
    let recovery = run_crash_seed(42);
    println!("seed 42: kill-to-liveness recovery {recovery:?}");
}

/// The 20-seed sweep (the acceptance run): each seed kills a different
/// (daemon, moment) pair.  Prints the recovery-latency distribution
/// recorded in `BENCH_net.json`.
#[test]
#[ignore = "minutes-long: 20 supervised deployments; run with --ignored in the crash-chaos tier"]
fn kill9_sweep_twenty_seeds() {
    let _guard = lock();
    let mut recoveries_ms: Vec<f64> = Vec::new();
    for seed in 0..20u64 {
        let recovery = run_crash_seed(seed);
        println!("seed {seed}: recovery {recovery:?}");
        recoveries_ms.push(recovery.as_secs_f64() * 1000.0);
    }
    recoveries_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = recoveries_ms.iter().sum::<f64>() / recoveries_ms.len() as f64;
    println!(
        "recovery ms over 20 seeds: min {:.0} p50 {:.0} mean {mean:.0} max {:.0}",
        recoveries_ms[0],
        recoveries_ms[recoveries_ms.len() / 2],
        recoveries_ms[recoveries_ms.len() - 1],
    );
    // Bounded recovery: the supervisor's first backoff step is 50 ms
    // and a daemon restart is sub-second; 10 s of slack absorbs a
    // loaded CI host.
    assert!(
        recoveries_ms[recoveries_ms.len() - 1] < 10_000.0,
        "recovery took {:.0} ms",
        recoveries_ms[recoveries_ms.len() - 1]
    );
}

/// Spawn one `xrd-netd mailbox` child on a persistent store and wait
/// for its address announcement.
fn spawn_mailbox_child(dir: &Path) -> (Child, SocketAddr) {
    let netd = Path::new(env!("CARGO_BIN_EXE_xrd-netd"));
    let mut child = Command::new(netd)
        .args([
            "mailbox",
            "--shard",
            "0",
            "--shards",
            "1",
            "--listen",
            "127.0.0.1:0",
            "--dir",
        ])
        .arg(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .stdin(Stdio::null())
        .spawn()
        .expect("netd spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("announcement before EOF")
            .expect("announcement readable");
        if let Some(rest) = line.strip_prefix("LISTENING ") {
            break rest.trim().parse().expect("announced address parses");
        }
    };
    std::thread::spawn(move || for _line in lines {});
    (child, addr)
}

/// The regression the delivery-transaction journal exists for: the
/// shard is SIGKILLed right after acking a `Deliver` — from the
/// client's side the ack was lost, so it retries the identical batch
/// against the respawned shard.  The durable dedup window (committed
/// batch ids replayed from the log) must refuse the double-store; the
/// crash on the *other* side of the ack — mid-batch, before COMMIT —
/// is covered by `uncommitted_batch_rolls_back_on_reopen` in
/// `xrd-core`'s log store tests.
#[test]
fn mailbox_deliver_retry_across_kill9_stores_exactly_once() {
    let dir = std::env::temp_dir().join(format!("xrd-crash-mbx-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("store dir");

    let messages: Vec<MailboxMessage> = (0..4)
        .map(|i| MailboxMessage {
            mailbox: [1; 32],
            sealed: vec![i as u8; MAILBOX_MSG_LEN - 32],
        })
        .collect();

    let (mut child, addr) = spawn_mailbox_child(&dir);
    let mut conn = Conn::connect(addr).expect("connects");
    conn.request_ok(&Frame::Deliver {
        round: 5,
        batch: 9,
        messages: messages.clone(),
    })
    .expect("first delivery acked");

    // kill -9 the shard.  The batch committed; the client never hears.
    child.kill().expect("kill");
    child.wait().expect("reaped");

    let (mut child, addr) = spawn_mailbox_child(&dir);
    let mut conn = Conn::connect(addr).expect("reconnects");
    conn.request_ok(&Frame::Deliver {
        round: 5,
        batch: 9,
        messages: messages.clone(),
    })
    .expect("retried delivery acked (idempotent)");

    // A genuinely new batch still stores.
    conn.request_ok(&Frame::Deliver {
        round: 5,
        batch: 10,
        messages: vec![MailboxMessage {
            mailbox: [1; 32],
            sealed: vec![0xEE; MAILBOX_MSG_LEN - 32],
        }],
    })
    .expect("new batch acked");

    match conn
        .request(&Frame::FetchPage {
            mailbox: [1; 32],
            cursor: 0,
            max: 16,
        })
        .expect("fetch answered")
    {
        Frame::MailboxPage { sealed, .. } => {
            assert_eq!(sealed.len(), 5, "4 originals + 1 new, zero duplicates");
            for (i, m) in messages.iter().enumerate() {
                let copies = sealed.iter().filter(|(_, s)| *s == m.sealed).count();
                assert_eq!(copies, 1, "message {i} stored {copies}×");
            }
        }
        other => panic!("expected MailboxPage, got {other:?}"),
    }

    let _ = conn.send(&Frame::Shutdown);
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The negative: a budget of one absorbs one crash, not two.  The
/// second kill of the same hop leaves it permanently down and the
/// next round must *degrade* (that chain failed, the others deliver)
/// rather than hang or convict anyone.
#[test]
fn restart_budget_exhausted_degrades_round_without_hanging() {
    let _guard = lock();
    const N_USERS: usize = 24;
    let seed = 7;
    let mut rng = StdRng::seed_from_u64(seed);
    let manifest = supervised_manifest(seed);
    let netd = Path::new(env!("CARGO_BIN_EXE_xrd-netd"));
    let mut cluster = launch_manifest(&mut rng, &manifest, netd).expect("cluster launches");
    let stats_addr = cluster.stats_addr().expect("stats listener");
    let before = scrape(stats_addr);

    // A small retry policy: the dead chain should be written off in
    // well under a second per exchange, not after crash-recovery's
    // full reincarnation window.
    let mut deployment = cluster
        .connect_timeouts(
            ConnTimeouts::default(),
            RetryPolicy {
                attempts: 3,
                base_backoff: Duration::from_millis(25),
            },
        )
        .expect("coordinator connects");
    let ell = deployment.topology().ell();
    let mut users: Vec<User> = (0..N_USERS).map(|_| User::new(&mut rng)).collect();
    for i in (0..N_USERS).step_by(2) {
        let (a, b) = (users[i].pk(), users[i + 1].pk());
        users[i].start_conversation(b);
        users[i + 1].start_conversation(a);
    }
    run_exact_round(&mut deployment, &mut rng, &mut users, ell);

    // Process 2 is chain 0's hop 0 (hops spawn in reverse order).
    let victim = 2;
    cluster.kill_process(victim);
    cluster
        .await_live(victim, Duration::from_secs(30))
        .expect("first crash is within budget");
    cluster.kill_process(victim);
    // Give the supervisor a beat to reap the exit and rule the budget
    // exhausted (it must NOT respawn a second time).
    std::thread::sleep(Duration::from_millis(500));

    for user in users.iter_mut() {
        user.queue_chat(b"degraded round".to_vec());
    }
    let started = Instant::now();
    let (report, _fetched) = deployment
        .run_round(&mut rng, &mut users)
        .expect("round completes degraded, not hung");
    assert!(
        report.failed_chains.contains(&0),
        "chain 0 must be written off: {report:?}"
    );
    assert!(
        report.convicted_by_chain.is_empty(),
        "fail-stop crash must not convict anyone: {report:?}"
    );
    assert!(
        report.delivered < N_USERS * ell,
        "a dead chain cannot deliver everything: {report:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "degraded round took {:?}",
        started.elapsed()
    );

    let after = scrape(stats_addr);
    assert_eq!(delta(&after, &before, "supervisor.crashes"), 2);
    assert_eq!(
        delta(&after, &before, "supervisor.restarts"),
        1,
        "the budget allows exactly one respawn"
    );

    drop(deployment);
    cluster.shutdown();
}
