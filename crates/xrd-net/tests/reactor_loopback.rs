//! Adversarial-peer and lifecycle tests for the reactor daemons: byte
//! dribblers, desynchronized streams, pipelined clients and graceful
//! shutdown with connections still open — all over real loopback TCP.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_net::codec::{error_code, read_frame, Frame};
use xrd_net::{submit_storm, Conn, MailboxDaemon, NetError, StormConfig};

fn mailbox_message(byte: u8) -> xrd_mixnet::MailboxMessage {
    xrd_mixnet::MailboxMessage {
        mailbox: [byte; 32],
        sealed: vec![byte; xrd_mixnet::MAILBOX_MSG_LEN - 32],
    }
}

/// A peer that dribbles its frame one byte at a time must not stall
/// anyone else: between every byte of A's crawl, B completes a full
/// request/response round trip on the same daemon.  (The deterministic
/// interleaving is the point — under the old thread-per-connection
/// daemon this passed trivially, under a *blocking* single-thread loop
/// it would deadlock.)
#[test]
fn byte_dribbling_peer_does_not_stall_other_connections() {
    let daemon = MailboxDaemon::spawn("127.0.0.1:0", 0, 1).expect("daemon spawns");
    let addr = daemon.addr();

    let mut dribbler = TcpStream::connect(addr).expect("dribbler connects");
    let mut fast = Conn::connect(addr).expect("fast client connects");

    let wire = Frame::FetchPage {
        mailbox: [5; 32],
        cursor: 0,
        max: 8,
    }
    .encode();
    let (head, last) = wire.split_at(wire.len() - 1);
    for &byte in head {
        dribbler.write_all(&[byte]).expect("dribble one byte");
        // While A is mid-frame, B's requests fly.
        fast.ping().expect("fast ping served");
    }

    // A's frame completes only now — and gets its answer (the mailbox
    // was never delivered to, which the shard reports as such).
    dribbler.write_all(last).expect("final byte");
    match read_frame(&mut dribbler).expect("response readable") {
        Some(Ok(Frame::Error { code, .. })) => assert_eq!(code, error_code::UNKNOWN_MAILBOX),
        other => panic!("expected UNKNOWN_MAILBOX error, got {other:?}"),
    }
}

/// A well-framed but unparseable body is answered with [`Frame::Error`]
/// and the connection is closed (the stream may be desynchronized).
#[test]
fn malformed_frame_answered_with_error_then_close() {
    let daemon = MailboxDaemon::spawn("127.0.0.1:0", 0, 1).expect("daemon spawns");
    let mut stream = TcpStream::connect(daemon.addr()).expect("connects");

    let mut wire = 3u32.to_le_bytes().to_vec();
    wire.extend_from_slice(&[0xEE, 1, 2]); // unknown tag, 2 payload bytes
    stream.write_all(&wire).expect("garbage sent");

    match read_frame(&mut stream).expect("error frame readable") {
        Some(Ok(Frame::Error { code, .. })) => assert_eq!(code, error_code::BAD_STATE),
        other => panic!("expected Error, got {other:?}"),
    }
    assert!(
        read_frame(&mut stream).expect("EOF readable").is_none(),
        "daemon must close after a malformed frame"
    );
}

/// A length prefix over the frame cap means the stream can never be
/// re-synchronized: the daemon reports and closes without reading the
/// declared mountain of bytes.
#[test]
fn oversized_length_prefix_answered_with_error_then_close() {
    let daemon = MailboxDaemon::spawn("127.0.0.1:0", 0, 1).expect("daemon spawns");
    let mut stream = TcpStream::connect(daemon.addr()).expect("connects");

    stream
        .write_all(&u32::MAX.to_le_bytes())
        .expect("bogus prefix sent");
    match read_frame(&mut stream).expect("error frame readable") {
        Some(Ok(Frame::Error { code, .. })) => assert_eq!(code, error_code::BAD_STATE),
        other => panic!("expected Error, got {other:?}"),
    }
    assert!(read_frame(&mut stream).expect("EOF readable").is_none());
}

/// Requests pipelined on one connection are answered in order: the
/// reactor processes a connection's next request only after the
/// previous response has fully drained, so the stream stays a strict
/// request/response sequence even when the client fires ahead.
#[test]
fn pipelined_requests_on_one_connection_answered_in_order() {
    let daemon = MailboxDaemon::spawn("127.0.0.1:0", 0, 1).expect("daemon spawns");
    let mut conn = Conn::connect(daemon.addr()).expect("connects");

    let msg = mailbox_message(9);
    conn.send(&Frame::Deliver {
        round: 4,
        batch: 0,
        messages: vec![msg.clone()],
    })
    .expect("deliver fired");
    conn.send(&Frame::FetchPage {
        mailbox: msg.mailbox,
        cursor: 0,
        max: 8,
    })
    .expect("fetch fired");
    conn.send(&Frame::Ping).expect("ping fired");

    assert!(matches!(conn.recv().expect("ack 1"), Frame::Ok));
    match conn.recv().expect("ack 2") {
        Frame::MailboxPage { sealed, .. } => assert_eq!(sealed, vec![(4, msg.sealed)]),
        other => panic!("expected MailboxPage, got {other:?}"),
    }
    assert!(matches!(conn.recv().expect("ack 3"), Frame::Pong));
}

/// Regression: a connection/worker split where `chunks()` yields fewer
/// pieces than requested workers (5 across 4 → 3 chunks of 2) must
/// complete — the storm's barriers are sized by the threads actually
/// spawned, not the requested worker count.
#[test]
fn submit_storm_with_uneven_worker_split_completes() {
    let mut rng = StdRng::seed_from_u64(33);
    let report = submit_storm(
        &mut rng,
        &StormConfig {
            n_conns: 5,
            workers: 4,
            chain_len: 2,
        },
    )
    .expect("uneven split storm completes");
    assert_eq!(report.accepted, 5);
}

/// A peer that keeps hundreds of pipelined frames in flight (and
/// drains its responses, so backpressure never pauses it) must not
/// monopolize the single reactor thread: the per-visit frame budget
/// forces the reactor to yield back to the event loop, and another
/// connection's requests complete while the flood is in full swing.
#[test]
fn pipelined_flooder_does_not_monopolize_reactor() {
    let daemon = MailboxDaemon::spawn("127.0.0.1:0", 0, 1).expect("daemon spawns");
    let addr = daemon.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let stop_flood = Arc::clone(&stop);
    let flooder = std::thread::spawn(move || {
        let mut conn = Conn::connect(addr).expect("flooder connects");
        let mut in_flight = 0usize;
        while !stop_flood.load(Ordering::Relaxed) {
            // Keep a deep pipeline: hundreds of buffered frames force
            // the reactor through its per-visit budget repeatedly.
            while in_flight < 256 {
                conn.send(&Frame::Ping).expect("flood ping");
                in_flight += 1;
            }
            while in_flight > 128 {
                assert!(matches!(conn.recv().expect("flood ack"), Frame::Pong));
                in_flight -= 1;
            }
        }
        while in_flight > 0 {
            let _ = conn.recv();
            in_flight -= 1;
        }
    });

    // Mid-flood, a second connection's requests all complete.
    let mut fast = Conn::connect(addr).expect("fast client connects");
    for _ in 0..50 {
        fast.ping().expect("fast ping served mid-flood");
    }
    stop.store(true, Ordering::Relaxed);
    flooder.join().expect("flooder exits cleanly");
}

/// [`Frame::Shutdown`] with other connections still open: the sender
/// gets its acknowledgement, the daemon's reactor exits of its own
/// accord, and every other connection sees EOF — no hang, no leak.
#[test]
fn shutdown_acknowledged_and_open_connections_see_eof() {
    let mut daemon = MailboxDaemon::spawn("127.0.0.1:0", 0, 1).expect("daemon spawns");
    let addr = daemon.addr();

    let mut idle: Vec<Conn> = (0..10)
        .map(|_| Conn::connect(addr).expect("idle conn"))
        .collect();
    // Prove they are live connections, not half-open sockets.
    for conn in &mut idle {
        conn.ping().expect("idle conn serves");
    }

    let mut closer = Conn::connect(addr).expect("closer connects");
    closer
        .request_ok(&Frame::Shutdown)
        .expect("shutdown acknowledged");
    daemon.wait(); // the reactor exits on its own — no external stop

    for (i, conn) in idle.iter_mut().enumerate() {
        match conn.recv() {
            Err(NetError::Disconnected) | Err(NetError::Io(_)) => {}
            other => panic!("idle conn {i} must see EOF after shutdown, got {other:?}"),
        }
    }
}
