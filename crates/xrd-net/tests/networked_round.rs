//! Loopback integration tests: a complete XRD deployment as real TCP
//! services — every mix hop and every mailbox shard its own daemon on
//! its own port — driven through full rounds over the wire.

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_core::user::{Received, User};
use xrd_core::DeploymentConfig;
use xrd_net::launch_local;
use xrd_topology::ChainId;

/// The acceptance-scale round: 64 users across 6 chains of 3 mix
/// servers each (18 mix daemons) plus 2 mailbox shards, entirely over
/// TCP.  Every recipient receives exactly the plaintext sent to them;
/// a cover-traffic-only user receives no chat at all.
#[test]
fn full_round_64_users_over_tcp() {
    let mut rng = StdRng::seed_from_u64(1);
    let config = DeploymentConfig::small(6, 3); // 6 chains × k=3, 2 shards
    let (mut cluster, mut deployment) = launch_local(&mut rng, &config).expect("cluster launches");
    assert_eq!(deployment.topology().n_chains(), 6);
    assert_eq!(deployment.topology().chain_len(), 3);
    assert_eq!(cluster.n_daemons(), 6 * 3 + 2, "one port per daemon");

    let n_users = 64;
    let mut users: Vec<User> = (0..n_users).map(|_| User::new(&mut rng)).collect();
    let ell = deployment.topology().ell();

    // Users 0..40 converse in pairs with distinct payloads; users
    // 40..64 are cover-traffic-only (they send ℓ loopbacks and must
    // receive no chat).
    let paired = 40;
    for i in (0..paired).step_by(2) {
        let (a, b) = (users[i].pk(), users[i + 1].pk());
        users[i].start_conversation(b);
        users[i + 1].start_conversation(a);
        users[i].queue_chat(format!("hello {} from {}", i + 1, i).into_bytes());
        users[i + 1].queue_chat(format!("hello {} from {}", i, i + 1).into_bytes());
    }

    let (report, fetched) = deployment
        .run_round(&mut rng, &mut users)
        .expect("round failed");

    // Uniformity: everyone's traffic is ℓ in, ℓ out.
    assert_eq!(report.messages_mixed, n_users * ell);
    assert_eq!(report.delivered, n_users * ell);
    assert!(report.aborted_chains.is_empty());
    assert!(report.malicious_by_chain.is_empty());

    for (i, user) in users.iter().enumerate() {
        let got = &fetched[&user.mailbox_id()];
        assert_eq!(got.len(), ell, "user {i} receives exactly ℓ messages");
        if i < paired {
            // Exactly the partner's plaintext, plus ℓ-1 loopbacks.
            let partner = if i % 2 == 0 { i + 1 } else { i - 1 };
            let expect = Received::Chat {
                from: users[partner].mailbox_id(),
                data: format!("hello {i} from {partner}").into_bytes(),
            };
            assert!(got.contains(&expect), "user {i} missing partner chat");
            assert_eq!(
                got.iter().filter(|r| **r == Received::Loopback).count(),
                ell - 1,
                "user {i} loopback count"
            );
        } else {
            // Cover-traffic user: nothing but her own loopbacks — no
            // chat, no opaque residue.
            assert!(
                got.iter().all(|r| *r == Received::Loopback),
                "cover-traffic user {i} must receive nothing but loopbacks, got {got:?}"
            );
        }
    }

    cluster.shutdown();
}

/// Multiple consecutive rounds over the wire: inner keys rotate each
/// round, queued chats flow in order, counts stay uniform.
#[test]
fn multi_round_conversation_over_tcp() {
    let mut rng = StdRng::seed_from_u64(2);
    let config = DeploymentConfig::small(4, 3);
    let (mut cluster, mut deployment) = launch_local(&mut rng, &config).expect("cluster launches");
    let ell = deployment.topology().ell();

    let mut users: Vec<User> = (0..8).map(|_| User::new(&mut rng)).collect();
    let (a, b) = (users[0].pk(), users[1].pk());
    users[0].start_conversation(b);
    users[1].start_conversation(a);
    users[0].queue_chat(b"one".to_vec());
    users[0].queue_chat(b"two".to_vec());
    users[0].queue_chat(b"three".to_vec());

    for (round, expect) in [b"one".as_slice(), b"two", b"three"].iter().enumerate() {
        let (report, fetched) = deployment
            .run_round(&mut rng, &mut users)
            .expect("round failed");
        assert_eq!(report.round, round as u64);
        for user in &users {
            assert_eq!(fetched[&user.mailbox_id()].len(), ell, "round {round}");
        }
        assert!(
            fetched[&users[1].mailbox_id()].contains(&Received::Chat {
                from: users[0].mailbox_id(),
                data: expect.to_vec(),
            }),
            "round {round}: chat {:?} not delivered",
            String::from_utf8_lossy(expect)
        );
    }

    cluster.shutdown();
}

/// §5.3.3 churn over the wire: a user who goes offline is represented
/// by her stored cover submissions (sealed against pre-published
/// next-round keys), and her partner is notified.
#[test]
fn offline_cover_replay_over_tcp() {
    let mut rng = StdRng::seed_from_u64(3);
    let config = DeploymentConfig::small(4, 3);
    let (mut cluster, mut deployment) = launch_local(&mut rng, &config).expect("cluster launches");
    let ell = deployment.topology().ell();

    let mut users: Vec<User> = (0..6).map(|_| User::new(&mut rng)).collect();
    let (a, b) = (users[0].pk(), users[1].pk());
    users[0].start_conversation(b);
    users[1].start_conversation(a);

    let (_, _) = deployment
        .run_round(&mut rng, &mut users)
        .expect("round failed");
    users[0].online = false;

    let (report, fetched) = deployment
        .run_round(&mut rng, &mut users)
        .expect("round failed");
    assert_eq!(report.messages_mixed, 6 * ell, "covers replayed for user 0");
    let bob_got = &fetched[&users[1].mailbox_id()];
    assert_eq!(bob_got.len(), ell);
    assert!(bob_got.contains(&Received::PartnerOffline {
        partner: users[0].mailbox_id()
    }));
    assert!(users[1].partner().is_none(), "partner conversation ended");

    cluster.shutdown();
}

/// The blame protocol over the wire: a protocol-violating submission
/// (valid PoK, garbage onion) is traced via Accuse/RevealSlot frames
/// and removed; every honest message still lands.
#[test]
fn wire_blame_removes_malicious_submission() {
    let mut rng = StdRng::seed_from_u64(4);
    let config = DeploymentConfig::small(4, 3);
    let (mut cluster, mut deployment) = launch_local(&mut rng, &config).expect("cluster launches");
    let ell = deployment.topology().ell();

    let mut users: Vec<User> = (0..5).map(|_| User::new(&mut rng)).collect();
    // Garbage fails at the last hop — the worst case for blame (traces
    // through every shuffle).
    let bad = xrd_mixnet::testutil::malicious_submission(
        &mut rng,
        &deployment.chain_keys()[0],
        0,
        deployment.topology().chain_len() - 1,
    );
    deployment.inject_submission(ChainId(0), bad);

    let (report, fetched) = deployment
        .run_round(&mut rng, &mut users)
        .expect("round failed");
    assert!(report.aborted_chains.is_empty(), "no server is at fault");
    assert_eq!(
        report.malicious_by_chain.get(&0),
        Some(&1),
        "the injected submission is convicted"
    );
    assert_eq!(report.messages_mixed, 5 * ell + 1);
    assert_eq!(report.delivered, 5 * ell, "honest messages all survive");
    for user in &users {
        assert_eq!(fetched[&user.mailbox_id()].len(), ell);
    }

    // The next round is unaffected.
    let (report2, _) = deployment
        .run_round(&mut rng, &mut users)
        .expect("round failed");
    assert!(report2.malicious_by_chain.is_empty());

    cluster.shutdown();
}

/// A submission with an invalid proof of knowledge is rejected at the
/// daemon's door (never enters the batch).
#[test]
fn bad_pok_rejected_at_submission() {
    use xrd_net::codec::Frame;
    use xrd_net::Conn;

    let mut rng = StdRng::seed_from_u64(5);
    let config = DeploymentConfig::small(3, 3);
    let (mut cluster, deployment) = launch_local(&mut rng, &config).expect("cluster launches");

    // Seal for the wrong round: the PoK is round-bound, so it fails.
    let msg = xrd_mixnet::MailboxMessage {
        mailbox: [7u8; 32],
        sealed: vec![1u8; xrd_mixnet::PAYLOAD_LEN + xrd_crypto::TAG_LEN],
    };
    let wrong_round = xrd_mixnet::seal_ahs(&mut rng, &deployment.chain_keys()[0], 99, &msg);

    let addr = deployment.chain_addrs()[0][0];
    let mut conn = Conn::connect(addr).expect("connect");
    conn.request_ok(&Frame::OpenRound { round: 0 }).unwrap();
    let response = conn.request(&Frame::Submit {
        round: 0,
        submission: wrong_round,
    });
    assert!(
        matches!(response, Err(xrd_net::NetError::Remote { code, .. })
            if code == xrd_net::codec::error_code::REJECTED_SUBMISSION),
        "daemon must reject a bad PoK, got {response:?}"
    );

    cluster.shutdown();
}

/// The standalone `xrd-netd` binary really serves the protocol as its
/// own OS process: spawn a mailbox daemon, deliver and fetch over TCP,
/// then shut it down over the wire.
#[test]
fn netd_process_serves_mailbox() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};
    use xrd_net::codec::Frame;
    use xrd_net::Conn;

    let mut child = Command::new(env!("CARGO_BIN_EXE_xrd-netd"))
        .args(["mailbox", "--shard", "0", "--shards", "1"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn xrd-netd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr: std::net::SocketAddr = loop {
        let line = lines.next().expect("daemon announces").expect("readable");
        if let Some(rest) = line.strip_prefix("LISTENING ") {
            break rest.parse().expect("valid addr");
        }
    };

    let mut conn = Conn::connect(addr).expect("connect to daemon process");
    let sealed = vec![9u8; xrd_mixnet::MAILBOX_MSG_LEN - 32];
    conn.request_ok(&Frame::Deliver {
        round: 7,
        batch: 0,
        messages: vec![xrd_mixnet::MailboxMessage {
            mailbox: [3u8; 32],
            sealed: sealed.clone(),
        }],
    })
    .expect("deliver");
    let page = Frame::FetchPage {
        mailbox: [3u8; 32],
        cursor: 0,
        max: 16,
    };
    match conn.request(&page).unwrap() {
        Frame::MailboxPage {
            sealed: got,
            next_cursor,
            remaining,
        } => {
            assert_eq!(got, vec![(7, sealed)]);
            assert_eq!(next_cursor, 1);
            assert_eq!(remaining, 0);
        }
        other => panic!("expected page, got {other:?}"),
    }
    // Un-acked entries stay: a second walk re-reads the same page.
    match conn.request(&page).unwrap() {
        Frame::MailboxPage { sealed: got, .. } => assert_eq!(got.len(), 1),
        other => panic!("expected page, got {other:?}"),
    }
    conn.request_ok(&Frame::FetchAck {
        mailbox: [3u8; 32],
        upto: 1,
    })
    .expect("ack");
    match conn.request(&page).unwrap() {
        Frame::MailboxPage { sealed: got, .. } => assert!(got.is_empty(), "acked mail retired"),
        other => panic!("expected page, got {other:?}"),
    }
    conn.request_ok(&Frame::Shutdown).expect("shutdown");
    let status = child.wait().expect("daemon exits");
    assert!(status.success());
}
