//! Wire-codec property tests: every frame type round-trips exactly,
//! and malformed / truncated / oversized frames are rejected without
//! panicking.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use xrd_crypto::nizk::{DleqProof, SchnorrProof};
use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;
use xrd_mixnet::blame::{Accusation, BlameReveal};
use xrd_mixnet::chain_keys::{RotationShare, ServerKeyProofs, ServerSecrets};
use xrd_mixnet::client::Submission;
use xrd_mixnet::message::{MailboxMessage, MixEntry, MAILBOX_MSG_LEN};
use xrd_net::codec::{
    decode_server_config, encode_server_config, error_code, BatchAssembler, ChunkedBatch,
    CodecError, Frame, FrameDecoder, StreamError, MAX_FRAME_LEN,
};

// ---- structural generators (random but well-formed values) ----

fn g(rng: &mut StdRng) -> GroupElement {
    GroupElement::random(rng)
}

fn scalar(rng: &mut StdRng) -> Scalar {
    Scalar::random(rng)
}

fn schnorr(rng: &mut StdRng) -> SchnorrProof {
    SchnorrProof {
        commitment: g(rng).encode(),
        response: scalar(rng),
    }
}

fn dleq(rng: &mut StdRng) -> DleqProof {
    DleqProof {
        commitment1: g(rng).encode(),
        commitment2: g(rng).encode(),
        response: scalar(rng),
    }
}

fn bytes(rng: &mut StdRng, max: usize) -> Vec<u8> {
    let len = rng.gen_range(0..=max);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn mix_entry(rng: &mut StdRng) -> MixEntry {
    MixEntry {
        dh: g(rng),
        ct: bytes(rng, 600),
    }
}

fn mix_entries(rng: &mut StdRng) -> Vec<MixEntry> {
    let n = rng.gen_range(0..6);
    (0..n).map(|_| mix_entry(rng)).collect()
}

fn submission(rng: &mut StdRng) -> Submission {
    Submission {
        dh: g(rng),
        ct: bytes(rng, 600),
        pok: schnorr(rng),
    }
}

fn mailbox_message(rng: &mut StdRng) -> MailboxMessage {
    let mut sealed = vec![0u8; MAILBOX_MSG_LEN - 32];
    rng.fill_bytes(&mut sealed);
    let mut mailbox = [0u8; 32];
    rng.fill_bytes(&mut mailbox);
    MailboxMessage { mailbox, sealed }
}

fn chain_keys(rng: &mut StdRng) -> xrd_mixnet::ChainPublicKeys {
    let k = rng.gen_range(1..5);
    xrd_mixnet::ChainPublicKeys {
        epoch: rng.next_u64(),
        inner_epoch: rng.next_u64(),
        bpks: (0..k + 1).map(|_| g(rng)).collect(),
        mpks: (0..k).map(|_| g(rng)).collect(),
        ipks: (0..k).map(|_| g(rng)).collect(),
        proofs: (0..k)
            .map(|_| ServerKeyProofs {
                bsk_pok: schnorr(rng),
                msk_pok: schnorr(rng),
                isk_pok: schnorr(rng),
            })
            .collect(),
    }
}

fn accusation(rng: &mut StdRng) -> Accusation {
    Accusation {
        position: rng.gen_range(0..64usize),
        input_index: rng.gen_range(0..1000usize),
        entry: mix_entry(rng),
        dec_key: g(rng),
        key_proof: dleq(rng),
    }
}

fn blame_reveal(rng: &mut StdRng) -> BlameReveal {
    BlameReveal {
        position: rng.gen_range(0..64usize),
        input_index: rng.gen_range(0..1000usize),
        input: mix_entry(rng),
        output_dh: g(rng),
        blind_proof: dleq(rng),
        dec_key: g(rng),
        key_proof: dleq(rng),
    }
}

fn hist_snapshot(rng: &mut StdRng) -> xrd_obs::HistSnapshot {
    let mut buckets = vec![0u64; xrd_obs::N_BUCKETS];
    for _ in 0..rng.gen_range(0..24) {
        buckets[rng.gen_range(0..xrd_obs::N_BUCKETS)] = rng.next_u64().max(1);
    }
    xrd_obs::HistSnapshot {
        count: rng.next_u64(),
        sum: rng.next_u64(),
        min: rng.next_u64(),
        max: rng.next_u64(),
        buckets,
    }
}

fn obs_snapshot(rng: &mut StdRng) -> xrd_obs::Snapshot {
    let name = |rng: &mut StdRng| format!("metric.{}", rng.gen_range(0..1000u32));
    xrd_obs::Snapshot {
        uptime_us: rng.next_u64(),
        counters: (0..rng.gen_range(0..6))
            .map(|_| (name(rng), rng.next_u64()))
            .collect(),
        gauges: (0..rng.gen_range(0..4))
            .map(|_| (name(rng), rng.next_u64() as i64))
            .collect(),
        hists: (0..rng.gen_range(0..4))
            .map(|_| (name(rng), hist_snapshot(rng)))
            .collect(),
        spans: (0..rng.gen_range(0..6))
            .map(|_| xrd_obs::SpanEvent {
                name: name(rng),
                round: rng.next_u64(),
                start_us: rng.next_u64(),
                dur_us: rng.next_u64(),
            })
            .collect(),
    }
}

/// Number of distinct frame constructors below (keep in sync; the one
/// index with no explicit arm falls through to the mailbox frames).
const N_VARIANTS: usize = 40;

/// A random well-formed frame of the chosen variant.
fn arb_frame(rng: &mut StdRng, variant: usize) -> Frame {
    match variant % N_VARIANTS {
        0 => Frame::Ok,
        1 => Frame::Error {
            code: error_code::REJECTED_SUBMISSION,
            message: String::from_utf8_lossy(&bytes(rng, 40)).into_owned(),
        },
        2 => Frame::Ping,
        3 => Frame::Shutdown,
        4 => Frame::OpenRound {
            round: rng.next_u64(),
        },
        5 => Frame::Submit {
            round: rng.next_u64(),
            submission: submission(rng),
        },
        6 => Frame::CloseSubmissions {
            round: rng.next_u64(),
        },
        7 => {
            let mut digest = [0u8; 32];
            rng.fill_bytes(&mut digest);
            Frame::BatchDigest {
                round: rng.next_u64(),
                digest,
                count: rng.next_u64(),
            }
        }
        8 => Frame::GetBatch {
            round: rng.next_u64(),
        },
        9 => Frame::SubmissionBatch {
            round: rng.next_u64(),
            submissions: (0..rng.gen_range(0..5)).map(|_| submission(rng)).collect(),
        },
        10 => Frame::MixBatch {
            round: rng.next_u64(),
            entries: mix_entries(rng),
        },
        11 => Frame::HopOutput {
            round: rng.next_u64(),
            position: rng.gen_range(0..64u32),
            outputs: mix_entries(rng),
            proof: dleq(rng),
        },
        12 => Frame::HopFailure {
            round: rng.next_u64(),
            position: rng.gen_range(0..64u32),
            failed: (0..rng.gen_range(0..8)).map(|_| rng.next_u64()).collect(),
        },
        13 => Frame::VerifyHop {
            round: rng.next_u64(),
            position: rng.gen_range(0..64u32),
            inputs: mix_entries(rng),
            outputs: mix_entries(rng),
            proof: dleq(rng),
        },
        14 => Frame::VerifyResult {
            ok: rng.gen_bool(0.5),
        },
        15 => Frame::RevealInnerKey {
            round: rng.next_u64(),
        },
        16 => Frame::InnerKeyReveal {
            position: rng.gen_range(0..64u32),
            isk: scalar(rng),
        },
        17 => Frame::PrepareRotation {
            inner_epoch: rng.next_u64(),
        },
        18 => Frame::RotationShare {
            inner_epoch: rng.next_u64(),
            share: RotationShare {
                position: rng.gen_range(0..64usize),
                ipk: g(rng),
                pok: schnorr(rng),
            },
        },
        19 => Frame::ActivateRotation {
            keys: chain_keys(rng),
        },
        20 => Frame::Accuse {
            round: rng.next_u64(),
            input_index: rng.next_u64(),
        },
        21 => Frame::Accusation {
            accusation: accusation(rng),
        },
        22 => Frame::RevealSlot {
            round: rng.next_u64(),
            output_index: rng.next_u64(),
        },
        23 => Frame::SlotReveal {
            reveal: if rng.gen_bool(0.3) {
                None
            } else {
                Some(Box::new(blame_reveal(rng)))
            },
        },
        24 => Frame::MixForward {
            round: rng.next_u64(),
        },
        25 => Frame::MixBatchStart {
            round: rng.next_u64(),
            total: rng.gen_range(0..=xrd_net::codec::MAX_BATCH as u32),
        },
        26 => Frame::MixBatchChunk {
            entries: mix_entries(rng),
        },
        27 => {
            let mut digest = [0u8; 32];
            rng.fill_bytes(&mut digest);
            Frame::MixBatchEnd { digest }
        }
        28 => Frame::HopOutputStart {
            round: rng.next_u64(),
            position: rng.gen_range(0..64u32),
            total: rng.gen_range(0..=xrd_net::codec::MAX_BATCH as u32),
        },
        29 => Frame::HopOutputChunk {
            entries: mix_entries(rng),
        },
        30 => {
            let mut digest = [0u8; 32];
            rng.fill_bytes(&mut digest);
            Frame::HopOutputEnd {
                digest,
                proof: dleq(rng),
            }
        }
        31 => Frame::VerifyHopKeys {
            round: rng.next_u64(),
            position: rng.gen_range(0..64u32),
            input_dhs: (0..rng.gen_range(0..6)).map(|_| g(rng)).collect(),
            output_dhs: (0..rng.gen_range(0..6)).map(|_| g(rng)).collect(),
            proof: dleq(rng),
        },
        32 => Frame::StatsRequest,
        33 => Frame::StatsReport {
            snapshot: Box::new(obs_snapshot(rng)),
        },
        34 => Frame::DisputeOpen {
            round: rng.next_u64(),
            accused: rng.gen_range(0..64u32),
            input_dhs: (0..rng.gen_range(0..6)).map(|_| g(rng)).collect(),
            output_dhs: (0..rng.gen_range(0..6)).map(|_| g(rng)).collect(),
            proof: dleq(rng),
        },
        35 => Frame::DisputeEvidence {
            round: rng.next_u64(),
            position: rng.gen_range(0..64u32),
            accused: rng.gen_range(0..64u32),
            upheld: rng.gen_bool(0.5),
            sig: schnorr(rng),
        },
        36 => Frame::DisputeVerdict {
            round: rng.next_u64(),
            accused: rng.gen_range(0..64u32),
            claim: rng.gen_range(0..3u8),
            upheld: rng.gen_bool(0.5),
            votes: rng.gen_range(0..64u32),
        },
        37 => Frame::HopForwarded {
            round: rng.next_u64(),
            position: rng.gen_range(0..64u32),
            input_dhs: (0..rng.gen_range(0..6)).map(|_| g(rng)).collect(),
            output_dhs: (0..rng.gen_range(0..6)).map(|_| g(rng)).collect(),
            proof: dleq(rng),
        },
        38 => Frame::Pong,
        _ => match variant % 4 {
            0 => Frame::Deliver {
                round: rng.next_u64(),
                batch: rng.next_u64(),
                messages: (0..rng.gen_range(0..4))
                    .map(|_| mailbox_message(rng))
                    .collect(),
            },
            1 => {
                let mut mailbox = [0u8; 32];
                rng.fill_bytes(&mut mailbox);
                Frame::FetchPage {
                    mailbox,
                    cursor: rng.next_u64(),
                    max: rng.gen_range(1..512u32),
                }
            }
            2 => Frame::MailboxPage {
                sealed: (0..rng.gen_range(0..4))
                    .map(|_| (rng.next_u64(), mailbox_message(rng).sealed))
                    .collect(),
                next_cursor: rng.next_u64(),
                remaining: rng.gen_range(0..1000u64),
            },
            _ => {
                let mut mailbox = [0u8; 32];
                rng.fill_bytes(&mut mailbox);
                Frame::FetchAck {
                    mailbox,
                    upto: rng.next_u64(),
                }
            }
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every frame type round-trips through encode/decode exactly.
    #[test]
    fn every_frame_roundtrips(seed in any::<u64>(), variant in 0usize..N_VARIANTS * 3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = arb_frame(&mut rng, variant);
        let encoded = frame.encode();
        // Length prefix is consistent.
        let len = u32::from_le_bytes(encoded[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, encoded.len() - 4);
        prop_assert!(len <= MAX_FRAME_LEN);
        // The tag byte on the wire is the one `Frame::tag` reports,
        // and every shipped tag has a metrics name.
        prop_assert_eq!(encoded[4], frame.tag());
        prop_assert!(Frame::tag_name(frame.tag()).is_some());
        // Exact round-trip.
        let decoded = Frame::decode(&encoded[4..]).expect("well-formed frame decodes");
        prop_assert_eq!(decoded, frame);
    }

    /// Every strict prefix of a frame body fails with `Truncated` —
    /// never a panic, never a bogus success.
    #[test]
    fn truncation_is_always_rejected(seed in any::<u64>(), variant in 0usize..N_VARIANTS) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = arb_frame(&mut rng, variant);
        let body = &frame.encode()[4..];
        for cut in 0..body.len() {
            match Frame::decode(&body[..cut]) {
                Err(_) => {}
                Ok(_) => prop_assert!(false, "prefix of len {} decoded", cut),
            }
        }
    }

    /// Appending garbage after a valid body is rejected as trailing
    /// bytes.
    #[test]
    fn trailing_bytes_rejected(seed in any::<u64>(), variant in 0usize..N_VARIANTS) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = arb_frame(&mut rng, variant);
        let mut body = frame.encode()[4..].to_vec();
        body.push(0x00);
        prop_assert_eq!(Frame::decode(&body), Err(CodecError::TrailingBytes));
    }

    /// Random byte soup never panics the decoder.
    #[test]
    fn fuzz_decode_never_panics(soup in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&soup);
    }

    /// The incremental decoder agrees with one-shot decoding for any
    /// frame stream split at arbitrary chunk boundaries — down to one
    /// byte at a time, across frame boundaries, frames coalesced or
    /// fragmented however the wire happens to deliver them.
    #[test]
    fn incremental_decoder_matches_oneshot(
        seed in any::<u64>(),
        n_frames in 1usize..5,
        chunk_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames: Vec<Frame> = (0..n_frames)
            .map(|i| arb_frame(&mut rng, seed as usize % N_VARIANTS + i))
            .collect();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }

        let mut chunk_rng = StdRng::seed_from_u64(chunk_seed);
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let mut off = 0;
        while off < wire.len() {
            let take = chunk_rng.gen_range(1..=(wire.len() - off).min(4096));
            decoder.feed(&wire[off..off + take]);
            off += take;
            while let Some(f) = decoder.try_frame() {
                got.push(f.expect("well-formed stream"));
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(decoder.buffered(), 0);
        prop_assert!(decoder.try_frame().is_none());
    }

    /// Cutting the stream mid-frame leaves the incremental decoder
    /// pending (never an error, never a bogus frame) until the missing
    /// bytes arrive.
    #[test]
    fn incremental_decoder_pends_on_any_truncation(
        seed in any::<u64>(),
        variant in 0usize..N_VARIANTS,
        cut_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = arb_frame(&mut rng, variant);
        let wire = frame.encode();
        let cut = StdRng::seed_from_u64(cut_seed).gen_range(0..wire.len());

        let mut decoder = FrameDecoder::new();
        decoder.feed(&wire[..cut]);
        prop_assert!(decoder.try_frame().is_none(), "partial frame must pend");
        prop_assert_eq!(decoder.buffered(), cut);
        decoder.feed(&wire[cut..]);
        prop_assert_eq!(decoder.try_frame().unwrap().unwrap(), frame);
    }

    /// The server-config blob round-trips.
    #[test]
    fn server_config_roundtrips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let public = chain_keys(&mut rng);
        let secrets = ServerSecrets {
            position: rng.gen_range(0..public.len()),
            bsk: scalar(&mut rng),
            msk: scalar(&mut rng),
            isk: scalar(&mut rng),
        };
        let blob = encode_server_config(&secrets, &public);
        let (s2, p2) = decode_server_config(&blob).expect("config decodes");
        prop_assert_eq!(s2.position, secrets.position);
        prop_assert_eq!(s2.bsk, secrets.bsk);
        prop_assert_eq!(s2.msk, secrets.msk);
        prop_assert_eq!(s2.isk, secrets.isk);
        prop_assert_eq!(p2, public);
    }
}

#[test]
fn unknown_tag_rejected() {
    assert_eq!(Frame::decode(&[0xee]), Err(CodecError::UnknownTag(0xee)));
    assert_eq!(Frame::decode(&[]), Err(CodecError::Truncated));
}

#[test]
fn oversized_sequence_rejected() {
    // A MixBatch whose declared entry count exceeds MAX_BATCH.
    let mut body = vec![0x20]; // TAG_MIX_BATCH
    body.extend_from_slice(&7u64.to_le_bytes());
    body.extend_from_slice(&(u32::MAX).to_le_bytes());
    assert!(matches!(
        Frame::decode(&body),
        Err(CodecError::Oversized { .. })
    ));
}

#[test]
fn oversized_byte_string_rejected() {
    // An Error frame whose message length is absurd.
    let mut body = vec![0x02]; // TAG_ERROR
    body.extend_from_slice(&1u16.to_le_bytes());
    body.extend_from_slice(&(u32::MAX).to_le_bytes());
    assert!(matches!(
        Frame::decode(&body),
        Err(CodecError::Oversized { .. })
    ));
}

#[test]
fn non_canonical_group_encoding_rejected() {
    // Fetch carries a raw 32-byte mailbox id (any bytes fine), but
    // InnerKeyReveal carries a scalar that must be canonical: the group
    // order ℓ < 2^253, so 32 bytes of 0xff is never canonical.
    let mut body = vec![0x31]; // TAG_INNER_KEY_REVEAL
    body.extend_from_slice(&0u32.to_le_bytes());
    body.extend_from_slice(&[0xff; 32]);
    assert_eq!(Frame::decode(&body), Err(CodecError::InvalidScalar));

    // And a Submit whose DH key is not a canonical ristretto encoding.
    let mut body = vec![0x11]; // TAG_SUBMIT
    body.extend_from_slice(&0u64.to_le_bytes());
    body.extend_from_slice(&[0xff; 32]); // dh: invalid encoding
    body.extend_from_slice(&[0u8; 64]); // pok
    body.extend_from_slice(&0u32.to_le_bytes()); // empty ct
    assert_eq!(Frame::decode(&body), Err(CodecError::InvalidGroupElement));
}

#[test]
fn wrong_size_mailbox_message_rejected() {
    // Deliver with a sealed payload of the wrong length.
    let mut body = vec![0x50]; // TAG_DELIVER
    body.extend_from_slice(&0u64.to_le_bytes()); // round
    body.extend_from_slice(&0u64.to_le_bytes()); // batch
    body.extend_from_slice(&1u32.to_le_bytes()); // one message
    body.extend_from_slice(&[7u8; 32]); // mailbox id
    body.extend_from_slice(&3u32.to_le_bytes()); // sealed: 3 bytes (wrong)
    body.extend_from_slice(&[1, 2, 3]);
    assert_eq!(Frame::decode(&body), Err(CodecError::BadLength));
}

// ---- streamed-batch chunking properties ----

/// Decode a [`ChunkedBatch`]'s frames and reassemble them, exercising
/// both digest paths (re-encode and raw payload) deterministically by
/// chunk index.
fn reassemble(stream: &ChunkedBatch) -> Result<Vec<MixEntry>, StreamError> {
    let mut assembler: Option<BatchAssembler> = None;
    let mut out = Err(StreamError::DigestMismatch);
    for (i, bytes) in stream.frames().iter().enumerate() {
        match Frame::decode(&bytes[4..]).expect("built frames decode") {
            Frame::MixBatchStart { round, total } => {
                assembler = Some(BatchAssembler::begin(round, total)?);
            }
            Frame::MixBatchChunk { entries } => {
                let a = assembler.as_mut().expect("start first");
                if i % 2 == 0 {
                    a.absorb(entries)?;
                } else {
                    // The relay path: digest from the raw payload.
                    a.absorb_raw(entries, &bytes[ChunkedBatch::CHUNK_PAYLOAD_OFFSET..])?;
                }
            }
            Frame::MixBatchEnd { digest } => {
                out = assembler.take().expect("start first").finish(digest);
            }
            other => panic!("unexpected frame in stream: {other:?}"),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chunking of a batch — down to 1-entry chunks — reassembles
    /// to exactly the entries a monolithic `MixBatch` frame carries.
    #[test]
    fn any_chunking_reassembles_to_the_monolithic_batch(
        seed in any::<u64>(),
        chunk_size in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = mix_entries(&mut rng);
        let round = rng.next_u64();

        let stream = ChunkedBatch::build(round, &entries, chunk_size);
        prop_assert_eq!(stream.total(), entries.len());
        prop_assert_eq!(reassemble(&stream).expect("clean stream"), entries.clone());

        // The monolithic frame carries the identical batch.
        let mono = Frame::MixBatch { round, entries: entries.clone() }.encode();
        let Frame::MixBatch { entries: decoded, .. } =
            Frame::decode(&mono[4..]).expect("monolithic decodes")
        else { panic!("wrong frame") };
        prop_assert_eq!(decoded, entries);
    }

    /// Two different chunkings of the same batch close with the same
    /// stream digest (the digest binds entries, not framing).
    #[test]
    fn stream_digest_is_chunking_invariant(
        seed in any::<u64>(),
        a in 1usize..40,
        b in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = mix_entries(&mut rng);
        prop_assert_eq!(
            ChunkedBatch::build(9, &entries, a).digest(),
            ChunkedBatch::build(9, &entries, b).digest()
        );
    }

    /// A truncated stream (End arrives before the declared total) is
    /// rejected as Incomplete, never silently assembled.
    #[test]
    fn truncated_stream_is_incomplete(seed in any::<u64>(), chunk_size in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries = mix_entries(&mut rng);
        entries.push(mix_entry(&mut rng)); // ≥ 1 entry, ≥ 1 chunk
        let stream = ChunkedBatch::build(3, &entries, chunk_size);

        let mut assembler = BatchAssembler::begin(3, entries.len() as u32).unwrap();
        // Feed every chunk but the last.
        let chunks = stream.frames().len() - 2;
        for bytes in &stream.frames()[1..1 + chunks - 1] {
            let Frame::MixBatchChunk { entries } = Frame::decode(&bytes[4..]).unwrap()
            else { panic!("wrong frame") };
            assembler.absorb(entries).unwrap();
        }
        prop_assert!(matches!(
            assembler.finish(stream.digest()),
            Err(StreamError::Incomplete { .. })
        ));
    }

    /// A flipped digest bit fails the close.
    #[test]
    fn digest_mismatch_is_rejected(seed in any::<u64>(), chunk_size in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = mix_entries(&mut rng);
        let stream = ChunkedBatch::build(5, &entries, chunk_size);

        let mut assembler = BatchAssembler::begin(5, entries.len() as u32).unwrap();
        for bytes in &stream.frames()[1..stream.frames().len() - 1] {
            let Frame::MixBatchChunk { entries } = Frame::decode(&bytes[4..]).unwrap()
            else { panic!("wrong frame") };
            assembler.absorb(entries).unwrap();
        }
        let mut digest = stream.digest();
        digest[seed as usize % 32] ^= 1;
        prop_assert_eq!(assembler.finish(digest), Err(StreamError::DigestMismatch));
    }

    /// More entries than the Start declared error out at the
    /// offending chunk (Overrun), not at the End.
    #[test]
    fn overrun_rejected_at_the_chunk(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries = mix_entries(&mut rng);
        entries.push(mix_entry(&mut rng));

        let mut assembler =
            BatchAssembler::begin(1, (entries.len() - 1) as u32).unwrap();
        prop_assert!(matches!(
            assembler.absorb(entries),
            Err(StreamError::Overrun { .. })
        ));
    }
}

#[test]
fn stream_for_the_wrong_round_is_rejected() {
    assert_eq!(
        BatchAssembler::begin_for_round(7, 4, 8).err(),
        Some(StreamError::WrongRound { got: 7, want: 8 })
    );
    assert!(BatchAssembler::begin_for_round(8, 4, 8).is_ok());
}

#[test]
fn oversized_stream_declaration_rejected() {
    assert!(matches!(
        BatchAssembler::begin(0, xrd_net::codec::MAX_BATCH as u32 + 1),
        Err(StreamError::TooLarge { .. })
    ));
}
