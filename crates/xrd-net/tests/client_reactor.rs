//! Deterministic client-reactor state-machine tests against a
//! scripted in-process peer.
//!
//! The swarm tests exercise the reactor against real daemons at
//! volume; these tests pin down the per-connection byte-level
//! behaviors that volume hides: responses dribbled a byte at a time,
//! frames split mid length-prefix, connections dropped mid-exchange
//! (bounded retry, restartable fetch walks), malformed bytes (a typed
//! codec failure, never a retry), and a machine that panics taking
//! down its own session and nothing else — the regression that used to
//! deadlock the thread-pool submit storm.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xrd_net::codec::FrameDecoder;
use xrd_net::swarm::reactor::{
    drive_sessions, DriveConfig, FetchSession, SessionMachine, Step, SubmitSession,
};
use xrd_net::{CodecError, Frame, NetError};

/// Serve each accepted connection with `script(conn_index, stream)`,
/// serially, on a background thread.  Returns the listen address and a
/// counter of accepted connections.
fn scripted_peer<F>(script: F) -> (SocketAddr, Arc<AtomicUsize>)
where
    F: Fn(usize, TcpStream) + Send + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("peer binds");
    let addr = listener.local_addr().expect("peer addr");
    let conns = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&conns);
    std::thread::spawn(move || {
        for (n, stream) in listener.incoming().enumerate() {
            let Ok(stream) = stream else { break };
            counter.fetch_add(1, Ordering::SeqCst);
            script(n, stream);
        }
    });
    (addr, conns)
}

/// A wire-legal sealed mailbox payload (the codec enforces the exact
/// sealed length), distinguishable by its fill byte.
fn sealed(fill: u8) -> Vec<u8> {
    vec![fill; xrd_mixnet::MAILBOX_MSG_LEN - 32]
}

/// Read one complete frame off `stream` (blocking).
fn read_frame(stream: &mut TcpStream, decoder: &mut FrameDecoder) -> Frame {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(result) = decoder.try_frame() {
            return result.expect("peer received a well-formed frame");
        }
        let n = stream.read(&mut buf).expect("peer reads");
        assert!(n > 0, "client hung up mid-request");
        decoder.feed(&buf[..n]);
    }
}

/// Write `frame` one byte at a time with a scheduling gap between
/// bytes, so the client's decoder sees the worst possible framing.
fn dribble(stream: &mut TcpStream, frame: &Frame) {
    stream.set_nodelay(true).expect("nodelay");
    for byte in frame.encode() {
        stream.write_all(&[byte]).expect("dribbled byte");
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// A full mailbox walk: two pages then the ack, every response byte
/// dribbled individually — the client must reassemble frames from
/// arbitrarily small reads.
#[test]
fn dribbled_responses_reassemble_into_a_complete_fetch() {
    let mailbox = [7u8; 32];
    let (addr, conns) = scripted_peer(move |_, mut stream| {
        let mut decoder = FrameDecoder::new();
        match read_frame(&mut stream, &mut decoder) {
            Frame::FetchPage {
                cursor: 0, max: 2, ..
            } => {}
            other => panic!("expected opening FetchPage, got {other:?}"),
        }
        dribble(
            &mut stream,
            &Frame::MailboxPage {
                sealed: vec![(3, sealed(0xA1)), (4, sealed(0xB2))],
                next_cursor: 2,
                remaining: 1,
            },
        );
        match read_frame(&mut stream, &mut decoder) {
            Frame::FetchPage { cursor: 2, .. } => {}
            other => panic!("expected continuation FetchPage, got {other:?}"),
        }
        dribble(
            &mut stream,
            &Frame::MailboxPage {
                sealed: vec![(5, sealed(0xC3))],
                next_cursor: 3,
                remaining: 0,
            },
        );
        match read_frame(&mut stream, &mut decoder) {
            Frame::FetchAck { upto: 3, .. } => {}
            other => panic!("expected FetchAck, got {other:?}"),
        }
        dribble(&mut stream, &Frame::Ok);
    });

    let outcome = drive_sessions(
        vec![FetchSession::new(addr, mailbox, 2)],
        &DriveConfig::default(),
    )
    .expect("reactor runs");
    assert_eq!(outcome.completed, 1, "failures: {:?}", outcome.failed);
    let entries = outcome.sessions.into_iter().next().unwrap().into_entries();
    assert_eq!(
        entries,
        vec![(3, sealed(0xA1)), (4, sealed(0xB2)), (5, sealed(0xC3)),]
    );
    assert_eq!(conns.load(Ordering::SeqCst), 1);
}

/// A response split in the middle of its 4-byte length prefix, with a
/// real delay between the halves: the decoder must hold the partial
/// prefix across reads.
#[test]
fn response_split_mid_length_prefix_still_decodes() {
    let (addr, _) = scripted_peer(|_, mut stream| {
        let mut decoder = FrameDecoder::new();
        let _ = read_frame(&mut stream, &mut decoder);
        stream.set_nodelay(true).expect("nodelay");
        let bytes = Frame::Ok.encode();
        stream.write_all(&bytes[..2]).expect("first half");
        std::thread::sleep(Duration::from_millis(30));
        stream.write_all(&bytes[2..]).expect("second half");
    });

    let outcome = drive_sessions(
        vec![SubmitSession::new(vec![(addr, Frame::Ping)])],
        &DriveConfig::default(),
    )
    .expect("reactor runs");
    assert_eq!(outcome.completed, 1, "failures: {:?}", outcome.failed);
    assert_eq!(outcome.sessions[0].acknowledged(), 1);
}

/// A peer that eats the request and hangs up twice before serving:
/// the session retries within its budget and completes — and the
/// retry re-sends the exchange's opening request from scratch.
#[test]
fn mid_exchange_disconnect_is_retried_within_budget() {
    let (addr, conns) = scripted_peer(|n, mut stream| {
        let mut decoder = FrameDecoder::new();
        let _ = read_frame(&mut stream, &mut decoder);
        if n < 2 {
            return; // drop with the exchange mid-flight
        }
        stream.write_all(&Frame::Ok.encode()).expect("ack");
    });

    let outcome = drive_sessions(
        vec![SubmitSession::new(vec![(addr, Frame::Ping)])],
        &DriveConfig::default(),
    )
    .expect("reactor runs");
    assert_eq!(outcome.completed, 1, "failures: {:?}", outcome.failed);
    assert_eq!(
        conns.load(Ordering::SeqCst),
        3,
        "two dropped attempts plus the served one"
    );
}

/// A peer that always hangs up: the session fails with a transport
/// error after exactly `max_retries` reconnects — never an unbounded
/// retry loop.
#[test]
fn disconnects_past_the_retry_budget_fail_the_session() {
    let (addr, conns) = scripted_peer(|_, mut stream| {
        let mut decoder = FrameDecoder::new();
        let _ = read_frame(&mut stream, &mut decoder);
        // drop: every exchange dies mid-flight
    });

    let outcome = drive_sessions(
        vec![SubmitSession::new(vec![(addr, Frame::Ping)])],
        &DriveConfig {
            max_retries: 2,
            ..Default::default()
        },
    )
    .expect("reactor runs");
    assert_eq!(outcome.completed, 0);
    assert_eq!(outcome.failed.len(), 1);
    let (i, err) = &outcome.failed[0];
    assert_eq!(*i, 0);
    assert!(
        matches!(err, NetError::Disconnected | NetError::Io(_)),
        "expected a transport error, got {err:?}"
    );
    assert_eq!(
        conns.load(Ordering::SeqCst),
        3,
        "initial attempt plus max_retries reconnects, then stop"
    );
}

/// A response dropped in transit — the peer eats the request and goes
/// silent *without closing the socket* (what a lossy network or a
/// frame-dropping middlebox looks like).  No readiness event will ever
/// fire, so only the idle sweep can save the session: past the
/// exchange timeout it must redial and the retry completes.  This
/// was a real regression: before the sweep, such a session pinned the
/// whole run until the 300 s drive deadline failed it outright.
#[test]
fn dropped_response_heals_through_the_idle_timeout() {
    let (addr, conns) = scripted_peer(|n, mut stream| {
        let mut decoder = FrameDecoder::new();
        let _ = read_frame(&mut stream, &mut decoder);
        if n == 0 {
            // Swallow the request, hold the socket open and silent
            // past the client's idle ceiling — but not so long that
            // the redialed attempt (parked in the accept backlog
            // until this script returns) idles out too.
            std::thread::sleep(Duration::from_millis(500));
            return;
        }
        stream.write_all(&Frame::Ok.encode()).expect("ack");
    });

    let outcome = drive_sessions(
        vec![SubmitSession::new(vec![(addr, Frame::Ping)])],
        &DriveConfig {
            exchange_timeout: Duration::from_millis(300),
            ..Default::default()
        },
    )
    .expect("reactor runs");
    assert_eq!(outcome.completed, 1, "failures: {:?}", outcome.failed);
    assert_eq!(outcome.sessions[0].acknowledged(), 1);
    assert_eq!(
        conns.load(Ordering::SeqCst),
        2,
        "the silent attempt plus the redialed one"
    );
}

/// A peer that is silent on every connection exhausts the retry budget
/// and fails with a *typed* idle timeout — bounded by
/// `(max_retries + 1) × exchange_timeout`, never the whole-run
/// deadline.
#[test]
fn silence_past_the_retry_budget_is_a_typed_idle_timeout() {
    let (addr, conns) = scripted_peer(|_, mut stream| {
        let mut decoder = FrameDecoder::new();
        let _ = read_frame(&mut stream, &mut decoder);
        std::thread::sleep(Duration::from_millis(600));
    });

    let outcome = drive_sessions(
        vec![SubmitSession::new(vec![(addr, Frame::Ping)])],
        &DriveConfig {
            max_retries: 1,
            exchange_timeout: Duration::from_millis(200),
            ..Default::default()
        },
    )
    .expect("reactor runs");
    assert_eq!(outcome.completed, 0);
    assert_eq!(outcome.failed.len(), 1);
    let (i, err) = &outcome.failed[0];
    assert_eq!(*i, 0);
    assert!(
        matches!(
            err,
            NetError::Timeout {
                op: "client exchange idle"
            }
        ),
        "expected the idle timeout, got {err:?}"
    );
    // The redialed connection sits in the accept backlog until the
    // first script's hold expires; give the serial accept loop time to
    // count it before asserting the attempt total.
    std::thread::sleep(Duration::from_millis(1500));
    assert_eq!(
        conns.load(Ordering::SeqCst),
        2,
        "initial attempt plus max_retries reconnects, then stop"
    );
}

/// A fetch walk whose connection dies between pages restarts from
/// cursor 0 on the retry (nothing was acked) — and the final entry set
/// has no duplicates from the abandoned first walk.
#[test]
fn fetch_walk_restarts_from_scratch_after_disconnect() {
    let mailbox = [9u8; 32];
    let (addr, conns) = scripted_peer(move |n, mut stream| {
        let mut decoder = FrameDecoder::new();
        match read_frame(&mut stream, &mut decoder) {
            Frame::FetchPage { cursor, .. } => {
                assert_eq!(cursor, 0, "every (re)start must page from the watermark")
            }
            other => panic!("expected FetchPage, got {other:?}"),
        }
        stream
            .write_all(
                &Frame::MailboxPage {
                    sealed: vec![(3, sealed(0xA1))],
                    next_cursor: 1,
                    remaining: 1,
                }
                .encode(),
            )
            .expect("first page");
        if n == 0 {
            return; // die mid-walk, page 2 never sent
        }
        match read_frame(&mut stream, &mut decoder) {
            Frame::FetchPage { cursor: 1, .. } => {}
            other => panic!("expected continuation, got {other:?}"),
        }
        stream
            .write_all(
                &Frame::MailboxPage {
                    sealed: vec![(3, sealed(0xB2))],
                    next_cursor: 2,
                    remaining: 0,
                }
                .encode(),
            )
            .expect("second page");
        match read_frame(&mut stream, &mut decoder) {
            Frame::FetchAck { upto: 2, .. } => {}
            other => panic!("expected FetchAck, got {other:?}"),
        }
        stream.write_all(&Frame::Ok.encode()).expect("ack ok");
    });

    let outcome = drive_sessions(
        vec![FetchSession::new(addr, mailbox, 1)],
        &DriveConfig::default(),
    )
    .expect("reactor runs");
    assert_eq!(outcome.completed, 1, "failures: {:?}", outcome.failed);
    let entries = outcome.sessions.into_iter().next().unwrap().into_entries();
    assert_eq!(
        entries,
        vec![(3, sealed(0xA1)), (3, sealed(0xB2))],
        "the abandoned first walk must not leave duplicate entries"
    );
    assert_eq!(conns.load(Ordering::SeqCst), 2);
}

/// Bytes that do not parse as any frame are a typed
/// [`NetError::Codec`] failure — immediately, with no retry: a peer
/// speaking a different protocol will not get retried into.
#[test]
fn malformed_frame_is_a_typed_codec_error_not_a_retry() {
    let (addr, conns) = scripted_peer(|_, mut stream| {
        let mut decoder = FrameDecoder::new();
        let _ = read_frame(&mut stream, &mut decoder);
        // Length 1, tag 0xEE: well-framed, meaningless.
        stream.write_all(&[1, 0, 0, 0, 0xEE]).expect("garbage");
        // Hold the socket open so the failure is the bytes, not EOF.
        std::thread::sleep(Duration::from_millis(200));
    });

    let outcome = drive_sessions(
        vec![SubmitSession::new(vec![(addr, Frame::Ping)])],
        &DriveConfig::default(),
    )
    .expect("reactor runs");
    assert_eq!(outcome.completed, 0);
    assert_eq!(outcome.failed.len(), 1);
    match &outcome.failed[0] {
        (0, NetError::Codec(CodecError::UnknownTag(0xEE))) => {}
        other => panic!("expected UnknownTag(0xEE), got {other:?}"),
    }
    assert_eq!(
        conns.load(Ordering::SeqCst),
        1,
        "a codec failure must not be retried"
    );
}

/// A storm machine for the panic-regression test: honest sessions run
/// one Ping→Ok exchange; the bomb panics on its first response.
enum StormMachine {
    Honest { addr: SocketAddr, done: bool },
    Bomb { addr: SocketAddr },
}

impl SessionMachine for StormMachine {
    fn target(&self) -> Option<SocketAddr> {
        match self {
            StormMachine::Honest { done: true, .. } => None,
            StormMachine::Honest { addr, .. } | StormMachine::Bomb { addr } => Some(*addr),
        }
    }

    fn on_connect(&mut self) -> Vec<Frame> {
        vec![Frame::Ping]
    }

    fn on_frame(&mut self, frame: Frame) -> Step {
        match self {
            StormMachine::Honest { done, .. } => match frame {
                Frame::Ok => {
                    *done = true;
                    Step::NextTarget
                }
                other => Step::Fail(NetError::Protocol(format!("expected Ok, got {other:?}"))),
            },
            StormMachine::Bomb { .. } => panic!("deliberate state-machine bug"),
        }
    }
}

/// The submit-storm regression: one machine with a bug that panics
/// fails *its own* session and nothing else — the rest of the storm
/// completes and the run returns.  The old thread-pool storm sized a
/// completion barrier by worker count; a panicking worker left the
/// barrier short and every other worker deadlocked behind it.
#[test]
fn panicking_machine_fails_alone_and_the_storm_completes() {
    let (addr, _) = scripted_peer(|_, mut stream| {
        let mut decoder = FrameDecoder::new();
        let _ = read_frame(&mut stream, &mut decoder);
        let _ = stream.write_all(&Frame::Ok.encode());
    });

    const BOMB: usize = 4;
    let sessions: Vec<StormMachine> = (0..9)
        .map(|i| {
            if i == BOMB {
                StormMachine::Bomb { addr }
            } else {
                StormMachine::Honest { addr, done: false }
            }
        })
        .collect();

    let outcome = drive_sessions(sessions, &DriveConfig::default()).expect("reactor runs");
    assert_eq!(outcome.completed, 8, "failures: {:?}", outcome.failed);
    assert_eq!(outcome.failed.len(), 1);
    let (i, err) = &outcome.failed[0];
    assert_eq!(*i, BOMB);
    match err {
        NetError::Protocol(msg) => assert!(msg.contains("panicked"), "got: {msg}"),
        other => panic!("expected the panic converted to a Protocol error, got {other:?}"),
    }
}
