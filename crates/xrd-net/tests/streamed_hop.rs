//! End-to-end tests for the streamed hop pipeline: equivalence with
//! the whole-batch path, full chain rounds over forced streaming
//! (including blame), and the daemon's handling of malformed streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_core::{DeploymentConfig, User};
use xrd_mixnet::chain_keys::{generate_chain_keys, rotate_inner_keys};
use xrd_mixnet::message::MixEntry;
use xrd_mixnet::server::verify_hop;
use xrd_net::codec::{error_code, BatchAssembler, ChunkedBatch, Frame, StreamDigest};
use xrd_net::{launch_local, run_swarm, Conn, MixServerDaemon, NetError, SwarmConfig, Transport};
use xrd_topology::ChainId;

/// Drive one daemon through a streamed hop and return its outputs and
/// proof.
fn streamed_hop(
    conn: &mut Conn,
    round: u64,
    entries: &[MixEntry],
    chunk: usize,
) -> Result<(Vec<MixEntry>, xrd_crypto::nizk::DleqProof), NetError> {
    let stream = ChunkedBatch::build(round, entries, chunk);
    for bytes in stream.frames() {
        conn.send_encoded(bytes)?;
    }
    let total = match conn.recv()? {
        Frame::HopOutputStart { total, .. } => total,
        other => panic!("expected HopOutputStart, got {other:?}"),
    };
    let mut assembler = BatchAssembler::begin(round, total).expect("assembler");
    loop {
        match conn.recv()? {
            Frame::HopOutputChunk { entries } => {
                assembler.absorb(entries).expect("absorbs");
            }
            Frame::HopOutputEnd { digest, proof } => {
                return Ok((assembler.finish(digest).expect("digest matches"), proof));
            }
            other => panic!("expected HopOutputChunk/End, got {other:?}"),
        }
    }
}

/// The streamed path computes *exactly* the whole-batch hop: two
/// daemons with identical secrets and rng seeds, one driven by a
/// monolithic `MixBatch`, one by a chunk stream — identical shuffled
/// outputs, both attestations verify.
#[test]
fn streamed_and_whole_batch_hops_agree() {
    let round = 0u64;
    let mut rng = StdRng::seed_from_u64(11);
    let (mut secrets, mut public) = generate_chain_keys(&mut rng, 3, 0);
    rotate_inner_keys(&mut rng, &mut secrets, &mut public, round);
    let secrets = secrets.remove(0);

    let whole = MixServerDaemon::spawn("127.0.0.1:0", secrets.clone(), public.clone(), 42)
        .expect("whole daemon spawns");
    let streamed = MixServerDaemon::spawn("127.0.0.1:0", secrets, public.clone(), 42)
        .expect("streamed daemon spawns");

    let subs = xrd_net::swarm::sealed_submissions(&mut rng, &public, round, 37);
    let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();

    let mut whole_conn = Conn::connect(whole.addr()).expect("connects");
    let (whole_out, whole_proof) = match whole_conn
        .request(&Frame::MixBatch {
            round,
            entries: entries.clone(),
        })
        .expect("whole hop runs")
    {
        Frame::HopOutput { outputs, proof, .. } => (outputs, proof),
        other => panic!("expected HopOutput, got {other:?}"),
    };

    let mut streamed_conn = Conn::connect(streamed.addr()).expect("connects");
    let (streamed_out, streamed_proof) =
        streamed_hop(&mut streamed_conn, round, &entries, 5).expect("streamed hop runs");

    // Same rng seed, same rng consumption order (the kernel draws no
    // randomness; only the shuffle and proof do): identical results.
    assert_eq!(streamed_out, whole_out);
    assert!(verify_hop(
        &public,
        0,
        round,
        &entries,
        &whole_out,
        &whole_proof
    ));
    assert!(verify_hop(
        &public,
        0,
        round,
        &entries,
        &streamed_out,
        &streamed_proof
    ));
}

/// A full networked deployment with streaming forced down to 4-entry
/// chunks: every round (mix, cross-verify, reveal, delivery, rotation)
/// completes and every chat lands — the pipeline is a drop-in for the
/// whole-batch path.
#[test]
fn streamed_chain_rounds_deliver() {
    let mut rng = StdRng::seed_from_u64(23);
    let config = DeploymentConfig::small(4, 3);
    let (mut cluster, mut deployment) = launch_local(&mut rng, &config).expect("cluster launches");
    deployment.set_transport(Transport::Streamed { chunk: 4 });

    let report = run_swarm(
        &mut rng,
        &mut deployment,
        &SwarmConfig {
            n_users: 16,
            rounds: 2,
            conversing_fraction: 0.5,
            submit_workers: 4,
        },
    )
    .expect("streamed swarm round failed");
    assert_eq!(report.rounds.len(), 2);
    for round in &report.rounds {
        assert!(
            round.delivered > 0,
            "round {} delivered nothing",
            round.round
        );
    }
    cluster.shutdown();
}

/// Daemon-to-daemon forwarding is a drop-in for the relayed paths: the
/// coordinator streams the batch to hop 0 once, hops forward output
/// chunks directly to their successors, and only keys-only
/// attestations plus the last hop's stream come back — yet every
/// round completes and every chat lands, across rotations.
#[test]
fn forwarded_chain_rounds_deliver() {
    let mut rng = StdRng::seed_from_u64(29);
    let config = DeploymentConfig::small(4, 3);
    let (mut cluster, mut deployment) = launch_local(&mut rng, &config).expect("cluster launches");
    deployment.set_transport(Transport::Forwarded { chunk: 8 });

    let report = run_swarm(
        &mut rng,
        &mut deployment,
        &SwarmConfig {
            n_users: 16,
            rounds: 2,
            conversing_fraction: 0.5,
            submit_workers: 4,
        },
    )
    .expect("forwarded swarm round failed");
    assert_eq!(report.rounds.len(), 2);
    for round in &report.rounds {
        assert!(
            round.delivered > 0,
            "round {} delivered nothing",
            round.round
        );
    }
    cluster.shutdown();
}

/// Forwarded mode cannot localize a bad onion (blame needs the full
/// intermediate batches), so a decrypt failure mid-cascade must make
/// the coordinator *fall back to relayed streaming*, where the §6.4
/// trace convicts the injected submission and the honest messages all
/// deliver — forwarding degrades, never loses a round.
#[test]
fn forwarded_falls_back_to_streaming_for_blame() {
    let mut rng = StdRng::seed_from_u64(37);
    let config = DeploymentConfig::small(4, 3);
    let (mut cluster, mut deployment) = launch_local(&mut rng, &config).expect("cluster launches");
    deployment.set_transport(Transport::Forwarded { chunk: 8 });
    let ell = deployment.topology().ell();

    let mut users: Vec<User> = (0..5).map(|_| User::new(&mut rng)).collect();
    let bad = xrd_mixnet::testutil::malicious_submission(
        &mut rng,
        &deployment.chain_keys()[0],
        0,
        deployment.topology().chain_len() - 1,
    );
    deployment.inject_submission(ChainId(0), bad);

    let (report, fetched) = deployment
        .run_round(&mut rng, &mut users)
        .expect("round failed");
    assert!(report.aborted_chains.is_empty(), "no server is at fault");
    assert_eq!(
        report.malicious_by_chain.get(&0),
        Some(&1),
        "the injected submission is convicted on the fallback path"
    );
    assert_eq!(report.delivered, 5 * ell, "honest messages all survive");
    for user in &users {
        assert_eq!(fetched[&user.mailbox_id()].len(), ell);
    }
    cluster.shutdown();
}

/// Blame still works when the batch streams: a garbage onion triggers
/// `HopFailure` out of a streamed session, the §6.4 trace convicts the
/// injected submission, and the retried (streamed) pass delivers every
/// honest message.
#[test]
fn streamed_blame_removes_malicious_submission() {
    let mut rng = StdRng::seed_from_u64(4);
    let config = DeploymentConfig::small(4, 3);
    let (mut cluster, mut deployment) = launch_local(&mut rng, &config).expect("cluster launches");
    deployment.set_transport(Transport::Streamed { chunk: 3 });
    let ell = deployment.topology().ell();

    let mut users: Vec<User> = (0..5).map(|_| User::new(&mut rng)).collect();
    let bad = xrd_mixnet::testutil::malicious_submission(
        &mut rng,
        &deployment.chain_keys()[0],
        0,
        deployment.topology().chain_len() - 1,
    );
    deployment.inject_submission(ChainId(0), bad);

    let (report, fetched) = deployment
        .run_round(&mut rng, &mut users)
        .expect("round failed");
    assert!(report.aborted_chains.is_empty(), "no server is at fault");
    assert_eq!(
        report.malicious_by_chain.get(&0),
        Some(&1),
        "the injected submission is convicted"
    );
    assert_eq!(report.delivered, 5 * ell, "honest messages all survive");
    for user in &users {
        assert_eq!(fetched[&user.mailbox_id()].len(), ell);
    }
    cluster.shutdown();
}

/// Malformed streams are answered with `Error` frames and leave the
/// daemon serving: chunks without a Start, overrunning the declared
/// total, and a wrong closing digest.
#[test]
fn malformed_streams_rejected_cleanly() {
    let round = 0u64;
    let mut rng = StdRng::seed_from_u64(31);
    let (mut secrets, mut public) = generate_chain_keys(&mut rng, 2, 0);
    rotate_inner_keys(&mut rng, &mut secrets, &mut public, round);
    let daemon = MixServerDaemon::spawn("127.0.0.1:0", secrets.remove(0), public.clone(), 7)
        .expect("daemon spawns");

    let subs = xrd_net::swarm::sealed_submissions(&mut rng, &public, round, 6);
    let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();

    let mut conn = Conn::connect(daemon.addr()).expect("connects");

    // 1. A chunk with no session open.
    match conn.request(&Frame::MixBatchChunk {
        entries: entries.clone(),
    }) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, error_code::BAD_STATE),
        other => panic!("chunk without start not rejected: {other:?}"),
    }

    // 2. An End with no session open.
    match conn.request(&Frame::MixBatchEnd { digest: [0; 32] }) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, error_code::BAD_STATE),
        other => panic!("end without start not rejected: {other:?}"),
    }

    // 3. Overrun: declare 2 entries, ship 6.
    conn.send(&Frame::MixBatchStart { round, total: 2 })
        .expect("start sends");
    match conn.request(&Frame::MixBatchChunk {
        entries: entries.clone(),
    }) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, error_code::BAD_STATE),
        other => panic!("overrun not rejected: {other:?}"),
    }

    // 4. Digest mismatch: correct count, wrong closing digest.
    conn.send(&Frame::MixBatchStart {
        round,
        total: entries.len() as u32,
    })
    .expect("start sends");
    conn.send(&Frame::MixBatchChunk {
        entries: entries.clone(),
    })
    .expect("chunk sends");
    match conn.request(&Frame::MixBatchEnd { digest: [9; 32] }) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, error_code::BAD_STATE),
        other => panic!("digest mismatch not rejected: {other:?}"),
    }

    // 5. A fresh Start replaces any aborted session, and the daemon
    // still runs a clean streamed hop on this same connection.
    let (outputs, proof) = streamed_hop(&mut conn, round, &entries, 2).expect("clean hop");
    assert_eq!(outputs.len(), entries.len());
    assert!(verify_hop(&public, 0, round, &entries, &outputs, &proof));
}

/// The stream digest really is what the daemon checks: a relay that
/// recomputes it from decoded entries gets the same value the builder
/// derived from its encoded payloads.
#[test]
fn builder_and_reencoded_digests_agree() {
    let mut rng = StdRng::seed_from_u64(55);
    let (_, public) = generate_chain_keys(&mut rng, 1, 0);
    let subs = xrd_net::swarm::sealed_submissions(&mut rng, &public, 0, 9);
    let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();

    let built = ChunkedBatch::build(0, &entries, 4);
    let mut digest = StreamDigest::new();
    digest.absorb_entries(&entries);
    assert_eq!(built.digest(), digest.finalize());
}

/// A client that fires a hop and vanishes mid-computation must not
/// wedge (or spin) the daemon: the orphaned job's response is
/// discarded and other connections keep being served immediately.
#[test]
fn disconnect_while_hop_pending_leaves_daemon_serving() {
    let round = 0u64;
    let mut rng = StdRng::seed_from_u64(77);
    let (mut secrets, mut public) = generate_chain_keys(&mut rng, 2, 0);
    rotate_inner_keys(&mut rng, &mut secrets, &mut public, round);
    let daemon = MixServerDaemon::spawn("127.0.0.1:0", secrets.remove(0), public.clone(), 3)
        .expect("daemon spawns");

    let subs = xrd_net::swarm::sealed_submissions(&mut rng, &public, round, 200);
    let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();

    // Fire a ~15ms hop and hang up without reading the response.
    let mut doomed = Conn::connect(daemon.addr()).expect("doomed connects");
    doomed
        .send(&Frame::MixBatch {
            round,
            entries: entries.clone(),
        })
        .expect("hop fires");
    drop(doomed);

    // While (and after) the orphaned job runs, the daemon serves.
    let mut conn = Conn::connect(daemon.addr()).expect("reconnect");
    let start = std::time::Instant::now();
    for _ in 0..20 {
        conn.ping().expect("ping served");
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "daemon unresponsive after mid-hop disconnect"
    );
    // And a full hop still completes on the surviving connection.
    let (outputs, proof) = streamed_hop(&mut conn, round, &entries, 50).expect("clean hop");
    assert!(verify_hop(&public, 0, round, &entries, &outputs, &proof));
}

/// A request/response client that half-closes (shutdown write) right
/// after firing a hop must still receive the deferred response — EOF
/// on the daemon's read is not a disconnect while the peer's read
/// half lives.
#[test]
fn half_closing_client_still_receives_deferred_response() {
    use std::io::Write;
    let round = 0u64;
    let mut rng = StdRng::seed_from_u64(91);
    let (mut secrets, mut public) = generate_chain_keys(&mut rng, 2, 0);
    rotate_inner_keys(&mut rng, &mut secrets, &mut public, round);
    let daemon = MixServerDaemon::spawn("127.0.0.1:0", secrets.remove(0), public.clone(), 5)
        .expect("daemon spawns");

    let subs = xrd_net::swarm::sealed_submissions(&mut rng, &public, round, 60);
    let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();

    let mut stream = std::net::TcpStream::connect(daemon.addr()).expect("connects");
    stream
        .write_all(
            &Frame::MixBatch {
                round,
                entries: entries.clone(),
            }
            .encode(),
        )
        .expect("hop fires");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");

    match xrd_net::codec::read_frame(&mut stream).expect("response readable") {
        Some(Ok(Frame::HopOutput { outputs, proof, .. })) => {
            assert!(verify_hop(&public, 0, round, &entries, &outputs, &proof));
        }
        other => panic!("expected HopOutput after half-close, got {other:?}"),
    }
}
