//! Multi-process soak tests: a manifest-launched deployment of real
//! `xrd-netd` child processes, driven for several rounds by the
//! single-threaded client reactor with user churn, with **exact**
//! delivery accounting — zero loss, zero duplication — and a clean
//! (Shutdown-honored, no kill) teardown.
//!
//! The tier-1 test runs a scaled-down population so `cargo test` stays
//! fast; the `#[ignore]`d heavy variant is the §8-scale soak (10k
//! users) and additionally bounds daemon-to-daemon chunk forwarding
//! against coordinator-relayed streaming on mix-phase latency (parity,
//! not superiority: on a one-core host the k× overlap has nothing to
//! overlap with — see `scale_curve_pr9` in `BENCH_net.json`).

use std::net::IpAddr;
use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_core::user::{Received, User};
use xrd_net::{launch_manifest, Manifest, Transport};

/// Mean duration (ms) of the named span over the given rounds.
fn mean_span_ms(stats: &xrd_obs::Snapshot, name: &str, rounds: &[u64]) -> f64 {
    let durs: Vec<f64> = stats
        .spans
        .iter()
        .filter(|s| s.name == name && rounds.contains(&s.round))
        .map(|s| s.dur_us as f64 / 1000.0)
        .collect();
    if durs.is_empty() {
        return 0.0;
    }
    durs.iter().sum::<f64>() / durs.len() as f64
}

/// The soak body, parameterized by population size.
///
/// Shape: the smallest multi-chain k=3 deployment the topology admits
/// (chains must have k *distinct* servers and the manifest derives
/// `n_chains = n_servers`, §5.2.1) — 3 chains × 3 hops + 2 mailbox
/// shards = 11 real child processes.  Three rounds; in the middle
/// round 10% of the users churn offline (their stored covers submit
/// for them, §5.3.3) and return in the final round to drain a
/// two-round backlog.
///
/// Returns `(forwarded mix ms, streamed mix ms)` from one extra
/// comparison round per transport, for the caller to assert on (heavy)
/// or merely report (tier-1).
fn soak(n_users: usize, seed: u64) -> (f64, f64) {
    const ROUNDS: u64 = 3;
    let mut rng = StdRng::seed_from_u64(seed);
    let manifest = Manifest::single_host(
        "local",
        IpAddr::from([127, 0, 0, 1]),
        seed,
        3,   // servers (= chains)
        0.2, // fault fraction (sizing only; nobody misbehaves here)
        3,   // k
        2,   // mailbox shards
        0,   // OS-assigned ports
    );
    let netd = Path::new(env!("CARGO_BIN_EXE_xrd-netd"));
    let mut cluster = launch_manifest(&mut rng, &manifest, netd).expect("cluster launches");
    assert_eq!(cluster.n_processes(), 11, "3 chains × 3 hops + 2 shards");

    let mut deployment = cluster.connect().expect("coordinator connects");
    deployment.set_transport(Transport::Forwarded { chunk: 64 });
    let ell = deployment.topology().ell();

    // Population: the last 10% churn; the first half converse in
    // pairs.  The pairs sit outside the churn set so every queued chat
    // has an online recipient.
    let churned = n_users / 10;
    let churn_start = n_users - churned;
    let paired = (n_users / 2) & !1;
    assert!(
        paired <= churn_start,
        "pairs must not overlap the churn set"
    );
    let mut users: Vec<User> = (0..n_users).map(|_| User::new(&mut rng)).collect();
    for i in (0..paired).step_by(2) {
        let (a, b) = (users[i].pk(), users[i + 1].pk());
        users[i].start_conversation(b);
        users[i + 1].start_conversation(a);
    }

    let offline_round = 1u64; // covers stored in round 0 carry them
    for r in 0..ROUNDS {
        let round = deployment.round();
        assert_eq!(round, r);
        for user in &mut users[churn_start..] {
            user.online = round != offline_round;
        }
        for i in (0..paired).step_by(2) {
            users[i].queue_chat(format!("r{round} {i}→{}", i + 1).into_bytes());
            users[i + 1].queue_chat(format!("r{round} {}→{i}", i + 1).into_bytes());
        }

        let (report, fetched) = deployment
            .run_round(&mut rng, &mut users)
            .expect("round completes");

        // Zero loss at the protocol ledger: every user (online or
        // covered) contributed ℓ submissions, every chain survived,
        // everything mixed was delivered.
        assert!(report.failed_chains.is_empty(), "round {round}: {report:?}");
        assert!(
            report.aborted_chains.is_empty(),
            "round {round}: {report:?}"
        );
        assert_eq!(report.messages_mixed, n_users * ell, "round {round}");
        assert_eq!(report.delivered, n_users * ell, "round {round}");

        // Exact per-user accounting: ℓ entries per round fetched, the
        // churn backlog drained in full exactly once, offline users
        // fetched nothing.
        for (i, user) in users.iter().enumerate() {
            let got = fetched.get(&user.mailbox_id());
            if round == offline_round && i >= churn_start {
                assert!(got.is_none(), "offline user {i} fetched in round {round}");
                continue;
            }
            let got = got.unwrap_or_else(|| panic!("user {i} missing from round {round} fetch"));
            let backlog_rounds = if round == offline_round + 1 && i >= churn_start {
                2 // the churned round's ℓ plus this round's ℓ
            } else {
                1
            };
            assert_eq!(
                got.len(),
                backlog_rounds * ell,
                "user {i} round {round}: wrong entry count (loss or duplication)"
            );
            if i < paired {
                let partner = if i % 2 == 0 { i + 1 } else { i - 1 };
                let expect = format!("r{round} {partner}→{i}").into_bytes();
                let matches = got
                    .iter()
                    .filter(|r| matches!(r, Received::Chat { data, .. } if *data == expect))
                    .count();
                assert_eq!(
                    matches, 1,
                    "user {i} round {round}: chat delivered {matches}×"
                );
            }
        }
    }

    // Transport comparison: one more round per transport, same
    // (recovered) population, spans separated by round number.
    for user in &mut users {
        user.online = true;
    }
    let fwd_round = deployment.round();
    deployment
        .run_round(&mut rng, &mut users)
        .expect("forwarded comparison round");
    deployment.set_transport(Transport::Streamed { chunk: 64 });
    let str_round = deployment.round();
    deployment
        .run_round(&mut rng, &mut users)
        .expect("streamed comparison round");
    let stats = xrd_obs::global().snapshot();
    let fwd_ms = mean_span_ms(&stats, "round.mix", &[fwd_round]);
    let str_ms = mean_span_ms(&stats, "round.mix", &[str_round]);

    // Clean teardown: every child honors the wire Shutdown; zero
    // processes needed a kill.
    drop(deployment);
    assert_eq!(cluster.shutdown(), 0, "daemon(s) had to be killed");
    (fwd_ms, str_ms)
}

/// The tier-1 soak: small population, full protocol — 11 real child
/// processes, 3 rounds, 10% churn, exact accounting, clean teardown.
/// The forwarded-vs-streamed mix numbers are printed but not asserted:
/// at this batch size the difference is pipeline-overlap noise.
#[test]
fn multi_process_soak_with_churn_accounts_exactly() {
    let (fwd_ms, str_ms) = soak(300, 42);
    println!("mix phase at 300 users: forwarded {fwd_ms:.1} ms, streamed {str_ms:.1} ms");
}

/// The §8-scale soak: 10 000 users against the same 11-process
/// deployment, plus a forwarded-vs-relayed mix-latency comparison.
///
/// Forwarding's k× transfer/compute overlap needs hops on separate
/// cores or hosts; with all 11 daemons timesharing one core, transfer
/// *is* compute and the direct hop-to-hop path measures near (often
/// slightly above) coordinator relaying — see `scale_curve_pr9` in
/// `BENCH_net.json`.  What is assertable on any host is that the
/// forwarded path carries a real batch end-to-end with exact
/// accounting (the soak body) at a cost commensurate with relaying —
/// a forwarded pipeline that serializes pathologically (per-chunk
/// round-trips, head-of-line stalls) fails the 2× bound.
#[test]
#[ignore = "minutes-long at 10k users; run with --ignored in the scale tier"]
fn soak_at_ten_thousand_users_with_transport_parity() {
    let (fwd_ms, str_ms) = soak(10_000, 43);
    println!("mix phase at 10k users: forwarded {fwd_ms:.1} ms, streamed {str_ms:.1} ms");
    assert!(
        fwd_ms < str_ms * 2.0,
        "daemon-to-daemon forwarding ({fwd_ms:.1} ms) should stay within 2x of \
         coordinator-relayed streaming ({str_ms:.1} ms); a bigger gap means the \
         forwarded pipeline is serializing"
    );
}
