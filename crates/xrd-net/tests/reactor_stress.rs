//! Connection-scalability acceptance tests for the event-driven
//! reactors, daemon side and client side: one `MixServerDaemon`
//! holding ≥1000 concurrent submitter connections on O(1) I/O threads,
//! connection churn that leaves the daemon's thread count flat, and a
//! 10 000-user client swarm driven from a single calling thread.
//!
//! These tests live alone in this binary on purpose: they assert on
//! `/proc/self/status` thread counts, and sibling tests spawning
//! daemons of their own would perturb the accounting.  A shared lock
//! additionally serializes them against each other.

use std::io::{BufRead, Write};
use std::net::TcpStream;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_mixnet::chain_keys::{generate_chain_keys, rotate_inner_keys};
use xrd_net::codec::Frame;
use xrd_net::swarm::reactor::{drive_sessions, raise_nofile_limit, DriveConfig, SubmitSession};
use xrd_net::swarm::sealed_submissions;
use xrd_net::{Conn, MixServerDaemon};

/// Serializes the thread-count-sensitive tests.
static THREAD_ACCOUNTING: Mutex<()> = Mutex::new(());

/// Threads in this process right now (`None` off Linux).
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Test-thread scheduling in the harness can add a couple of parked
/// threads between two samples; what we rule out is O(clients).
const THREAD_SLACK: usize = 8;

/// The acceptance bar: one mix daemon, 1000 submitter connections all
/// open (and then all with a request in flight) at once, every
/// submission verified and accepted — without the daemon's thread
/// count moving.  The pre-reactor daemon spawned one thread per
/// connection and sat near 1000 extra threads at this point.
#[test]
fn one_daemon_serves_1000_concurrent_submitters_on_o1_io_threads() {
    let _guard = THREAD_ACCOUNTING.lock().unwrap();
    const N: usize = 1000;
    let round = 0u64;
    let mut rng = StdRng::seed_from_u64(17);
    let (mut secrets, mut public) = generate_chain_keys(&mut rng, 3, 0);
    rotate_inner_keys(&mut rng, &mut secrets, &mut public, round);
    let daemon = MixServerDaemon::spawn("127.0.0.1:0", secrets.remove(0), public.clone(), 7)
        .expect("daemon spawns");
    let addr = daemon.addr();

    let mut control = Conn::connect(addr).expect("control connects");
    control
        .request_ok(&Frame::OpenRound { round })
        .expect("window opens");

    let submissions = sealed_submissions(&mut rng, &public, round, N);
    let baseline = process_threads();

    // Open every connection before any submission: the whole
    // population is concurrently connected.
    let mut conns: Vec<Conn> = (0..N)
        .map(|_| Conn::connect(addr).expect("submitter connects"))
        .collect();
    let with_conns_open = process_threads();

    // Pipeline one submission per connection: fire them all, then
    // collect every acknowledgement — all 1000 connections have a
    // request in flight at once.
    for (conn, submission) in conns.iter_mut().zip(&submissions) {
        conn.send(&Frame::Submit {
            round,
            submission: submission.clone(),
        })
        .expect("submit sends");
    }
    let with_requests_in_flight = process_threads();
    for (i, conn) in conns.iter_mut().enumerate() {
        match conn.recv().expect("ack arrives") {
            Frame::Ok => {}
            other => panic!("submission {i} not accepted: {other:?}"),
        }
    }

    // The daemon's own statement: all 1000 distinct submissions landed
    // in the canonical batch.
    match control
        .request(&Frame::CloseSubmissions { round })
        .expect("window closes")
    {
        Frame::BatchDigest { count, .. } => assert_eq!(count, N as u64),
        other => panic!("expected BatchDigest, got {other:?}"),
    }

    if let (Some(b), Some(o), Some(f)) = (baseline, with_conns_open, with_requests_in_flight) {
        assert!(
            o <= b + THREAD_SLACK,
            "opening {N} connections grew threads {b} -> {o}: I/O threading is O(clients)"
        );
        assert!(
            f <= b + THREAD_SLACK,
            "{N} in-flight requests grew threads {b} -> {f}: I/O threading is O(clients)"
        );
    }
}

/// The client-side counterpart of the acceptance bar above, at §8
/// scale: ten thousand emulated users — every one a real verified
/// submission over its own TCP connection, the whole population
/// concurrently connected before a single request goes out — driven to
/// completion by [`drive_sessions`] on the *calling* thread, with the
/// process's thread count flat.  The pre-reactor swarm needed a worker
/// thread per concurrent submitter.
///
/// The daemon runs as a real `xrd-netd` child process: the load
/// generator is measured alone (one descriptor and zero threads per
/// user on the client side), exactly as it would face a remote
/// deployment.
#[test]
fn ten_thousand_user_reactor_runs_on_the_calling_thread() {
    let _guard = THREAD_ACCOUNTING.lock().unwrap();
    const N: usize = 10_000;
    let round = 0u64;
    let mut rng = StdRng::seed_from_u64(21);
    let (mut secrets, mut public) = generate_chain_keys(&mut rng, 3, 0);
    rotate_inner_keys(&mut rng, &mut secrets, &mut public, round);

    let config_dir =
        std::env::temp_dir().join(format!("xrd-reactor-stress-{}", std::process::id()));
    std::fs::create_dir_all(&config_dir).expect("scratch dir");
    let config_path = config_dir.join("hop.cfg");
    std::fs::write(
        &config_path,
        xrd_net::codec::encode_server_config(&secrets.remove(0), &public),
    )
    .expect("config writes");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_xrd-netd"))
        .arg("mix")
        .arg("--config")
        .arg(&config_path)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("xrd-netd child spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr: std::net::SocketAddr = loop {
        let line = lines
            .next()
            .expect("daemon announces before exiting")
            .expect("announcement reads");
        if let Some(rest) = line.strip_prefix("LISTENING ") {
            break rest.trim().parse().expect("announced address parses");
        }
    };
    std::thread::spawn(move || for _line in lines {});

    let mut control = Conn::connect(addr).expect("control connects");
    control
        .request_ok(&Frame::OpenRound { round })
        .expect("window opens");

    let submissions = sealed_submissions(&mut rng, &public, round, N);
    let sessions: Vec<SubmitSession> = submissions
        .into_iter()
        .map(|submission| SubmitSession::new(vec![(addr, Frame::Submit { round, submission })]))
        .collect();

    let got = raise_nofile_limit(N as u64 + 512);
    assert!(
        got >= N as u64 + 64,
        "cannot hold {N} concurrent connections (RLIMIT_NOFILE {got})"
    );
    let baseline = process_threads();
    let outcome = drive_sessions(
        sessions,
        &DriveConfig {
            connect_first: true,
            ..Default::default()
        },
    )
    .expect("reactor runs");
    let after = process_threads();

    assert_eq!(
        outcome.completed,
        N,
        "first failures: {:?}",
        &outcome.failed[..outcome.failed.len().min(3)]
    );
    assert!(outcome.sessions.iter().all(|s| s.acknowledged() == 1));
    if let (Some(b), Some(a)) = (baseline, after) {
        assert!(
            a <= b + THREAD_SLACK,
            "client reactor spawned threads: {b} -> {a} — the swarm must \
             drive all {N} users from the calling thread"
        );
    }

    // The daemon's statement: every one of the 10k submissions was
    // verified into the canonical batch.
    match control
        .request(&Frame::CloseSubmissions { round })
        .expect("window closes")
    {
        Frame::BatchDigest { count, .. } => assert_eq!(count, N as u64),
        other => panic!("expected BatchDigest, got {other:?}"),
    }

    let _ = control.send(&Frame::Shutdown);
    child.wait().expect("daemon child exits");
    let _ = std::fs::remove_dir_all(&config_dir);
}

/// §"connection churn": clients that connect, dribble half a
/// submission frame and vanish — wave after wave — must leave the
/// daemon serving, and its thread count flat.  A reconnecting client
/// then completes the round's window normally.
#[test]
fn churned_connections_leave_daemon_serving_and_thread_count_flat() {
    let _guard = THREAD_ACCOUNTING.lock().unwrap();
    let round = 0u64;
    let mut rng = StdRng::seed_from_u64(18);
    let (mut secrets, mut public) = generate_chain_keys(&mut rng, 3, 0);
    rotate_inner_keys(&mut rng, &mut secrets, &mut public, round);
    let daemon = MixServerDaemon::spawn("127.0.0.1:0", secrets.remove(0), public.clone(), 9)
        .expect("daemon spawns");
    let addr = daemon.addr();

    let mut control = Conn::connect(addr).expect("control connects");
    control
        .request_ok(&Frame::OpenRound { round })
        .expect("window opens");

    let subs = sealed_submissions(&mut rng, &public, round, 2);
    let partial = Frame::Submit {
        round,
        submission: subs[0].clone(),
    }
    .encode();
    let baseline = process_threads();

    // Three waves of 100 connections that each die mid-frame.
    for wave in 0..3 {
        let mut doomed = Vec::with_capacity(100);
        for i in 0..100 {
            let mut stream = TcpStream::connect(addr).expect("churn client connects");
            stream
                .write_all(&partial[..partial.len() / 2])
                .unwrap_or_else(|e| panic!("wave {wave} client {i} write: {e}"));
            doomed.push(stream);
        }
        drop(doomed); // every socket closes with a frame half-sent
    }

    // The daemon is still serving: a well-behaved reconnect completes.
    let mut survivor = Conn::connect(addr).expect("reconnect after churn");
    survivor
        .request_ok(&Frame::Submit {
            round,
            submission: subs[1].clone(),
        })
        .expect("post-churn submission accepted");

    // Only the completed submission is in the batch; the 300 dribbled
    // half-frames left nothing behind.
    match control
        .request(&Frame::CloseSubmissions { round })
        .expect("window closes")
    {
        Frame::BatchDigest { count, .. } => assert_eq!(count, 1),
        other => panic!("expected BatchDigest, got {other:?}"),
    }

    if let (Some(b), Some(after)) = (baseline, process_threads()) {
        assert!(
            after <= b + THREAD_SLACK,
            "300 churned connections grew threads {b} -> {after}"
        );
    }
}

/// The handler-offload acceptance bar: while a large hop's crypto is
/// in flight on the daemon's worker pool, the reactor thread keeps
/// serving — a submission fired mid-hop on another connection is
/// verified and acknowledged long before the hop's response lands.
/// The pre-offload daemon ran `MixBatch` crypto inline on the reactor
/// thread, so the submission would have waited out the whole hop.
///
/// The O(1)-thread assertion is adjusted for the offload: the daemon
/// may now hold its fixed-size worker pool (≤ 4 threads, spawned
/// lazily at the first hop) plus transient scoped hop workers — still
/// O(1) in the number of clients.
#[test]
fn submissions_served_while_hop_crypto_in_flight() {
    let _guard = THREAD_ACCOUNTING.lock().unwrap();
    const N: usize = 1000;
    let mut rng = StdRng::seed_from_u64(19);
    let (mut secrets, mut public) = generate_chain_keys(&mut rng, 3, 0);
    rotate_inner_keys(&mut rng, &mut secrets, &mut public, 0);
    let daemon = MixServerDaemon::spawn("127.0.0.1:0", secrets.remove(0), public.clone(), 13)
        .expect("daemon spawns");
    let addr = daemon.addr();
    let baseline = process_threads();

    // Fill round 0's batch.
    let mut control = Conn::connect(addr).expect("control connects");
    control
        .request_ok(&Frame::OpenRound { round: 0 })
        .expect("window opens");
    let submissions = sealed_submissions(&mut rng, &public, 0, N);
    // Sealed for round 1: what the mid-hop submitters send (the PoK
    // binds the round number).
    let extra = sealed_submissions(&mut rng, &public, 1, 2);
    for submission in &submissions[..N] {
        control
            .request_ok(&Frame::Submit {
                round: 0,
                submission: submission.clone(),
            })
            .expect("submission accepted");
    }
    let batch = match control
        .request(&Frame::CloseSubmissions { round: 0 })
        .and_then(|_| control.request(&Frame::GetBatch { round: 0 }))
        .expect("batch fetched")
    {
        Frame::SubmissionBatch { submissions, .. } => submissions,
        other => panic!("expected SubmissionBatch, got {other:?}"),
    };
    let entries: Vec<_> = batch.iter().map(|s| s.to_entry()).collect();

    // Open round 1's window so a submission can land *during* the hop.
    control
        .request_ok(&Frame::OpenRound { round: 1 })
        .expect("window reopens");

    // Fire the hop on one connection without reading its response…
    let hop_start = std::time::Instant::now();
    control
        .send(&Frame::MixBatch { round: 0, entries })
        .expect("hop fires");

    // …and submit on another connection while the hop is in flight.
    let mut submitter = Conn::connect(addr).expect("submitter connects");
    let submit_start = std::time::Instant::now();
    submitter
        .request_ok(&Frame::Submit {
            round: 1,
            submission: extra[0].clone(),
        })
        .expect("mid-hop submission accepted");
    let submit_elapsed = submit_start.elapsed();

    let threads_mid_hop = process_threads();

    // Collect the hop.
    match control.recv().expect("hop response") {
        Frame::HopOutput { outputs, .. } => assert_eq!(outputs.len(), N),
        other => panic!("expected HopOutput, got {other:?}"),
    }
    let hop_elapsed = hop_start.elapsed();

    assert!(
        submit_elapsed < hop_elapsed / 2,
        "submission waited out the hop: submit {submit_elapsed:?} vs hop {hop_elapsed:?} \
         — MixBatch crypto is blocking the reactor thread"
    );

    if let (Some(b), Some(mid)) = (baseline, threads_mid_hop) {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Worker pool (≤ 4) + transient scoped hop workers (≤ cores),
        // never O(clients).
        assert!(
            mid <= b + 4 + cores + THREAD_SLACK,
            "hop offload grew threads {b} -> {mid} (pool should be fixed-size)"
        );
    }

    // The streamed path overlaps the same way: submissions interleave
    // with the chunk stream of the *next* hop.
    let stream = xrd_net::codec::ChunkedBatch::build(
        0,
        &batch.iter().map(|s| s.to_entry()).collect::<Vec<_>>(),
        64,
    );
    let (head, tail) = stream.frames().split_at(stream.frames().len() / 2);
    for bytes in head {
        control.send_encoded(bytes).expect("chunk sends");
    }
    let submit_start = std::time::Instant::now();
    // A fresh submission between two chunks of an in-flight stream.
    submitter
        .request_ok(&Frame::Submit {
            round: 1,
            submission: extra[1].clone(),
        })
        .expect("mid-stream submission accepted");
    let mid_stream_submit = submit_start.elapsed();
    for bytes in tail {
        control.send_encoded(bytes).expect("chunk sends");
    }
    loop {
        match control.recv().expect("stream response") {
            Frame::HopOutputStart { .. } | Frame::HopOutputChunk { .. } => {}
            Frame::HopOutputEnd { .. } => break,
            other => panic!("expected hop output stream, got {other:?}"),
        }
    }
    assert!(
        mid_stream_submit < std::time::Duration::from_secs(2),
        "mid-stream submission stalled: {mid_stream_submit:?}"
    );
}
