//! The adversarial deployment harness: seeded fault-injection chaos
//! runs and byzantine-daemon localization tests.
//!
//! Three layers are under test together (see `docs/FAULTS.md`):
//!
//! * the [`FaultProxy`] wire layer — drops, delays, stalls and cut
//!   connections between the coordinator and honest daemons must be
//!   absorbed by deadlines + retry-with-reconnect, with **zero**
//!   convictions (nobody lied);
//! * the byzantine daemon modes — a server that lies in verification,
//!   equivocates its batch digest, or corrupts its hop output must be
//!   localized (convicted or suspected) by the dispute path while the
//!   round, wherever possible, still delivers;
//! * hardened round progress — an unrecoverable chain failure degrades
//!   the round ([`RoundReport::failed_chains`]) or surfaces as a typed
//!   [`RoundError`], never as a coordinator panic or hang.
//!
//! Every assertion message carries the seed so a failing schedule can
//! be replayed exactly.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use xrd_core::user::User;
use xrd_core::{DeploymentConfig, RoundError};
use xrd_mixnet::chain_keys::{generate_chain_keys, rotate_inner_keys};
use xrd_net::codec::{error_code, Frame};
use xrd_net::{
    launch_local_faulty_with, ByzantineMode, Conn, ConnTimeouts, DaemonHandle, Direction,
    FaultKind, FaultPlan, FaultRule, MailboxDaemon, MixServerDaemon, RemoteDeployment, RetryPolicy,
    SubmissionPolicy,
};
use xrd_topology::{Beacon, Topology};

/// Deadlines tight enough that an injected stall or drop is detected
/// in well under a second.
fn fast_timeouts() -> ConnTimeouts {
    ConnTimeouts {
        connect: Duration::from_secs(2),
        read: Duration::from_millis(700),
        write: Duration::from_secs(2),
    }
}

fn fast_retry() -> RetryPolicy {
    // Every proxy carries its own copy of the fault schedule, so a rule
    // on the mix frame can fire once per hop, and a whole-path mix
    // retry restarts from hop 0: with k=3 hops and up to two rules, a
    // chain may need 2·3 failed passes before a clean one.
    RetryPolicy {
        attempts: 8,
        base_backoff: Duration::from_millis(10),
    }
}

/// Wire tag byte for a frame name (the same mapping `FaultPlan::parse`
/// uses for `tag=` keys).
fn tag(name: &str) -> u8 {
    (0..=u8::MAX)
        .find(|&t| Frame::tag_name(t) == Some(name))
        .unwrap_or_else(|| panic!("unknown frame name {name}"))
}

/// Users 0 and 1 conversing (one chat queued from 0 to 1), the rest on
/// cover traffic.
fn users_with_chat(rng: &mut StdRng, n: usize) -> Vec<User> {
    let mut users: Vec<User> = (0..n).map(|_| User::new(rng)).collect();
    let (a, b) = (users[0].pk(), users[1].pk());
    users[0].start_conversation(b);
    users[1].start_conversation(a);
    users[0].queue_chat(b"through the storm".to_vec());
    users
}

/// A deployment like `launch_local`, but with chosen hops replaced by
/// byzantine daemons (`byz` holds `(chain, hop, mode)`) and fast
/// coordinator deadlines.
fn launch_byzantine(
    rng: &mut StdRng,
    config: &DeploymentConfig,
    byz: &[(usize, usize, ByzantineMode)],
) -> (Vec<Vec<DaemonHandle>>, Vec<DaemonHandle>, RemoteDeployment) {
    let beacon = Beacon::from_u64(config.seed);
    let k = config.chain_len.expect("explicit chain length");
    let topo = Topology::build_with(&beacon, 0, config.n_servers, config.n_servers, k, config.f);

    let mut mix = Vec::new();
    let mut chain_addrs = Vec::new();
    let mut chain_keys = Vec::new();
    for c in 0..topo.n_chains() {
        let (mut secrets, mut public) = generate_chain_keys(rng, k, c as u64);
        rotate_inner_keys(rng, &mut secrets, &mut public, 0);
        let mut daemons = Vec::new();
        let mut addrs = Vec::new();
        for (hop, server_secrets) in secrets.into_iter().enumerate() {
            let mode = byz
                .iter()
                .find(|&&(bc, bh, _)| bc == c && bh == hop)
                .map(|&(_, _, m)| m);
            let daemon = match mode {
                None => MixServerDaemon::spawn(
                    "127.0.0.1:0",
                    server_secrets,
                    public.clone(),
                    rng.next_u64(),
                ),
                Some(mode) => MixServerDaemon::spawn_byzantine(
                    "127.0.0.1:0",
                    server_secrets,
                    public.clone(),
                    rng.next_u64(),
                    mode,
                ),
            }
            .expect("daemon spawns");
            addrs.push(daemon.addr());
            daemons.push(daemon);
        }
        mix.push(daemons);
        chain_addrs.push(addrs);
        chain_keys.push(public);
    }

    let mut mailboxes = Vec::new();
    let mut mailbox_addrs = Vec::new();
    for shard in 0..config.n_mailbox_shards {
        let daemon = MailboxDaemon::spawn("127.0.0.1:0", shard, config.n_mailbox_shards)
            .expect("mailbox spawns");
        mailbox_addrs.push(daemon.addr());
        mailboxes.push(daemon);
    }

    let deployment = RemoteDeployment::connect_with(
        topo,
        chain_addrs,
        chain_keys,
        mailbox_addrs,
        fast_timeouts(),
        fast_retry(),
    )
    .expect("deployment connects");
    (mix, mailboxes, deployment)
}

fn shutdown_all(mix: &mut [Vec<DaemonHandle>], mailboxes: &mut [DaemonHandle]) {
    for chain in mix.iter_mut() {
        for d in chain {
            d.shutdown();
        }
    }
    for d in mailboxes {
        d.shutdown();
    }
}

/// The flagship chaos sweep: 20 seeded fault schedules against an
/// all-honest multi-chain deployment.  Transient wire faults (drops,
/// delays, cut connections) on round-critical frames must be absorbed
/// by deadline + retry: the round completes with nothing degraded,
/// nobody convicted, nobody suspected, and the queued chat delivered.
fn chaos_sweep(seeds: std::ops::Range<u64>) {
    // Frames whose loss or delay exercises every phase of the round;
    // all are recoverable because the daemons' round handlers are
    // idempotent under retry.
    let tags = [
        "CloseSubmissions",
        "BatchDigest",
        "GetBatch",
        "SubmissionBatch",
        "MixBatch",
        "HopOutput",
        "VerifyHop",
        "VerifyResult",
        "RevealInnerKey",
        "InnerKeyReveal",
    ];
    let kinds = [FaultKind::Drop, FaultKind::Delay, FaultKind::Disconnect];
    for seed in seeds {
        let mut rng = StdRng::seed_from_u64(0xC4405 + seed);
        let mut plan = FaultPlan::new(seed);
        for _ in 0..1 + rng.gen_range(0..2) {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let dir = match rng.gen_range(0..3) {
                0 => Direction::Up,
                1 => Direction::Down,
                _ => Direction::Both,
            };
            plan = plan.with(
                FaultRule::new(kind)
                    .tag(tag(tags[rng.gen_range(0..tags.len())]))
                    .skip(rng.gen_range(0..2))
                    .ms(150)
                    .dir(dir),
            );
        }

        let config = DeploymentConfig::small(3, 3);
        let (mut cluster, _proxies, mut deployment) =
            launch_local_faulty_with(&mut rng, &config, &plan, fast_timeouts(), fast_retry())
                .unwrap_or_else(|e| panic!("seed {seed}: launch failed: {e}"));
        assert!(deployment.topology().n_chains() >= 2, "multi-chain");
        let ell = deployment.topology().ell();
        let mut users = users_with_chat(&mut rng, 6);

        let (report, fetched) = deployment
            .run_round(&mut rng, &mut users)
            .unwrap_or_else(|e| panic!("seed {seed}: round failed under {plan:?}: {e}"));
        assert!(
            report.failed_chains.is_empty(),
            "seed {seed}: chains failed under {plan:?}: {:?}",
            report.failed_chains
        );
        assert!(
            report.convicted_by_chain.is_empty(),
            "seed {seed}: false conviction under {plan:?}: {:?}",
            report.convicted_by_chain
        );
        assert!(
            report.suspected_by_chain.is_empty(),
            "seed {seed}: false suspicion under {plan:?}: {:?}",
            report.suspected_by_chain
        );
        assert!(report.aborted_chains.is_empty(), "seed {seed}: aborts");
        assert_eq!(
            report.delivered,
            6 * ell,
            "seed {seed}: delivery shrank under {plan:?}"
        );
        assert!(
            fetched[&users[1].mailbox_id()]
                .iter()
                .any(|r| matches!(r, xrd_core::Received::Chat { data, .. }
                    if data == b"through the storm")),
            "seed {seed}: the queued chat was lost"
        );
        cluster.shutdown();
    }
}

#[test]
fn chaos_sweep_seeds_0_to_10() {
    chaos_sweep(0..10);
}

#[test]
fn chaos_sweep_seeds_10_to_20() {
    chaos_sweep(10..20);
}

/// A server that rejects valid attestations (and doubles down under
/// oath) is convicted through the dispute path and the round still
/// delivers in full — the liar is excluded instead of the round
/// aborting.  The dispute counters are then read back over the wire
/// from a live daemon, the way an operator would.
#[test]
fn lying_verifier_is_convicted_and_round_delivers() {
    let mut rng = StdRng::seed_from_u64(71);
    let config = DeploymentConfig::small(3, 3);
    let (mut mix, mut mailboxes, mut deployment) =
        launch_byzantine(&mut rng, &config, &[(0, 1, ByzantineMode::LieVerify)]);
    let ell = deployment.topology().ell();
    let mut users = users_with_chat(&mut rng, 6);

    let (report, fetched) = deployment
        .run_round(&mut rng, &mut users)
        .expect("round completes despite the liar");
    assert_eq!(
        report.convicted_by_chain.get(&0),
        Some(&vec![1]),
        "the lying verifier is localized: {:?}",
        report.convicted_by_chain
    );
    assert_eq!(
        report.convicted_by_chain.len(),
        1,
        "no other chain convicts anyone"
    );
    assert!(report.failed_chains.is_empty(), "no chain fails");
    assert!(report.aborted_chains.is_empty(), "no chain aborts");
    assert_eq!(report.delivered, 6 * ell, "the round delivers in full");
    assert!(
        fetched[&users[1].mailbox_id()]
            .iter()
            .any(|r| matches!(r, xrd_core::Received::Chat { data, .. }
                if data == b"through the storm")),
        "the chat still lands"
    );

    // Acceptance: the dispute counters are visible in a live stats
    // scrape of a daemon that took part (same wire path as
    // `xrd-netd stats ADDR`).
    let mut conn = Conn::connect(mix[0][0].addr()).expect("scrape connects");
    match conn.request(&Frame::StatsRequest).expect("scrape answers") {
        Frame::StatsReport { snapshot } => {
            assert!(snapshot.counter("dispute.opened") >= 1, "dispute.opened");
            assert!(
                snapshot.counter("dispute.convicted") >= 1,
                "dispute.convicted"
            );
            assert!(
                snapshot.counter("dispute.evidence.served") >= 1,
                "witnesses served evidence"
            );
        }
        other => panic!("expected StatsReport, got {other:?}"),
    }
    shutdown_all(&mut mix, &mut mailboxes);
}

/// A server that equivocates its batch digest is outvoted by the
/// honest majority and recorded as a suspect — never convicted, since
/// a dropped submission is indistinguishable from equivocation — and
/// the round proceeds on the majority batch.
#[test]
fn equivocating_digest_is_suspected_and_majority_continues() {
    let mut rng = StdRng::seed_from_u64(72);
    let config = DeploymentConfig::small(3, 3);
    let (mut mix, mut mailboxes, mut deployment) = launch_byzantine(
        &mut rng,
        &config,
        &[(0, 2, ByzantineMode::EquivocateDigest)],
    );
    let ell = deployment.topology().ell();
    let mut users = users_with_chat(&mut rng, 6);

    let (report, fetched) = deployment
        .run_round(&mut rng, &mut users)
        .expect("majority carries the round");
    assert_eq!(
        report.suspected_by_chain.get(&0),
        Some(&vec![2]),
        "the equivocator is the suspect: {:?}",
        report.suspected_by_chain
    );
    assert!(
        report.convicted_by_chain.is_empty(),
        "digest dissent alone never convicts: {:?}",
        report.convicted_by_chain
    );
    assert!(report.failed_chains.is_empty());
    assert_eq!(report.delivered, 6 * ell, "majority batch delivers fully");
    assert!(fetched[&users[1].mailbox_id()]
        .iter()
        .any(|r| matches!(r, xrd_core::Received::Chat { data, .. }
                if data == b"through the storm")),);
    shutdown_all(&mut mix, &mut mailboxes);
}

/// A server that corrupts its hop output (a content swap its aggregate
/// attestation cannot cover for) is localized; the rest of the
/// deployment still delivers its round.
#[test]
fn corrupting_hop_is_localized_and_other_chains_deliver() {
    let mut rng = StdRng::seed_from_u64(73);
    let config = DeploymentConfig::small(3, 3);
    let (mut mix, mut mailboxes, mut deployment) =
        launch_byzantine(&mut rng, &config, &[(0, 0, ByzantineMode::CorruptHop)]);
    let mut users = users_with_chat(&mut rng, 8);

    let result = deployment.run_round(&mut rng, &mut users);
    let (report, _) = result.expect("the deployment survives one corrupt chain");
    assert!(
        report
            .convicted_by_chain
            .get(&0)
            .is_some_and(|c| c.contains(&0))
            || report.failed_chains.contains(&0)
            || report.aborted_chains.contains(&0),
        "the corrupting hop is localized or its chain visibly fails: {report:?}"
    );
    // Whatever happened to chain 0, no honest chain is blamed.
    for (chain, convicted) in &report.convicted_by_chain {
        assert_eq!(*chain, 0, "only chain 0 convicts anyone: {convicted:?}");
    }
    assert!(
        report.delivered > 0,
        "the other chains still deliver their mail"
    );
    shutdown_all(&mut mix, &mut mailboxes);
}

/// Stall injection: a proxy that wedges mid-round on the mix frame is
/// caught by the read deadline and healed by retry-with-reconnect —
/// the round completes in bounded time with full delivery, and the
/// retry shows up in the metrics.
#[test]
fn stalled_mix_frame_times_out_and_retries() {
    let mut rng = StdRng::seed_from_u64(74);
    // Every proxy stalls the first MixBatch it sees, indefinitely; the
    // reconnect after the read deadline gets a fresh (spent) plan
    // state, so the retry sails through.
    let plan = FaultPlan::new(74).with(
        FaultRule::new(FaultKind::Stall)
            .tag(tag("MixBatch"))
            .dir(Direction::Up),
    );
    let config = DeploymentConfig::small(3, 3);
    let (mut cluster, _proxies, mut deployment) = launch_local_faulty_with(
        &mut rng,
        &config,
        &plan,
        fast_timeouts(),
        RetryPolicy {
            attempts: 5,
            base_backoff: Duration::from_millis(10),
        },
    )
    .expect("cluster launches");
    let ell = deployment.topology().ell();
    let mut users = users_with_chat(&mut rng, 6);

    let started = Instant::now();
    let (report, _) = deployment
        .run_round(&mut rng, &mut users)
        .expect("stalls are healed by deadline + reconnect");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "recovery is deadline-bounded, not hang-until-killed"
    );
    assert!(report.failed_chains.is_empty(), "no chain fails");
    assert!(report.convicted_by_chain.is_empty(), "nobody lied");
    assert_eq!(report.delivered, 6 * ell);

    // The injected stalls and the retries that healed them are on the
    // books, scraped over the wire from a live daemon.
    let mut conn = Conn::connect(cluster.mix[0][0].addr()).expect("scrape connects");
    match conn.request(&Frame::StatsRequest).expect("scrape answers") {
        Frame::StatsReport { snapshot } => {
            assert!(
                snapshot.counter("fault.injected.stall") >= 1,
                "stalls were injected"
            );
            assert!(
                snapshot.counter("chain.mix_retries") >= 1,
                "the mix was retried"
            );
        }
        other => panic!("expected StatsReport, got {other:?}"),
    }
    cluster.shutdown();
}

/// A network that stays wedged past every retry is a typed
/// [`RoundError`], not a panic or a hang: with every chain's mix
/// permanently stalled the round fails as `AllChainsFailed` in bounded
/// time.
#[test]
fn permanently_stalled_deployment_fails_typed_not_hung() {
    let mut rng = StdRng::seed_from_u64(75);
    let plan = FaultPlan::new(75).with(
        FaultRule::new(FaultKind::Stall)
            .tag(tag("MixBatch"))
            .count(u32::MAX)
            .dir(Direction::Up),
    );
    let config = DeploymentConfig::small(3, 3);
    let (mut cluster, _proxies, mut deployment) = launch_local_faulty_with(
        &mut rng,
        &config,
        &plan,
        fast_timeouts(),
        RetryPolicy {
            attempts: 2,
            base_backoff: Duration::from_millis(10),
        },
    )
    .expect("cluster launches");
    let mut users = users_with_chat(&mut rng, 6);

    let started = Instant::now();
    let err = deployment
        .run_round(&mut rng, &mut users)
        .expect_err("a fully wedged deployment cannot complete a round");
    assert!(
        matches!(err, RoundError::AllChainsFailed { round: 0 }),
        "typed degradation, got: {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "failure is deadline-bounded"
    );
    cluster.shutdown();
}

/// Submission-window hardening: a connection that floods past its
/// quota is refused with [`error_code::QUOTA_EXCEEDED`] while other
/// connections (and the window itself) stay healthy.
#[test]
fn per_connection_quota_rejects_flood() {
    let mut rng = StdRng::seed_from_u64(76);
    let (mut secrets, mut public) = generate_chain_keys(&mut rng, 3, 0);
    rotate_inner_keys(&mut rng, &mut secrets, &mut public, 0);
    let daemon = MixServerDaemon::spawn_with_policy(
        "127.0.0.1:0",
        secrets.remove(0),
        public.clone(),
        76,
        SubmissionPolicy {
            max_per_conn: 2,
            max_pending: 1024,
        },
    )
    .expect("daemon spawns");

    let mut conn = Conn::connect(daemon.addr()).expect("connects");
    conn.request_ok(&Frame::OpenRound { round: 0 })
        .expect("window opens");
    for _ in 0..2 {
        let submission = xrd_mixnet::testutil::malicious_submission(&mut rng, &public, 0, 2);
        conn.request_ok(&Frame::Submit {
            round: 0,
            submission,
        })
        .expect("within quota");
    }
    let submission = xrd_mixnet::testutil::malicious_submission(&mut rng, &public, 0, 2);
    match conn.request(&Frame::Submit {
        round: 0,
        submission: submission.clone(),
    }) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, error_code::QUOTA_EXCEEDED),
        Err(xrd_net::NetError::Remote { code, .. }) => {
            assert_eq!(code, error_code::QUOTA_EXCEEDED)
        }
        other => panic!("expected a quota rejection, got {other:?}"),
    }

    // A fresh connection has its own quota; the window survived the
    // flood.
    let mut conn2 = Conn::connect(daemon.addr()).expect("connects");
    conn2
        .request_ok(&Frame::Submit {
            round: 0,
            submission,
        })
        .expect("other connections are unaffected");

    let mut daemon = daemon;
    daemon.shutdown();
}

/// Negative control: a corrupted frame between coordinator and an
/// honest daemon must never convict anyone.  The verdict byte of a
/// `VerifyResult` is flipped on the wire; strict canonical decoding
/// rejects the mangled frame, the coordinator classifies it as a
/// transport failure and re-asks, and the honest answer stands — no
/// dispute, no conviction.  (A decoded-but-false verdict is covered by
/// the evidence rule: a rejecting verifier whose own signed evidence
/// does not uphold the rejection is never convicted, see
/// `lying_verifier_is_convicted_and_round_delivers` for the
/// doubling-down counterpart.)
#[test]
fn corrupted_verify_result_convicts_nobody() {
    let mut rng = StdRng::seed_from_u64(77);
    // Flip a byte in the first VerifyResult answered by each daemon.
    let plan = FaultPlan::new(77).with(
        FaultRule::new(FaultKind::Corrupt)
            .tag(tag("VerifyResult"))
            .dir(Direction::Down),
    );
    let config = DeploymentConfig::small(3, 3);
    let (mut cluster, _proxies, mut deployment) =
        launch_local_faulty_with(&mut rng, &config, &plan, fast_timeouts(), fast_retry())
            .expect("cluster launches");
    let ell = deployment.topology().ell();
    let mut users = users_with_chat(&mut rng, 6);

    let (report, _) = deployment
        .run_round(&mut rng, &mut users)
        .expect("a flipped verdict is not fatal");
    assert!(
        report.convicted_by_chain.is_empty(),
        "wire corruption must never convict an honest server: {:?}",
        report.convicted_by_chain
    );
    assert!(report.failed_chains.is_empty(), "no chain fails");
    assert_eq!(report.delivered, 6 * ell, "full delivery");
    cluster.shutdown();
}
