//! The deployment-level cross-chain audit: all `n_chains × k` hop
//! proofs of a round folded into ONE batched multiscalar mul
//! (`verify_hops_batched_multi`) must be equivalent to auditing each
//! chain separately — accepting exactly when every per-chain audit
//! accepts, rejecting when any chain's proof is bad, and (via
//! `conclude_audited`'s per-hop re-check) never punishing an honest
//! chain for another chain's offense.

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_crypto::Scalar;
use xrd_mixnet::chain_keys::{generate_chain_keys, rotate_inner_keys, ChainPublicKeys};
use xrd_mixnet::client::Submission;
use xrd_mixnet::{verify_hops_batched, verify_hops_batched_multi, ChainAudit, HopRecord};
use xrd_net::codec::Frame;
use xrd_net::swarm::sealed_submissions;
use xrd_net::{ChainClient, Conn, DaemonHandle, MixPhase, MixServerDaemon};

const K: usize = 2;
const USERS: usize = 6;
const ROUND: u64 = 0;

/// One loopback chain: daemons, a connected client, and its bundle.
struct TestChain {
    // Held for their Drop (daemon shutdown).
    _daemons: Vec<DaemonHandle>,
    addrs: Vec<std::net::SocketAddr>,
    client: ChainClient,
    public: ChainPublicKeys,
}

fn launch_chain(rng: &mut StdRng, epoch: u64) -> TestChain {
    let (mut secrets, mut public) = generate_chain_keys(rng, K, epoch);
    rotate_inner_keys(rng, &mut secrets, &mut public, ROUND);
    let mut daemons = Vec::with_capacity(K);
    let mut addrs = Vec::with_capacity(K);
    for server_secrets in secrets {
        let daemon = MixServerDaemon::spawn("127.0.0.1:0", server_secrets, public.clone(), epoch)
            .expect("daemon spawns");
        addrs.push(daemon.addr());
        daemons.push(daemon);
    }
    let client = ChainClient::connect(&addrs, public.clone()).expect("client connects");
    TestChain {
        _daemons: daemons,
        addrs,
        client,
        public,
    }
}

/// Open the window, submit to every daemon (input agreement fan-out),
/// and run the mix with the audit deferred.
fn mix_deferred(rng: &mut StdRng, chain: &mut TestChain) -> (Vec<Submission>, MixPhase) {
    chain.client.open_round(ROUND).expect("window opens");
    let subs = sealed_submissions(rng, &chain.public, ROUND, USERS);
    for addr in &chain.addrs {
        let mut conn = Conn::connect(*addr).expect("submitter connects");
        for sub in &subs {
            conn.request_ok(&Frame::Submit {
                round: ROUND,
                submission: sub.clone(),
            })
            .expect("submission accepted");
        }
    }
    let batch = chain.client.close_and_agree(ROUND).expect("agreement");
    assert_eq!(batch.len(), USERS);
    let phase = chain
        .client
        .mix_round_deferred(ROUND, &batch)
        .expect("mix runs");
    (batch, phase)
}

#[test]
fn multi_chain_audit_equivalent_to_per_chain() {
    let mut rng = StdRng::seed_from_u64(4096);

    // Two independent chains, each mixed through the wire with the
    // coordinator audit deferred.
    let mut chains: Vec<TestChain> = (0..2).map(|c| launch_chain(&mut rng, c as u64)).collect();
    let mut pendings = Vec::new();
    for chain in chains.iter_mut() {
        let (_, phase) = mix_deferred(&mut rng, chain);
        match phase {
            MixPhase::AwaitingAudit(pending) => pendings.push(pending),
            MixPhase::Done(_) => panic!("clean mix must defer its audit"),
        }
    }

    // Per-chain audits and the single cross-chain audit must agree.
    let record_sets: Vec<Vec<HopRecord>> = pendings.iter().map(|p| p.records()).collect();
    for records in &record_sets {
        assert_eq!(records.len(), K, "one record per hop");
    }
    let per_chain: Vec<bool> = chains
        .iter()
        .zip(&record_sets)
        .map(|(chain, records)| verify_hops_batched(&chain.public, ROUND, records))
        .collect();
    assert_eq!(per_chain, vec![true, true]);

    let audits: Vec<ChainAudit> = chains
        .iter()
        .zip(&record_sets)
        .map(|(chain, records)| ChainAudit {
            public: &chain.public,
            round: ROUND,
            hops: records,
        })
        .collect();
    assert!(
        verify_hops_batched_multi(&audits),
        "cross-chain audit must accept when every per-chain audit accepts"
    );

    // Tamper with ONE chain's proof: the combined audit must reject,
    // matching the per-chain verdicts (chain 1 bad, chain 0 still good).
    let mut tampered_sets = record_sets.clone();
    tampered_sets[1][0].proof.response = tampered_sets[1][0].proof.response.add(&Scalar::ONE);
    let tampered_audits: Vec<ChainAudit> = chains
        .iter()
        .zip(&tampered_sets)
        .map(|(chain, records)| ChainAudit {
            public: &chain.public,
            round: ROUND,
            hops: records,
        })
        .collect();
    assert!(
        !verify_hops_batched_multi(&tampered_audits),
        "one bad proof anywhere must fail the combined audit"
    );
    assert!(verify_hops_batched(
        &chains[0].public,
        ROUND,
        &tampered_sets[0]
    ));
    assert!(!verify_hops_batched(
        &chains[1].public,
        ROUND,
        &tampered_sets[1]
    ));

    // Conclude both chains under a FAILED combined verdict: the
    // per-hop re-check must clear the honest chains (their own proofs
    // are valid — the simulated offender is "another chain") and both
    // must still deliver every message.
    drop(record_sets);
    drop(tampered_sets);
    for (chain, pending) in chains.iter_mut().zip(pendings) {
        let outcome = chain
            .client
            .conclude_audited(ROUND, pending, false)
            .expect("conclusion runs");
        assert!(
            outcome.misbehaving_servers.is_empty(),
            "honest chain must be cleared by per-hop re-verification"
        );
        assert_eq!(
            outcome.delivered.len(),
            USERS,
            "cleared chain still delivers"
        );
    }
}
