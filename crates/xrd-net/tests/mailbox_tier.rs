//! The mailbox tier over real TCP: cursor pagination and ack
//! idempotence on the wire, delivery-batch dedup under retry,
//! persistent shards surviving daemon restarts, the offline-user
//! retention regression (deliver round r, fetch at r+3), and a
//! seeded churn-chaos sweep where faulty mailbox connections must
//! never lose or duplicate a message.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xrd_core::user::{Received, User};
use xrd_core::DeploymentConfig;
use xrd_mixnet::{MailboxMessage, MAILBOX_MSG_LEN};
use xrd_net::codec::{error_code, Frame};
use xrd_net::{
    launch_local, launch_local_with_mailbox_faults, Conn, ConnTimeouts, Direction, FaultKind,
    FaultPlan, FaultRule, MailboxDaemon, NetError, RetryPolicy,
};

fn msg(mailbox: u8, fill: u8) -> MailboxMessage {
    MailboxMessage {
        mailbox: [mailbox; 32],
        sealed: vec![fill; MAILBOX_MSG_LEN - 32],
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xrd-mbtier-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Fetch one page over the wire.
fn page(
    conn: &mut Conn,
    mailbox: [u8; 32],
    cursor: u64,
    max: u32,
) -> (Vec<(u64, Vec<u8>)>, u64, u64) {
    match conn
        .request(&Frame::FetchPage {
            mailbox,
            cursor,
            max,
        })
        .expect("fetch answered")
    {
        Frame::MailboxPage {
            sealed,
            next_cursor,
            remaining,
        } => (sealed, next_cursor, remaining),
        other => panic!("expected MailboxPage, got {other:?}"),
    }
}

/// The paginated fetch contract over the wire: pages partition the
/// mailbox, re-reading a cursor is non-destructive, acks retire
/// exactly the prefix and are idempotent, and a fully-acked mailbox is
/// *empty* — not unknown.
#[test]
fn wire_pagination_and_ack_idempotence() {
    let daemon = MailboxDaemon::spawn("127.0.0.1:0", 0, 1).expect("daemon spawns");
    let mut conn = Conn::connect(daemon.addr()).expect("connects");

    let messages: Vec<MailboxMessage> = (0..5).map(|i| msg(1, i)).collect();
    conn.request_ok(&Frame::Deliver {
        round: 3,
        batch: 0,
        messages: messages.clone(),
    })
    .expect("delivery acknowledged");

    // Page size 2 walks 5 entries as 2 + 2 + 1.
    let (p0, c0, r0) = page(&mut conn, [1; 32], 0, 2);
    assert_eq!(
        p0,
        vec![
            (3, messages[0].sealed.clone()),
            (3, messages[1].sealed.clone())
        ]
    );
    assert_eq!((c0, r0), (2, 3));
    let (p1, c1, r1) = page(&mut conn, [1; 32], c0, 2);
    assert_eq!(
        p1,
        vec![
            (3, messages[2].sealed.clone()),
            (3, messages[3].sealed.clone())
        ]
    );
    assert_eq!((c1, r1), (4, 1));
    let (p2, c2, r2) = page(&mut conn, [1; 32], c1, 2);
    assert_eq!(p2, vec![(3, messages[4].sealed.clone())]);
    assert_eq!((c2, r2), (5, 0));

    // Non-destructive: the first page re-reads identically.
    assert_eq!(page(&mut conn, [1; 32], 0, 2).0, p0);

    // Ack the first three; cursor 0 now starts at entry 3.
    conn.request_ok(&Frame::FetchAck {
        mailbox: [1; 32],
        upto: 3,
    })
    .expect("ack acknowledged");
    let (tail, _, rem) = page(&mut conn, [1; 32], 0, 16);
    assert_eq!(
        tail,
        vec![
            (3, messages[3].sealed.clone()),
            (3, messages[4].sealed.clone())
        ]
    );
    assert_eq!(rem, 0);

    // Re-acking the same prefix is a no-op, not an error.
    conn.request_ok(&Frame::FetchAck {
        mailbox: [1; 32],
        upto: 3,
    })
    .expect("duplicate ack still Ok");
    assert_eq!(page(&mut conn, [1; 32], 0, 16).0, tail);

    // Fully acked: the mailbox is known-but-empty…
    conn.request_ok(&Frame::FetchAck {
        mailbox: [1; 32],
        upto: 5,
    })
    .expect("final ack");
    let (empty, _, rem) = page(&mut conn, [1; 32], 0, 16);
    assert!(empty.is_empty());
    assert_eq!(rem, 0);

    // …while a never-delivered mailbox is UNKNOWN_MAILBOX.
    match conn.request(&Frame::FetchPage {
        mailbox: [9; 32],
        cursor: 0,
        max: 16,
    }) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, error_code::UNKNOWN_MAILBOX),
        other => panic!("expected UNKNOWN_MAILBOX, got {other:?}"),
    }
}

/// A delivery batch retried after a lost acknowledgement (same round,
/// same batch id) is deduplicated: the daemon re-acks without storing
/// the copies, so ℓ-uniformity survives sender retries.
#[test]
fn retried_delivery_batch_is_not_stored_twice() {
    let daemon = MailboxDaemon::spawn("127.0.0.1:0", 0, 1).expect("daemon spawns");
    let mut conn = Conn::connect(daemon.addr()).expect("connects");

    let deliver = Frame::Deliver {
        round: 11,
        batch: 4,
        messages: vec![msg(2, 7), msg(2, 8)],
    };
    conn.request_ok(&deliver).expect("first delivery");
    conn.request_ok(&deliver).expect("retry re-acked");
    // A *different* batch id is new mail, not a retry.
    conn.request_ok(&Frame::Deliver {
        round: 11,
        batch: 5,
        messages: vec![msg(2, 9)],
    })
    .expect("next batch");

    let (entries, _, rem) = page(&mut conn, [2; 32], 0, 16);
    assert_eq!(
        entries,
        vec![
            (11, msg(2, 7).sealed),
            (11, msg(2, 8).sealed),
            (11, msg(2, 9).sealed),
        ],
        "retry must not duplicate, new batch must land"
    );
    assert_eq!(rem, 0);
}

/// A persistent shard daemon restarted on the same directory serves
/// everything it acknowledged before going down — including the ack
/// watermark, which a second restart also remembers.
#[test]
fn persistent_shard_survives_restart() {
    let dir = tmp("restart");
    let cfg = xrd_core::mailbox::LogStoreConfig::default();

    let mut daemon =
        MailboxDaemon::spawn_persistent("127.0.0.1:0", 0, 1, &dir, cfg).expect("spawns");
    let mut conn = Conn::connect(daemon.addr()).expect("connects");
    conn.request_ok(&Frame::Deliver {
        round: 7,
        batch: 0,
        messages: (0..3).map(|i| msg(4, i)).collect(),
    })
    .expect("delivery acknowledged");
    conn.request_ok(&Frame::Shutdown).expect("shutdown");
    daemon.wait();

    // First restart: every acknowledged entry is back, with its round.
    let mut daemon =
        MailboxDaemon::spawn_persistent("127.0.0.1:0", 0, 1, &dir, cfg).expect("respawns");
    let mut conn = Conn::connect(daemon.addr()).expect("reconnects");
    let (entries, _, rem) = page(&mut conn, [4; 32], 0, 16);
    assert_eq!(
        entries,
        (0..3).map(|i| (7, msg(4, i).sealed)).collect::<Vec<_>>()
    );
    assert_eq!(rem, 0);
    conn.request_ok(&Frame::FetchAck {
        mailbox: [4; 32],
        upto: 2,
    })
    .expect("ack acknowledged");
    conn.request_ok(&Frame::Shutdown).expect("shutdown");
    daemon.wait();

    // Second restart: the ack watermark survived too.
    let daemon =
        MailboxDaemon::spawn_persistent("127.0.0.1:0", 0, 1, &dir, cfg).expect("respawns again");
    let mut conn = Conn::connect(daemon.addr()).expect("reconnects");
    let (entries, _, _) = page(&mut conn, [4; 32], 0, 16);
    assert_eq!(entries, vec![(7, msg(4, 2).sealed)]);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The offline-retention regression from the issue: mail delivered in
/// round r to a user who then stays offline must still be fetchable —
/// and decryptable — at round r+3.  Under the old drain-everything
/// fetch this mail was either lost (destructive read) or came back
/// [`Received::Opaque`] (opened with the wrong round's nonce).
#[test]
fn offline_user_mail_survives_to_round_plus_three() {
    let mut rng = StdRng::seed_from_u64(42);
    let config = DeploymentConfig::small(2, 2);
    let (mut cluster, mut deployment) = launch_local(&mut rng, &config).expect("cluster launches");
    let ell = deployment.topology().ell();

    let n_users = 4;
    let mut users: Vec<User> = (0..n_users).map(|_| User::new(&mut rng)).collect();
    let claire = 3; // cover-traffic-only; about to churn

    // Round 0: everyone online, everyone drains their mailbox.
    let (_, fetched) = deployment.run_round(&mut rng, &mut users).expect("round 0");
    assert_eq!(fetched[&users[claire].mailbox_id()].len(), ell);

    // Round 1 = r: Claire is offline.  Her stored cover is submitted on
    // her behalf, so ℓ messages land in her mailbox — which she cannot
    // fetch.  Rounds 2 and 3: still offline, no cover left, nothing
    // delivered for her, nothing fetched by her.
    users[claire].online = false;
    for round in 1..=3u64 {
        let (report, fetched) = deployment
            .run_round(&mut rng, &mut users)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        let expect = if round == 1 {
            n_users * ell
        } else {
            (n_users - 1) * ell
        };
        assert_eq!(report.delivered, expect, "round {round} delivery count");
        assert!(
            !fetched.contains_key(&users[claire].mailbox_id()),
            "offline user must not be fetched in round {round}"
        );
    }

    // Round 4 = r+3: Claire returns.  She must receive her round-1
    // backlog *and* this round's fresh loopbacks, every one of them
    // decrypted with its own delivery round — zero Opaque.
    users[claire].online = true;
    let (_, fetched) = deployment.run_round(&mut rng, &mut users).expect("round 4");
    let got = &fetched[&users[claire].mailbox_id()];
    assert_eq!(
        got.len(),
        2 * ell,
        "round-1 mail must still be waiting at round 4"
    );
    assert!(
        got.iter().all(|r| *r == Received::Loopback),
        "every backlog entry must decrypt with its delivery round, got {got:?}"
    );

    cluster.shutdown();
}

fn fast_timeouts() -> ConnTimeouts {
    ConnTimeouts {
        connect: Duration::from_secs(2),
        read: Duration::from_millis(700),
        write: Duration::from_secs(2),
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 8,
        base_backoff: Duration::from_millis(10),
    }
}

/// Wire tag byte for a frame name.
fn tag(name: &str) -> u8 {
    (0..=u8::MAX)
        .find(|&t| Frame::tag_name(t) == Some(name))
        .unwrap_or_else(|| panic!("unknown frame name {name}"))
}

/// Seeded churn chaos on the mailbox wire: every mailbox shard sits
/// behind a fault proxy dropping, delaying, stalling or cutting
/// mailbox-phase frames while a user churns offline and back.  The
/// at-least-once fetch protocol (retry + batch dedup + ack-after-read)
/// must deliver every message exactly once: no loss, no duplication,
/// no Opaque residue — across every seed.
fn churn_chaos_sweep(seeds: std::ops::Range<u64>) {
    let tags = ["Deliver", "FetchPage", "MailboxPage", "FetchAck", "Ok"];
    let kinds = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Disconnect,
        FaultKind::Stall,
    ];
    for seed in seeds {
        let mut rng = StdRng::seed_from_u64(0xB0C5 + seed);
        let mut plan = FaultPlan::new(seed);
        for _ in 0..1 + rng.gen_range(0..2) {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let dir = match rng.gen_range(0..3) {
                0 => Direction::Up,
                1 => Direction::Down,
                _ => Direction::Both,
            };
            plan = plan.with(
                FaultRule::new(kind)
                    .tag(tag(tags[rng.gen_range(0..tags.len())]))
                    .skip(rng.gen_range(0..2))
                    .ms(150)
                    .dir(dir),
            );
        }

        let config = DeploymentConfig::small(2, 2);
        let (mut cluster, _proxies, mut deployment) = launch_local_with_mailbox_faults(
            &mut rng,
            &config,
            &plan,
            fast_timeouts(),
            fast_retry(),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: launch failed: {e}"));
        let ell = deployment.topology().ell();

        let n_users = 6;
        let mut users: Vec<User> = (0..n_users).map(|_| User::new(&mut rng)).collect();
        let (a, b) = (users[0].pk(), users[1].pk());
        users[0].start_conversation(b);
        users[1].start_conversation(a);
        let churner = 5; // cover-only; offline for round 1

        for round in 0..3u64 {
            users[churner].online = round != 1;
            users[0].queue_chat(format!("r{round} storm chat").into_bytes());

            let (report, fetched) =
                deployment
                    .run_round(&mut rng, &mut users)
                    .unwrap_or_else(|e| {
                        panic!("seed {seed}: round {round} failed under {plan:?}: {e}")
                    });
            assert_eq!(
                report.delivered,
                n_users * ell,
                "seed {seed}: round {round} delivery shrank under {plan:?}"
            );

            for (i, user) in users.iter().enumerate() {
                if !user.online {
                    continue;
                }
                let got = &fetched[&user.mailbox_id()];
                // Exactly-once: the churner's round-1 backlog arrives in
                // round 2 on top of the fresh ℓ; everyone else gets ℓ.
                let expect = if i == churner && round == 2 {
                    2 * ell
                } else {
                    ell
                };
                assert_eq!(
                    got.len(),
                    expect,
                    "seed {seed}: user {i} round {round} lost or duplicated mail under {plan:?}"
                );
                assert!(
                    !got.contains(&Received::Opaque),
                    "seed {seed}: user {i} round {round} has Opaque residue under {plan:?}"
                );
            }
            assert!(
                fetched[&users[1].mailbox_id()]
                    .iter()
                    .any(|r| matches!(r, Received::Chat { data, .. }
                        if *data == format!("r{round} storm chat").into_bytes())),
                "seed {seed}: round {round} chat lost under {plan:?}"
            );
        }
        cluster.shutdown();
    }
}

#[test]
fn churn_chaos_sweep_seeds_0_to_10() {
    churn_chaos_sweep(0..10);
}

#[test]
fn churn_chaos_sweep_seeds_10_to_20() {
    churn_chaos_sweep(10..20);
}
