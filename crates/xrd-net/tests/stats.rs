//! Wire-scrape acceptance tests for the observability layer: a
//! [`Frame::StatsRequest`] against a live daemon must return a
//! [`Frame::StatsReport`] whose counters match the frames *actually
//! sent* on the wire, and a full connection storm must leave the
//! registry telling the storm's own story (per-tag frame counts,
//! hop-phase histograms, round spans).
//!
//! The metrics registry is process-wide, so these tests serialize on a
//! shared lock and assert on *deltas* between snapshots, never on
//! absolute values.

#![cfg(not(feature = "obs-noop"))]

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use xrd_net::codec::Frame;
use xrd_net::{submit_storm, Conn, MailboxDaemon, StormConfig};
use xrd_obs::Snapshot;

/// Serializes the registry-delta-sensitive tests.
static REGISTRY_ACCOUNTING: Mutex<()> = Mutex::new(());

/// Scrape a daemon over the wire.
fn scrape(conn: &mut Conn) -> Snapshot {
    match conn.request(&Frame::StatsRequest).expect("scrape answered") {
        Frame::StatsReport { snapshot } => *snapshot,
        other => panic!("expected StatsReport, got {other:?}"),
    }
}

/// Counter delta between two snapshots (0 if the counter is absent or
/// did not move).
fn delta(after: &Snapshot, before: &Snapshot, name: &str) -> u64 {
    after.counter(name) - before.counter(name)
}

/// The core contract: per-tag frame counters in a wire-scraped
/// [`Frame::StatsReport`] advance by exactly the number of frames this
/// test put on the wire between two scrapes — including the scrape
/// traffic itself.
#[test]
fn scraped_counters_match_frames_actually_sent() {
    let _guard = REGISTRY_ACCOUNTING.lock().unwrap();
    let daemon = MailboxDaemon::spawn("127.0.0.1:0", 0, 1).expect("daemon spawns");
    let mut scraper = Conn::connect(daemon.addr()).expect("scraper connects");
    let mut traffic = Conn::connect(daemon.addr()).expect("traffic connects");

    let before = scrape(&mut scraper);

    // A known mix of frames, every one acknowledged before the second
    // scrape — so by the time the daemon answers it, each frame below
    // has been decoded and counted.
    const PINGS: u64 = 7;
    const FETCHES: u64 = 3;
    let mut traffic_bytes = 0u64;
    for _ in 0..PINGS {
        traffic_bytes += Frame::Ping.encode().len() as u64;
        traffic.ping().expect("ping served");
    }
    for i in 0..FETCHES {
        let fetch = Frame::FetchPage {
            mailbox: [i as u8; 32],
            cursor: 0,
            max: 8,
        };
        traffic_bytes += fetch.encode().len() as u64;
        // Nothing was ever delivered to these mailboxes, so the shard
        // distinguishes them from merely-empty ones with a typed error.
        match traffic.request(&fetch) {
            Err(xrd_net::NetError::Remote { code, .. }) => {
                assert_eq!(code, xrd_net::codec::error_code::UNKNOWN_MAILBOX)
            }
            other => panic!("expected UNKNOWN_MAILBOX, got {other:?}"),
        }
    }

    let after = scrape(&mut scraper);

    assert_eq!(delta(&after, &before, "frames.in.Ping"), PINGS);
    assert_eq!(delta(&after, &before, "frames.in.FetchPage"), FETCHES);
    // The first scrape's own request is inside its snapshot (counted
    // before the report is built), so between the two snapshots
    // exactly one more StatsRequest landed: the second scrape's.
    assert_eq!(delta(&after, &before, "frames.in.StatsRequest"), 1);
    assert_eq!(
        delta(&after, &before, "reactor.frames_in"),
        PINGS + FETCHES + 1,
        "the aggregate counter must equal the sum over tags"
    );
    // Byte accounting: at least the traffic frames' wire bytes landed
    // (the scrape request adds a few more on the other connection).
    assert!(
        delta(&after, &before, "reactor.bytes_in") >= traffic_bytes,
        "bytes_in advanced by {} for {traffic_bytes} bytes of traffic",
        delta(&after, &before, "reactor.bytes_in"),
    );
    // No error path fired for this well-behaved exchange.
    assert_eq!(delta(&after, &before, "reactor.err.malformed_frame"), 0);
    // Both of this test's connections are open and counted.
    assert!(after.gauge("reactor.conns_open").unwrap_or(0) >= 2);
    // Everything in the report is structurally sound.
    for (name, h) in &after.hists {
        assert!(h.is_well_formed(), "histogram {name} is malformed");
    }
}

/// The mid-storm acceptance test from the issue: scraping a live mix
/// daemon that just served a full storm (submission window + a whole
/// and a streamed hop) returns per-tag frame counters and hop-phase
/// histograms consistent with the round actually driven.
#[test]
fn storm_scrape_tells_the_storm_story() {
    let _guard = REGISTRY_ACCOUNTING.lock().unwrap();
    let before = xrd_obs::global().snapshot();

    const N: usize = 96;
    let mut rng = StdRng::seed_from_u64(23);
    let config = StormConfig {
        n_conns: N,
        workers: 4,
        chain_len: 3,
    };
    let report = submit_storm(&mut rng, &config).expect("storm completes");
    assert_eq!(report.accepted, N as u64);

    // `report.stats` was scraped over the wire while the storm's
    // connections were still open — it must agree with what the storm
    // drove.  One Submit per connection, exactly once.
    let s = &report.stats;
    assert_eq!(delta(s, &before, "frames.in.Submit"), N as u64);
    // The control connection's round-management traffic.
    assert_eq!(delta(s, &before, "frames.in.OpenRound"), 1);
    assert_eq!(delta(s, &before, "frames.in.CloseSubmissions"), 1);
    assert_eq!(delta(s, &before, "frames.in.MixBatch"), 1);
    // N submitters plus the control connection were accepted.
    assert_eq!(delta(s, &before, "reactor.accepts"), N as u64 + 1);

    // Hop-phase accounting: the batch was mixed twice (whole-batch,
    // then the same entries streamed), so the kernel saw 2·N entries…
    assert_eq!(delta(s, &before, "hop.entries"), 2 * N as u64);
    assert_eq!(delta(s, &before, "hop.err.decrypt_failures"), 0);
    // …and both phase histograms recorded real, well-formed samples.
    for name in ["hop.decrypt_blind_us", "hop.shuffle_prove_us"] {
        let h = s.hist(name).expect("hop histogram present");
        assert!(h.is_well_formed(), "histogram {name} is malformed");
        assert!(
            h.count > before.hist(name).map(|h| h.count).unwrap_or(0),
            "{name} recorded no new samples"
        );
        assert!(h.max >= h.p50(), "{name} percentile ordering broken");
    }

    // The span ring holds both hop flavors for the round driven.
    for span_name in ["hop.whole", "hop.stream"] {
        assert!(
            s.spans.iter().any(|e| e.name == span_name && e.round == 0),
            "span {span_name} missing from the scrape"
        );
    }
}
