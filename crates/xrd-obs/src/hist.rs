//! Fixed-bucket log-scale histograms.
//!
//! The bucket layout is log₂ with **4 sub-buckets per octave** (the two
//! bits after the leading one select the sub-bucket), so consecutive
//! bucket boundaries are at most a factor 5/4 apart: any percentile
//! read off the histogram is within +25% of the exact sample value
//! (values 0..=7 are bucketed exactly). 252 buckets cover the whole
//! `u64` range, so a histogram is ~2 KiB of atomics with no allocation
//! or locking on record.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::snapshot::HistSnapshot;

/// Number of buckets: indices 0..=3 exact, then 4 sub-buckets for each
/// of the 62 octaves `[2^2, 2^3) .. [2^63, 2^64)`.
pub const N_BUCKETS: usize = 4 + 62 * 4;

/// Bucket index for a value (total order preserving).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // floor(log2 v) >= 2
    let mantissa = ((v >> (octave - 2)) & 0b11) as usize;
    4 + (octave - 2) * 4 + mantissa
}

/// Smallest value mapping to bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    assert!(i < N_BUCKETS);
    if i < 4 {
        return i as u64;
    }
    let octave = 2 + (i - 4) / 4;
    let mantissa = ((i - 4) % 4) as u64;
    (1u64 << octave) + mantissa * (1u64 << (octave - 2))
}

/// Largest value mapping to bucket `i`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    assert!(i < N_BUCKETS);
    if i + 1 < N_BUCKETS {
        bucket_lower_bound(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// A concurrent log-scale histogram of `u64` samples (microseconds, by
/// convention of every metric in this workspace).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample (relaxed; five atomic RMWs).
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "noop"))]
        {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.min.fetch_min(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(feature = "noop")]
        let _ = v;
    }

    /// Record an elapsed [`std::time::Duration`] in microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy out the current state. Concurrent recorders may land
    /// between the field loads, so the totals are only approximately
    /// consistent with each other — fine for a scrape.
    pub fn snapshot(&self) -> HistSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // (bucket arithmetic is unaffected by the noop feature)
        // Every bucket's bounds are consistent and adjacent.
        for i in 0..N_BUCKETS - 1 {
            assert!(bucket_lower_bound(i) <= bucket_upper_bound(i), "bucket {i}");
            assert_eq!(bucket_upper_bound(i) + 1, bucket_lower_bound(i + 1));
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // upper/lower <= 5/4 for every non-exact bucket.
        for i in 8..N_BUCKETS - 1 {
            let lo = bucket_lower_bound(i) as u128;
            let hi = bucket_upper_bound(i) as u128;
            assert!(hi * 4 < lo * 5, "bucket {i}: [{lo}, {hi}]");
        }
        // Values below 8 are bucketed exactly.
        for v in 0..8 {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
            assert_eq!(bucket_upper_bound(bucket_index(v)), v);
        }
    }
}
