//! The metric registry: names → metric handles, plus the span ring.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::hist::Histogram;
use crate::metric::{Counter, Gauge};
use crate::snapshot::Snapshot;
use crate::span::SpanRecorder;

/// Default span-ring capacity for [`global()`].
const GLOBAL_SPAN_CAPACITY: usize = 1024;

/// A set of named metrics.
///
/// Registration (`counter`/`gauge`/`hist`) takes a mutex and allocates
/// once per name — components resolve their handles at construction
/// time and hold the returned `&'static` references, so the per-event
/// hot path never touches the registry. Metric storage is intentionally
/// leaked: a metric, once created, lives for the process (that is what
/// makes the handles `'static` and lock-free to use).
pub struct Registry {
    start: Instant,
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    hists: Mutex<BTreeMap<String, &'static Histogram>>,
    spans: SpanRecorder,
}

impl Registry {
    /// An empty registry whose span ring keeps `span_capacity` events.
    pub fn new(span_capacity: usize) -> Registry {
        Registry {
            start: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            spans: SpanRecorder::new(span_capacity),
        }
    }

    /// Microseconds since this registry was created (the process-wide
    /// time base for span offsets and log timestamps).
    pub fn uptime_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Get-or-create the named counter.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock().expect("registry poisoned");
        if let Some(c) = map.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        map.insert(name.to_string(), c);
        c
    }

    /// Get-or-create the named gauge.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut map = self.gauges.lock().expect("registry poisoned");
        if let Some(g) = map.get(name) {
            return g;
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        map.insert(name.to_string(), g);
        g
    }

    /// Get-or-create the named histogram.
    pub fn hist(&self, name: &str) -> &'static Histogram {
        let mut map = self.hists.lock().expect("registry poisoned");
        if let Some(h) = map.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        map.insert(name.to_string(), h);
        h
    }

    /// The span ring.
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// Start timing a span; the guard records into this registry's ring
    /// when dropped or [`finish`](SpanTimer::finish)ed.
    pub fn span_timer(&'static self, name: impl Into<String>, round: u64) -> SpanTimer {
        SpanTimer {
            registry: self,
            name: Some(name.into()),
            round,
            start_us: self.uptime_us(),
            started: Instant::now(),
        }
    }

    /// Point-in-time copy of every metric and the span ring.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            uptime_us: self.uptime_us(),
            counters: self
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            hists: self
                .hists
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
            spans: self.spans.snapshot(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("uptime_us", &self.uptime_us())
            .finish_non_exhaustive()
    }
}

/// Drop-guard from [`Registry::span_timer`]: measures wall time from
/// construction and records one [`crate::SpanEvent`] exactly once.
pub struct SpanTimer {
    registry: &'static Registry,
    name: Option<String>,
    round: u64,
    start_us: u64,
    started: Instant,
}

impl SpanTimer {
    /// Record the span now and return its duration in µs.
    pub fn finish(mut self) -> u64 {
        self.record_once()
    }

    fn record_once(&mut self) -> u64 {
        match self.name.take() {
            Some(name) => {
                let dur_us = self.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
                self.registry
                    .spans()
                    .record(name, self.round, self.start_us, dur_us);
                dur_us
            }
            None => 0,
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.record_once();
    }
}

/// The process-wide registry: every daemon, pool and kernel in this
/// process reports here, and a `StatsRequest` scrape returns its
/// snapshot. Real deployments run one daemon per process, so this *is*
/// the per-daemon registry; in-process test clusters aggregate.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new(GLOBAL_SPAN_CAPACITY))
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_is_stable() {
        let reg = Registry::new(8);
        let a = reg.counter("x");
        a.add(3);
        assert_eq!(reg.counter("x").get(), 3);
        assert!(std::ptr::eq(a, reg.counter("x")));
        reg.gauge("g").set(-2);
        reg.hist("h").record(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), 3);
        assert_eq!(snap.gauge("g"), Some(-2));
        assert_eq!(snap.hist("h").unwrap().count, 1);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let reg: &'static Registry = Box::leak(Box::new(Registry::new(8)));
        {
            let _t = reg.span_timer("phase", 7);
        }
        let t2 = reg.span_timer("explicit", 8);
        t2.finish();
        let spans = reg.spans().snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "phase");
        assert_eq!(spans[0].round, 7);
        assert_eq!(spans[1].name, "explicit");
    }
}
