//! Round-timeline spans: a bounded ring of completed phase timings.
//!
//! Spans answer "where did round N spend its time" — submission window,
//! each hop, verify, audit, reveal, delivery — at one record per phase
//! per round, so a small ring (default 1024) holds many rounds of
//! timeline. The ring is mutex-held: span recording happens a handful
//! of times per round, never per frame or per entry.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One completed span: a named phase of a round, with its offset from
/// process start and duration (both microseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name, e.g. `round.window` or `hop2.decrypt`.
    pub name: String,
    /// The round this phase belonged to (0 where not applicable).
    pub round: u64,
    /// Start offset from process (registry) start, µs.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
}

/// A fixed-capacity ring of the most recent [`SpanEvent`]s.
#[derive(Debug)]
pub struct SpanRecorder {
    ring: Mutex<VecDeque<SpanEvent>>,
    capacity: usize,
    /// Total spans ever recorded (including ones the ring evicted).
    recorded: std::sync::atomic::AtomicU64,
}

impl SpanRecorder {
    /// A recorder keeping the latest `capacity` spans.
    pub fn new(capacity: usize) -> SpanRecorder {
        assert!(capacity > 0);
        SpanRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            recorded: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Append a completed span, evicting the oldest when full.
    pub fn record(&self, name: impl Into<String>, round: u64, start_us: u64, dur_us: u64) {
        #[cfg(feature = "noop")]
        {
            let _ = (name.into(), round, start_us, dur_us);
        }
        #[cfg(not(feature = "noop"))]
        {
            let event = SpanEvent {
                name: name.into(),
                round,
                start_us,
                dur_us,
            };
            self.recorded
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut ring = self.ring.lock().expect("span ring poisoned");
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(event);
        }
    }

    /// Spans ever recorded (monotone; exceeds the ring length once
    /// eviction starts).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        self.ring
            .lock()
            .expect("span ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Maximum number of retained spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_latest_in_order() {
        let rec = SpanRecorder::new(3);
        for i in 0..5u64 {
            rec.record(format!("s{i}"), i, i * 10, 1);
        }
        let spans = rec.snapshot();
        assert_eq!(rec.recorded(), 5);
        assert_eq!(spans.len(), 3);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["s2", "s3", "s4"]);
    }
}
