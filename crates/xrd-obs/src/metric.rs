//! Atomic counters and gauges.
//!
//! All operations are `Relaxed`: metrics are monotone event counts or
//! instantaneous levels, never used for synchronization, and a scrape
//! that is a few events stale is fine. With the `noop` feature the
//! mutating operations compile to nothing (reads still work, returning
//! whatever was never written — zero).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "noop"))]
        self.0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = n;
    }

    /// Count one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (open connections, queue depth): goes up
/// *and* down, may be read as a signed value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(not(feature = "noop"))]
        self.0.fetch_add(delta, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = delta;
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn decr(&self) {
        self.add(-1);
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, value: i64) {
        #[cfg(not(feature = "noop"))]
        self.0.store(value, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = value;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.incr();
        g.incr();
        g.decr();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }
}
