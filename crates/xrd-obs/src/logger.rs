//! A minimal leveled stderr logger.
//!
//! `XRD_LOG=error|warn|info|debug` selects the threshold (default
//! `warn`). Each line is formatted fully in memory and written to
//! stderr with **one** `write_all` under the stderr lock, so lines from
//! the reactor thread, worker pool and client threads never interleave
//! mid-line. Timestamps are seconds since the process-wide registry's
//! start, which keeps log lines and span offsets on the same clock.
//!
//! Use via the crate macros:
//!
//! ```
//! xrd_obs::info!("round {} opened", 7);
//! xrd_obs::debug!("peer {} sent a malformed frame", "127.0.0.1:9");
//! ```

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The daemon cannot do what was asked of it.
    Error = 1,
    /// Suspicious but survivable (default threshold).
    Warn = 2,
    /// Round/connection lifecycle events.
    Info = 3,
    /// Per-connection error-path detail (dropped peers etc.).
    Debug = 4,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

/// 0 = not yet resolved from the environment.
static THRESHOLD: AtomicU8 = AtomicU8::new(0);

fn threshold() -> u8 {
    match THRESHOLD.load(Ordering::Relaxed) {
        0 => {
            let level = match std::env::var("XRD_LOG").as_deref() {
                Ok(v) if v.eq_ignore_ascii_case("error") => Level::Error,
                Ok(v) if v.eq_ignore_ascii_case("info") => Level::Info,
                Ok(v) if v.eq_ignore_ascii_case("debug") => Level::Debug,
                // Unknown values and unset both mean the default.
                _ => Level::Warn,
            };
            THRESHOLD.store(level as u8, Ordering::Relaxed);
            level as u8
        }
        v => v,
    }
}

/// Would a message at `level` be emitted? (Macros check this before
/// paying for formatting.)
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= threshold()
}

/// Force the threshold, bypassing `XRD_LOG` — for tests that assert on
/// logger behavior without mutating the process environment.
pub fn set_level_for_tests(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// Emit one formatted line (used by the crate macros; call those).
pub fn log_line(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !log_enabled(level) {
        return;
    }
    let uptime = crate::global().uptime_us() as f64 / 1e6;
    let line = format!("[{uptime:>10.3}s {:<5} {target}] {args}\n", level.tag());
    // One write under the lock: no torn lines across threads.
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

/// Log at [`Level::Error`] with `format!` syntax.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log_line($crate::Level::Error, module_path!(), format_args!($($arg)*))
    };
}

/// Log at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Warn) {
            $crate::log_line($crate::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Info) {
            $crate::log_line($crate::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Level::Debug) {
            $crate::log_line($crate::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_is_warn() {
        // Resolution may already have happened via another test; either
        // way the threshold must be a valid level and the ordering must
        // hold.
        assert!(log_enabled(Level::Error));
        set_level_for_tests(Level::Warn);
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Debug));
        set_level_for_tests(Level::Debug);
        assert!(log_enabled(Level::Debug));
        set_level_for_tests(Level::Warn);
    }
}
