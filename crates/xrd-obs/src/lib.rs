//! # xrd-obs
//!
//! Dependency-free observability for the XRD daemons — the in-repo
//! answer to "what is the reactor/pipeline actually doing right now?".
//! Everything is plain `std`: atomics for the hot path, one mutex-held
//! `BTreeMap` per metric kind for registration (off the hot path), and
//! no wire format of its own (the `xrd-net` codec carries [`Snapshot`]s
//! as `StatsReport` frames).
//!
//! * [`Counter`] / [`Gauge`] — relaxed atomic event/level accounting;
//! * [`Histogram`] — fixed-bucket log-scale latency histogram (4
//!   sub-buckets per octave, ≤25% relative bucket error) with
//!   p50/p95/p99 queries on its [`HistSnapshot`];
//! * [`SpanRecorder`] — a bounded ring of [`SpanEvent`]s, the per-round
//!   phase timeline (submission window → hops → verify → audit →
//!   reveal → delivery);
//! * [`Registry`] — names → metrics, with [`global()`] as the
//!   process-wide instance every daemon in the process reports into
//!   (one daemon per process in real deployments, so a scrape of the
//!   global registry *is* that daemon's view);
//! * [`Snapshot`] — a point-in-time copy of a registry, renderable as a
//!   human-readable dump and diffable against an earlier scrape;
//! * a leveled stderr logger (the [`error!`], [`warn!`], [`info!`],
//!   [`debug!`] macros) driven by `XRD_LOG`.
//!
//! Hot-path cost discipline: recording is one or two relaxed atomic
//! RMWs; name lookup happens once at component construction (handles
//! are `&'static`), never per event. Building with the `noop` feature
//! compiles all recording to nothing so the overhead itself can be
//! measured (see `BENCH_net.json`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod hist;
mod logger;
mod metric;
mod registry;
mod snapshot;
mod span;

pub use hist::{bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, N_BUCKETS};
pub use logger::{log_enabled, log_line, set_level_for_tests, Level};
pub use metric::{Counter, Gauge};
pub use registry::{global, Registry, SpanTimer};
pub use snapshot::{HistSnapshot, Snapshot};
pub use span::{SpanEvent, SpanRecorder};

/// Get-or-create a counter in the [`global()`] registry.
pub fn counter(name: &str) -> &'static Counter {
    global().counter(name)
}

/// Get-or-create a gauge in the [`global()`] registry.
pub fn gauge(name: &str) -> &'static Gauge {
    global().gauge(name)
}

/// Get-or-create a histogram in the [`global()`] registry.
pub fn hist(name: &str) -> &'static Histogram {
    global().hist(name)
}

/// Record a completed span in the [`global()`] registry's ring.
pub fn span(name: impl Into<String>, round: u64, start_us: u64, dur_us: u64) {
    global().spans().record(name, round, start_us, dur_us);
}

/// Start timing a span against the [`global()`] registry; the returned
/// guard records it when dropped (or via [`SpanTimer::finish`]).
pub fn span_timer(name: impl Into<String>, round: u64) -> SpanTimer {
    global().span_timer(name, round)
}
