//! Point-in-time registry snapshots: the scrape payload.
//!
//! A [`Snapshot`] is plain owned data — `xrd-net` encodes it as a
//! `StatsReport` frame, benches embed it in reports, and
//! [`Snapshot::render`] is the human-readable dump behind
//! `xrd-netd stats <addr>`.

use crate::hist::{bucket_upper_bound, N_BUCKETS};
use crate::span::SpanEvent;

/// Copied-out state of one [`crate::Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (µs by convention).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts; length [`N_BUCKETS`].
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum as u128 / self.count as u128) as u64
        }
    }

    /// Nearest-rank percentile (`0.0..=1.0`), reported as the upper
    /// bound of the bucket holding that rank — so the true sample value
    /// is ≤ the returned value and ≥ 4/5 of it (exact below 8).
    /// Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistSnapshot::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Structural consistency: the bucket vector has the canonical
    /// length, bucket counts sum to `count`, and the min/max bounds are
    /// ordered. Scrape assertions in CI use this. (`sum` is excluded:
    /// it wraps modulo 2⁶⁴ if fed absurd magnitudes, which is fine for
    /// the µs-scale values every in-repo metric records.)
    pub fn is_well_formed(&self) -> bool {
        self.buckets.len() == N_BUCKETS
            && self
                .buckets
                .iter()
                .try_fold(0u64, |acc, &n| acc.checked_add(n))
                == Some(self.count)
            && (self.count == 0 || self.min <= self.max)
    }
}

/// A point-in-time copy of a [`crate::Registry`]: what a `StatsReport`
/// frame carries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Microseconds the registry (≈ the process) had been up when the
    /// snapshot was taken.
    pub uptime_us: u64,
    /// `(name, value)` for every counter, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-ordered.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` for every histogram, name-ordered.
    pub hists: Vec<(String, HistSnapshot)>,
    /// Retained span ring, oldest first.
    pub spans: Vec<SpanEvent>,
}

impl Snapshot {
    /// A counter's value (0 if absent — an untouched counter and a
    /// missing one are indistinguishable, as with any scrape).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// A gauge's value, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A histogram's state, if present.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Counters that grew since `earlier`, as `(name, delta)` — the
    /// tool for "what did this storm/round actually do" comparisons.
    pub fn counters_since(&self, earlier: &Snapshot) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter_map(|(name, v)| {
                let delta = v.saturating_sub(earlier.counter(name));
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect()
    }

    /// The human-readable text dump (`xrd-netd stats <addr>` output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "uptime: {:.3}s", self.uptime_us as f64 / 1e6);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {v:>12}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(
                out,
                "histograms (µs): {:<28} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "", "count", "mean", "p50", "p95", "p99", "max"
            );
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {name:<42} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max
                );
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "spans (oldest first, µs since start + duration):");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "  [round {:>5}] {:>12} +{:>9}  {}",
                    s.round, s.start_us, s.dur_us, s.name
                );
            }
        }
        out
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn percentiles_track_recorded_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert!(snap.is_well_formed());
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        // Upper-bound semantics: exact <= reported <= exact * 5/4.
        for (p, exact) in [(0.50, 500u64), (0.95, 950), (0.99, 990)] {
            let got = snap.percentile(p);
            assert!(got >= exact, "p{p}: {got} < {exact}");
            assert!(got * 4 <= exact * 5, "p{p}: {got} too far above {exact}");
        }
    }

    #[test]
    fn empty_histogram_is_well_formed_and_zero() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_well_formed());
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.mean(), 0);
    }

    #[test]
    fn render_mentions_every_section() {
        let reg = crate::Registry::new(4);
        reg.counter("events").add(2);
        reg.gauge("level").set(1);
        reg.hist("lat_us").record(100);
        reg.spans().record("phase", 1, 0, 42);
        let text = reg.snapshot().render();
        for needle in ["uptime:", "events", "level", "lat_us", "phase", "p95"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn counters_since_diffs() {
        let a = Snapshot {
            counters: vec![("x".into(), 3), ("y".into(), 5)],
            ..Snapshot::default()
        };
        let b = Snapshot {
            counters: vec![("x".into(), 10), ("y".into(), 5), ("z".into(), 1)],
            ..Snapshot::default()
        };
        assert_eq!(
            b.counters_since(&a),
            vec![("x".to_string(), 7), ("z".to_string(), 1)]
        );
    }
}
