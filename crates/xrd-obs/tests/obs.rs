//! xrd-obs behavioral tests: histogram percentiles against an exact
//! sorted-vector oracle, counters under thread hammering, and span-ring
//! wraparound.

#![cfg(not(feature = "noop"))]

use proptest::prelude::*;

use xrd_obs::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Counter, Gauge, Histogram, Registry,
    SpanRecorder, N_BUCKETS,
};

/// Exact nearest-rank percentile, the oracle the histogram approximates.
fn oracle_percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn histogram_percentiles_match_sorted_vec_oracle(
        // Mixed magnitudes: small exact values, µs-scale, and huge.
        small in prop::collection::vec(0u64..16, 1..60),
        mid in prop::collection::vec(1u64..2_000_000, 1..200),
        wide in prop::collection::vec(any::<u64>(), 0..20),
    ) {
        let mut samples = small;
        samples.extend(mid);
        samples.extend(wide);

        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert!(snap.is_well_formed());
        prop_assert_eq!(snap.count, samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());

        for p in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let exact = oracle_percentile(&sorted, p);
            let got = snap.percentile(p);
            // Upper-bound semantics with ≤25% bucket width: the report
            // is never below the true value, and never above the true
            // value's bucket (it may clamp down to the observed max).
            prop_assert!(got >= exact.min(snap.max), "p{}: {} < {}", p, got, exact);
            prop_assert!(
                got <= bucket_upper_bound(bucket_index(exact)),
                "p{}: {} above bucket of {}",
                p,
                got,
                exact
            );
        }
    }

    #[test]
    fn bucket_mapping_is_monotone_and_tight(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= v);
        prop_assert!(v <= bucket_upper_bound(i));
        if v > 0 {
            let j = bucket_index(v - 1);
            prop_assert!(j <= i);
        }
    }
}

#[test]
fn concurrent_counter_hammering_loses_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 100_000;
    let counter = Counter::new();
    let gauge = Gauge::new();
    let hist = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (counter, gauge, hist) = (&counter, &gauge, &hist);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.incr();
                    gauge.add(if i % 2 == 0 { 1 } else { -1 });
                    hist.record(t as u64 * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(gauge.get(), 0);
    let snap = hist.snapshot();
    assert!(snap.is_well_formed());
    assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
}

#[test]
fn span_ring_wraps_keeping_the_latest() {
    let rec = SpanRecorder::new(16);
    for i in 0..40u64 {
        rec.record(format!("phase{i}"), i / 8, i, 1 + i);
    }
    assert_eq!(rec.recorded(), 40);
    let spans = rec.snapshot();
    assert_eq!(spans.len(), 16);
    for (k, span) in spans.iter().enumerate() {
        let i = 24 + k as u64; // spans 24..40 survive
        assert_eq!(span.name, format!("phase{i}"));
        assert_eq!(span.start_us, i);
        assert_eq!(span.dur_us, 1 + i);
    }
}

#[test]
fn registry_snapshot_sees_every_kind() {
    let reg: &'static Registry = Box::leak(Box::new(Registry::new(8)));
    reg.counter("frames").add(9);
    reg.gauge("conns").set(3);
    reg.hist("lat").record(1234);
    reg.span_timer("round.window", 5).finish();
    let snap = reg.snapshot();
    assert_eq!(snap.counter("frames"), 9);
    assert_eq!(snap.gauge("conns"), Some(3));
    assert_eq!(snap.hist("lat").unwrap().count, 1);
    assert_eq!(snap.spans.len(), 1);
    assert_eq!(snap.spans[0].name, "round.window");
    assert_eq!(snap.spans[0].round, 5);
    assert!(snap.render().contains("round.window"));
}
