//! Atom baseline \[30\]: horizontally scaling anonymous broadcast via long
//! chains of re-encryption mixes.
//!
//! Structural model: Atom routes every message through a random sequence
//! of ~`route_groups` anytrust groups; within a group each of the `k`
//! servers sequentially re-encrypts (2 exponentiations/message) and
//! shuffles the batch.  Total per-message server visits are in the
//! hundreds ("requires the message to be routed through hundreds of
//! servers in series", §2), which is why Atom's latency is an order of
//! magnitude above XRD's despite similar per-hop math.
//!
//! The model is *structural*: it prices hops with the same calibrated
//! [`OpCosts`] as the XRD pipeline model, so XRD-vs-Atom ratios emerge
//! from the architecture rather than from transplanted constants.  The
//! trap-message variant's overhead is a documented multiplier.  The
//! ElGamal hop itself is runnable ([`crate::elgamal::mix_hop`]) and
//! benchmarked.

use xrd_sim::{OpCosts, ServerCompute, SimDuration};

/// Atom deployment/model parameters.
#[derive(Clone, Copy, Debug)]
pub struct AtomModel {
    /// Number of anytrust groups each message traverses.
    pub route_groups: usize,
    /// Servers per group (same anytrust bound as XRD: k ≈ 32 at f=0.2).
    pub group_size: usize,
    /// Exponentiations per message per server.  The trap variant doubles
    /// the message volume (each real message travels with a trap), so
    /// re-encryption costs 2 exps × 2 messages = 4.
    pub exps_per_msg: u64,
    /// Residual overhead of trap checking, inner-group verification and
    /// CoSi aggregation on top of raw re-encryption.  With 2.0, the
    /// model reproduces Atom's published 1M-user/100-server point
    /// (1532 s, Fig. 4) within ~3% when priced with this crate's
    /// measured exponentiation cost.
    pub trap_overhead: f64,
    /// One-way inter-server latency (seconds).
    pub hop_latency_secs: f64,
}

impl Default for AtomModel {
    fn default() -> Self {
        AtomModel {
            route_groups: 10,
            group_size: 32,
            exps_per_msg: 4,
            trap_overhead: 2.0,
            hop_latency_secs: 0.035,
        }
    }
}

impl AtomModel {
    /// End-to-end latency for `m_users` (one message each) over
    /// `n_servers`, priced with calibrated op costs.
    pub fn latency_secs(
        &self,
        m_users: u64,
        n_servers: usize,
        op: &OpCosts,
        compute: &ServerCompute,
    ) -> f64 {
        let groups = (n_servers / self.group_size).max(1);
        let batch = m_users / groups as u64;
        let hop_compute = compute.parallel_batch(batch, op.exp.scale(self.exps_per_msg));
        let per_server = hop_compute.as_secs_f64() + self.hop_latency_secs;
        let serial_servers = (self.route_groups * self.group_size) as f64;
        serial_servers * per_server * self.trap_overhead
    }

    /// Atom's user bandwidth is tiny: one onion-encrypted message
    /// (~32 B payload plus group-element overhead per layer) — well
    /// under a kilobyte per round (Fig. 2 shows it near zero).
    pub fn user_bandwidth_bytes(&self) -> u64 {
        // One ciphertext per hop layer of the entry group.
        (self.group_size as u64) * 32 + 256
    }

    /// Client-side compute: onion-encrypt for one group (k
    /// exponentiations) — milliseconds, flat in N (Fig. 3).
    pub fn user_compute_secs(&self, op: &OpCosts) -> f64 {
        op.exp.scale(self.group_size as u64).as_secs_f64()
    }
}

/// The per-hop kernel cost used by the model, exposed so benchmarks can
/// compare the modeled price against the measured `mix_hop`.
pub fn modeled_hop_cost(batch: u64, op: &OpCosts, compute: &ServerCompute) -> SimDuration {
    compute.parallel_batch(batch, op.exp.scale(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> (OpCosts, ServerCompute) {
        (OpCosts::nominal(), ServerCompute::c4_8xlarge())
    }

    /// Op costs in the class both the paper's Xeon E5-2666 and the CI
    /// machines measure (~60 µs per exponentiation); the calibration
    /// binaries use real measured values.
    fn measured_like() -> (OpCosts, ServerCompute) {
        let mut op = OpCosts::nominal();
        op.exp = xrd_sim::SimDuration::from_micros(60);
        (op, ServerCompute::c4_8xlarge())
    }

    #[test]
    fn latency_order_matches_paper() {
        // §8.2 / Fig. 4: Atom ≈ 1532 s at 1M users, 100 servers, when
        // priced with measured-class exponentiation costs.
        let (op, compute) = measured_like();
        let m = AtomModel::default();
        let l = m.latency_secs(1_000_000, 100, &op, &compute);
        assert!(
            (1000.0..2200.0).contains(&l),
            "Atom 1M/100 latency = {l} (expect ~1532)"
        );
    }

    #[test]
    fn latency_linear_in_users() {
        let (op, compute) = nominal();
        let m = AtomModel::default();
        let l1 = m.latency_secs(1_000_000, 100, &op, &compute);
        let l2 = m.latency_secs(2_000_000, 100, &op, &compute);
        let ratio = l2 / l1;
        assert!((1.6..2.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn latency_scales_inversely_with_servers() {
        let (op, compute) = nominal();
        let m = AtomModel::default();
        let l100 = m.latency_secs(2_000_000, 100, &op, &compute);
        let l200 = m.latency_secs(2_000_000, 200, &op, &compute);
        assert!(l200 < l100);
        // 1/N scaling (minus the fixed network term).
        assert!(l100 / l200 > 1.5, "{l100} vs {l200}");
    }

    #[test]
    fn user_costs_are_small() {
        let (op, _) = nominal();
        let m = AtomModel::default();
        assert!(m.user_bandwidth_bytes() < 2048);
        assert!(m.user_compute_secs(&op) < 0.05);
    }
}
