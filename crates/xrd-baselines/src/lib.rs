//! # xrd-baselines
//!
//! The systems XRD is evaluated against in §8, each implemented as a
//! runnable kernel (real crypto / real scans, exercising the dominant
//! cost of the system) plus a structural latency/bandwidth model priced
//! either by the same calibrated op-costs as XRD's own model (Atom,
//! Stadium) or anchored to the baseline's published operating points
//! (Pung).  DESIGN.md records the substitution rationale per system.
//!
//! * [`elgamal`] — ElGamal + re-encryption over ristretto255, the
//!   primitive of re-encryption mixnets;
//! * [`atom`] — Atom \[30\]: long serial chains of re-encryption mixes;
//! * [`pung`] — Pung \[4, 3\]: CPIR messaging (XPIR and SealPIR client
//!   variants) with a runnable linear-scan PIR kernel;
//! * [`stadium`] — Stadium \[45\]: parallel mixnets with traditional
//!   verifiable shuffles;
//! * [`vshuffle`] — a cost-faithful verifiable-shuffle kernel (the
//!   expensive thing AHS replaces), used for the headline ablation.

#![warn(missing_docs)]

pub mod atom;
pub mod elgamal;
pub mod pung;
pub mod stadium;
pub mod vshuffle;

pub use atom::AtomModel;
pub use elgamal::{decrypt, encrypt, mix_hop, reencrypt, ElGamalCiphertext};
pub use pung::{PirDatabase, PungModel, PungVariant, RECORD_BYTES};
pub use stadium::StadiumModel;
pub use vshuffle::{prove_shuffle_workload, verify_shuffle_workload, ShuffleCostProof};
