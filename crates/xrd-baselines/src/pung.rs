//! Pung baseline \[4, 3\]: metadata-private messaging from computational
//! PIR against fully untrusted servers.
//!
//! Two components:
//!
//! * a **runnable CPIR kernel** ([`PirDatabase`]) — a single-server
//!   linear scan with multiply-accumulate absorption over 256-byte
//!   records, the computational shape of XPIR's absorb phase (every
//!   record is touched for every query; per-user work grows with the
//!   total number of users, which is why Pung's total work is
//!   superlinear);
//! * a **latency/bandwidth model** ([`PungModel`]) with the structure of
//!   Pung's published evaluation, anchored at the operating points the
//!   XRD paper reports (272 s at 1M users / 100 servers; 927 s at 2M),
//!   scaling `∝ (a·M + b·M²)/N`.
//!
//! The XRD authors themselves estimated Pung this way ("we estimate the
//! latency of Pung with M users and N servers by evaluating it on a
//! single instance with M/N users ... the best possible latency").

/// Record size (bytes) — matches XRD's 256-byte messages.
pub const RECORD_BYTES: usize = 256;
const WORDS: usize = RECORD_BYTES / 8;

/// A PIR database of fixed-size records.
pub struct PirDatabase {
    records: Vec<[u64; WORDS]>,
}

impl PirDatabase {
    /// Build a database from raw 256-byte records.
    pub fn new(records: impl IntoIterator<Item = [u8; RECORD_BYTES]>) -> PirDatabase {
        let records = records
            .into_iter()
            .map(|r| {
                let mut words = [0u64; WORDS];
                for (i, w) in words.iter_mut().enumerate() {
                    *w = u64::from_le_bytes(r[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
                }
                words
            })
            .collect();
        PirDatabase { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Answer a query: the full-database multiply-accumulate scan
    /// (`response = Σ_j q_j · record_j`, wrapping).  With an indicator
    /// query this returns the selected record; with ciphertext
    /// coefficients it is exactly XPIR's absorption workload.
    pub fn answer(&self, query: &[u64]) -> [u64; WORDS] {
        assert_eq!(
            query.len(),
            self.records.len(),
            "query length must match db"
        );
        let mut acc = [0u64; WORDS];
        for (q, record) in query.iter().zip(self.records.iter()) {
            for (a, r) in acc.iter_mut().zip(record.iter()) {
                *a = a.wrapping_add(q.wrapping_mul(*r));
            }
        }
        acc
    }

    /// Convenience: retrieve record `idx` via an indicator query.
    pub fn retrieve(&self, idx: usize) -> [u8; RECORD_BYTES] {
        let mut query = vec![0u64; self.records.len()];
        query[idx] = 1;
        let words = self.answer(&query);
        let mut out = [0u8; RECORD_BYTES];
        for (i, w) in words.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }
}

/// Which Pung client variant (affects user bandwidth only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PungVariant {
    /// Original Pung with XPIR \[4\]: user bandwidth `∝ √M`.
    Xpir,
    /// Follow-up with SealPIR \[3\]: compressed queries, roughly constant
    /// user bandwidth comparable to XRD's.
    SealPir,
}

/// Latency/bandwidth model for Pung, anchored to the published numbers.
#[derive(Clone, Copy, Debug)]
pub struct PungModel {
    /// Linear latency coefficient (seconds per million users, at the
    /// 100-server reference point).
    pub a_secs_per_m: f64,
    /// Quadratic coefficient (seconds per million² users).
    pub b_secs_per_m2: f64,
}

impl Default for PungModel {
    fn default() -> Self {
        // Fit through the XRD paper's reported points at N = 100:
        // 272 s at M = 1e6 and 927 s at M = 2e6 (Fig. 4):
        //   a + b = 272,  2a + 4b = 927  =>  b = 191.5, a = 80.5.
        PungModel {
            a_secs_per_m: 80.5,
            b_secs_per_m2: 191.5,
        }
    }
}

impl PungModel {
    /// Estimated end-to-end latency (seconds) for `m_users` and
    /// `n_servers` (embarrassingly parallel: `∝ 1/N`).
    pub fn latency_secs(&self, m_users: u64, n_servers: usize) -> f64 {
        let m = m_users as f64 / 1e6;
        (self.a_secs_per_m * m + self.b_secs_per_m2 * m * m) * 100.0 / n_servers as f64
    }

    /// Per-round user bandwidth in bytes (independent of server count).
    /// XPIR figures from Fig. 2: ~5.8 MB at 1M users, ~11 MB at 4M
    /// (`∝ √M`); SealPIR compresses queries to roughly 64 KB.
    pub fn user_bandwidth_bytes(&self, variant: PungVariant, m_users: u64) -> u64 {
        match variant {
            PungVariant::Xpir => {
                // 5.8 MB at M = 1e6 => c = 5800 bytes per √user.
                (5800.0 * (m_users as f64).sqrt()) as u64
            }
            PungVariant::SealPir => 64 * 1024,
        }
    }

    /// Single-core client computation per round in seconds (Fig. 3 shows
    /// Pung-XPIR as the most expensive client at ~0.4–0.5 s, flat in N).
    pub fn user_compute_secs(&self, variant: PungVariant, m_users: u64) -> f64 {
        match variant {
            PungVariant::Xpir => 0.4 * (m_users as f64 / 1e6).sqrt(),
            PungVariant::SealPir => 0.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_db(n: usize) -> PirDatabase {
        PirDatabase::new((0..n).map(|i| {
            let mut r = [0u8; RECORD_BYTES];
            r[0] = i as u8;
            r[255] = (i * 7) as u8;
            r
        }))
    }

    #[test]
    fn indicator_query_retrieves_record() {
        let db = test_db(20);
        for idx in [0usize, 7, 19] {
            let r = db.retrieve(idx);
            assert_eq!(r[0], idx as u8);
            assert_eq!(r[255], (idx * 7) as u8);
        }
    }

    #[test]
    fn answer_is_linear() {
        // answer(q1 + q2) == answer(q1) + answer(q2) (wrapping), the
        // homomorphism PIR absorption relies on.
        let db = test_db(10);
        let q1: Vec<u64> = (0..10).map(|i| i as u64).collect();
        let q2: Vec<u64> = (0..10).map(|i| (i * i) as u64).collect();
        let sum: Vec<u64> = q1.iter().zip(&q2).map(|(a, b)| a + b).collect();
        let r1 = db.answer(&q1);
        let r2 = db.answer(&q2);
        let rs = db.answer(&sum);
        for w in 0..WORDS {
            assert_eq!(rs[w], r1[w].wrapping_add(r2[w]));
        }
    }

    #[test]
    #[should_panic(expected = "query length")]
    fn wrong_query_length_panics() {
        let db = test_db(5);
        db.answer(&[1, 2, 3]);
    }

    #[test]
    fn model_matches_paper_anchors() {
        let m = PungModel::default();
        assert!((m.latency_secs(1_000_000, 100) - 272.0).abs() < 1.0);
        assert!((m.latency_secs(2_000_000, 100) - 927.0).abs() < 1.0);
        // 4M: paper says 7.1x slower than XRD's 508s => ~3600s.
        let l4 = m.latency_secs(4_000_000, 100);
        assert!((3000.0..4200.0).contains(&l4), "4M latency = {l4}");
    }

    #[test]
    fn model_scales_inversely_with_servers() {
        let m = PungModel::default();
        let l100 = m.latency_secs(2_000_000, 100);
        let l200 = m.latency_secs(2_000_000, 200);
        assert!((l100 / l200 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_matches_figure2() {
        let m = PungModel::default();
        let b1m = m.user_bandwidth_bytes(PungVariant::Xpir, 1_000_000);
        let b4m = m.user_bandwidth_bytes(PungVariant::Xpir, 4_000_000);
        assert!((5_500_000..6_100_000).contains(&b1m), "{b1m}");
        assert!((11_000_000..12_000_000).contains(&b4m), "{b4m}");
        assert_eq!(
            m.user_bandwidth_bytes(PungVariant::SealPir, 4_000_000),
            65536
        );
    }
}
