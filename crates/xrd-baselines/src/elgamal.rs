//! ElGamal encryption over ristretto255 with re-randomization — the
//! primitive underlying re-encryption mix-nets (Atom's chains, Stadium's
//! mixers).  XRD itself avoids this (that's the point of AHS); we build
//! it so the baselines do real work on real data.

use rand::RngCore;

use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;

/// An ElGamal ciphertext `(c1, c2) = (g^r, m + pk^r)` (additive group
/// notation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElGamalCiphertext {
    /// `g^r`.
    pub c1: GroupElement,
    /// `m * pk^r`.
    pub c2: GroupElement,
}

/// Encrypt a group-element message.
pub fn encrypt<R: RngCore + ?Sized>(
    rng: &mut R,
    pk: &GroupElement,
    m: &GroupElement,
) -> ElGamalCiphertext {
    let r = Scalar::random(rng);
    ElGamalCiphertext {
        c1: GroupElement::base_mul(&r),
        c2: m.add(&pk.mul(&r)),
    }
}

/// Decrypt with the secret key.
pub fn decrypt(sk: &Scalar, ct: &ElGamalCiphertext) -> GroupElement {
    ct.c2.sub(&ct.c1.mul(sk))
}

/// Re-randomize a ciphertext (the per-hop operation of a re-encryption
/// mixnet): fresh `r'` such that the plaintext is unchanged but the
/// ciphertext is unlinkable.
pub fn reencrypt<R: RngCore + ?Sized>(
    rng: &mut R,
    pk: &GroupElement,
    ct: &ElGamalCiphertext,
) -> ElGamalCiphertext {
    let r = Scalar::random(rng);
    ElGamalCiphertext {
        c1: ct.c1.add(&GroupElement::base_mul(&r)),
        c2: ct.c2.add(&pk.mul(&r)),
    }
}

/// One mix hop: re-encrypt every ciphertext and shuffle.  Returns the
/// permuted batch (2 exponentiations per message — the cost Atom pays at
/// every one of its ~hundreds of sequential servers).
pub fn mix_hop<R: RngCore + ?Sized>(
    rng: &mut R,
    pk: &GroupElement,
    batch: &[ElGamalCiphertext],
) -> Vec<ElGamalCiphertext> {
    use rand::Rng;
    let mut out: Vec<ElGamalCiphertext> = batch.iter().map(|ct| reencrypt(rng, pk, ct)).collect();
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xrd_crypto::keys::KeyPair;

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(&mut rng);
        let m = GroupElement::random(&mut rng);
        let ct = encrypt(&mut rng, &kp.pk, &m);
        assert_eq!(decrypt(&kp.sk, &ct), m);
    }

    #[test]
    fn reencryption_preserves_plaintext_and_unlinks() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = KeyPair::generate(&mut rng);
        let m = GroupElement::random(&mut rng);
        let ct = encrypt(&mut rng, &kp.pk, &m);
        let ct2 = reencrypt(&mut rng, &kp.pk, &ct);
        assert_ne!(ct, ct2);
        assert_eq!(decrypt(&kp.sk, &ct2), m);
    }

    #[test]
    fn mix_hop_is_a_permutation_of_plaintexts() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = KeyPair::generate(&mut rng);
        let msgs: Vec<GroupElement> = (0..8).map(|_| GroupElement::random(&mut rng)).collect();
        let batch: Vec<ElGamalCiphertext> =
            msgs.iter().map(|m| encrypt(&mut rng, &kp.pk, m)).collect();
        let mixed = mix_hop(&mut rng, &kp.pk, &batch);
        assert_eq!(mixed.len(), 8);
        let mut decrypted: Vec<[u8; 32]> = mixed
            .iter()
            .map(|ct| decrypt(&kp.sk, ct).encode())
            .collect();
        let mut expected: Vec<[u8; 32]> = msgs.iter().map(|m| m.encode()).collect();
        decrypted.sort();
        expected.sort();
        assert_eq!(decrypted, expected);
    }

    #[test]
    fn wrong_key_decrypts_garbage() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = KeyPair::generate(&mut rng);
        let other = KeyPair::generate(&mut rng);
        let m = GroupElement::random(&mut rng);
        let ct = encrypt(&mut rng, &kp.pk, &m);
        assert_ne!(decrypt(&other.sk, &ct), m);
    }
}
