//! Stadium baseline \[45\]: horizontally scaling *differentially private*
//! messaging built from parallel mix chains with traditional verifiable
//! shuffles.
//!
//! Structural model: messages pass through two layers of 9-server
//! chains; every server runs a Bayer–Groth-class verifiable shuffle
//! (≈8 exponentiations/message to prove, ≈10 to verify — see
//! [`crate::vshuffle`]), with heavy use of batched multi-exponentiation
//! (the documented `multiexp_speedup`).  Stadium's privacy is weaker
//! than XRD's (differential-privacy noise with an ε-budget); its latency is lower — the
//! paper reports XRD ≈ 2× slower at 1M users/100 servers and the gap
//! growing with N (Fig. 4, §8.2).

use xrd_sim::{OpCosts, ServerCompute};

/// Stadium model parameters.
#[derive(Clone, Copy, Debug)]
pub struct StadiumModel {
    /// Servers per mix chain (the paper's evaluation uses 9).
    pub chain_len: usize,
    /// Number of mixing layers (input + output).
    pub layers: usize,
    /// Exponentiations per message for proof generation.
    pub prove_exps: u64,
    /// Exponentiations per message for proof verification.
    pub verify_exps: u64,
    /// Effective speedup of batched multi-exponentiation over naive
    /// per-exponent pricing (Stadium's implementation batches heavily).
    pub multiexp_speedup: f64,
    /// Noise messages added per chain as a fraction of real traffic.
    pub noise_overhead: f64,
    /// One-way inter-server latency (seconds).
    pub hop_latency_secs: f64,
}

impl Default for StadiumModel {
    fn default() -> Self {
        StadiumModel {
            chain_len: 9,
            layers: 2,
            prove_exps: crate::vshuffle::PROVE_EXPS_PER_MSG as u64,
            verify_exps: crate::vshuffle::VERIFY_EXPS_PER_MSG as u64,
            // Naive per-exponent pricing with this crate's measured exp
            // cost lands on Stadium's published 1M/100 point (64 s,
            // Fig. 4) with no batching discount: Stadium's real multiexp
            // savings are offset by noise generation, distribution and
            // coordination we do not price separately.
            multiexp_speedup: 1.0,
            noise_overhead: 0.3,
            hop_latency_secs: 0.035,
        }
    }
}

impl StadiumModel {
    /// End-to-end latency for `m_users` over `n_servers`.
    pub fn latency_secs(
        &self,
        m_users: u64,
        n_servers: usize,
        op: &OpCosts,
        compute: &ServerCompute,
    ) -> f64 {
        let chains = (n_servers / self.chain_len).max(1);
        let batch = ((m_users as f64) * (1.0 + self.noise_overhead) / chains as f64).ceil() as u64;
        let exps_per_msg = self.prove_exps + self.verify_exps;
        let hop_compute = compute
            .parallel_batch(batch, op.exp.scale(exps_per_msg))
            .as_secs_f64()
            / self.multiexp_speedup;
        let hops = (self.chain_len * self.layers) as f64;
        hops * (hop_compute + self.hop_latency_secs)
    }

    /// Stadium user bandwidth: one onion per round plus noise-free
    /// client traffic — under a kilobyte (Fig. 2).
    pub fn user_bandwidth_bytes(&self) -> u64 {
        (self.chain_len as u64) * 48 + 256
    }

    /// Client compute: one onion (≈ chain_len exponentiations).
    pub fn user_compute_secs(&self, op: &OpCosts) -> f64 {
        op.exp.scale(self.chain_len as u64).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> (OpCosts, ServerCompute) {
        (OpCosts::nominal(), ServerCompute::c4_8xlarge())
    }

    #[test]
    fn latency_order_matches_paper() {
        // Fig. 4: Stadium ≈ 64 s at 1M users / 100 servers.
        let (op, compute) = nominal();
        let m = StadiumModel::default();
        let l = m.latency_secs(1_000_000, 100, &op, &compute);
        assert!((25.0..200.0).contains(&l), "Stadium 1M/100 = {l}");
    }

    #[test]
    fn faster_than_atom_slower_growth_than_pung() {
        let (op, compute) = nominal();
        let stadium = StadiumModel::default();
        let atom = crate::atom::AtomModel::default();
        for m_users in [1_000_000u64, 2_000_000, 4_000_000] {
            let ls = stadium.latency_secs(m_users, 100, &op, &compute);
            let la = atom.latency_secs(m_users, 100, &op, &compute);
            assert!(ls < la, "Stadium ({ls}) must beat Atom ({la})");
        }
    }

    #[test]
    fn latency_linear_in_users() {
        let (op, compute) = nominal();
        let m = StadiumModel::default();
        let l1 = m.latency_secs(1_000_000, 100, &op, &compute);
        let l2 = m.latency_secs(2_000_000, 100, &op, &compute);
        assert!((1.5..2.3).contains(&(l2 / l1)));
    }

    #[test]
    fn small_user_costs() {
        let (op, _) = nominal();
        let m = StadiumModel::default();
        assert!(m.user_bandwidth_bytes() < 1024);
        assert!(m.user_compute_secs(&op) < 0.01);
    }
}
