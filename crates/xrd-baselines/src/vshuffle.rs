//! Traditional verifiable-shuffle **cost kernel** — the expensive
//! primitive XRD's AHS replaces (§6: "these techniques are
//! computationally expensive, requiring many exponentiations").
//!
//! Prior systems (Stadium, Riffle, Atom's proof variant) use
//! Neff/Bayer–Groth style shuffle arguments costing on the order of
//! **8 exponentiations per message to prove and 10 to verify** (see
//! Bayer–Groth 2012, §1; Stadium reports the same order).  Implementing
//! a full Bayer–Groth argument is out of scope for a performance
//! reproduction, so this module provides a *cost-faithful kernel*: it
//! performs real group exponentiations and additions over the real
//! ciphertext batch with exactly those per-message counts, producing a
//! commitment chain that is checked for consistency — but it is **not**
//! a sound zero-knowledge shuffle argument, and is labelled accordingly.
//! Benchmarks that compare "AHS vs. verifiable shuffle" use this kernel
//! for the verifiable-shuffle side.

use rand::RngCore;

use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;

use crate::elgamal::ElGamalCiphertext;

/// Exponentiations per message to generate a shuffle proof (literature
/// figure for Bayer–Groth-class arguments).
pub const PROVE_EXPS_PER_MSG: usize = 8;
/// Exponentiations per message to verify a shuffle proof.
pub const VERIFY_EXPS_PER_MSG: usize = 10;

/// Opaque "proof" produced by the kernel (a chain of commitments whose
/// recomputation exercises the verifier-side workload).
#[derive(Clone, Debug)]
pub struct ShuffleCostProof {
    commitments: Vec<GroupElement>,
    challenge: Scalar,
}

/// Run the prover-side workload over a shuffled batch: 8 real
/// exponentiations per message.
pub fn prove_shuffle_workload<R: RngCore + ?Sized>(
    rng: &mut R,
    inputs: &[ElGamalCiphertext],
    outputs: &[ElGamalCiphertext],
) -> ShuffleCostProof {
    assert_eq!(inputs.len(), outputs.len());
    let challenge = Scalar::random(rng);
    let mut commitments = Vec::with_capacity(inputs.len());
    let mut acc = GroupElement::identity();
    for (inp, out) in inputs.iter().zip(outputs.iter()) {
        // 8 exponentiations per message, over the real ciphertexts.
        let r1 = Scalar::random(rng);
        let r2 = Scalar::random(rng);
        let c = inp
            .c1
            .mul(&r1)
            .add(&inp.c2.mul(&r2))
            .add(&out.c1.mul(&challenge))
            .add(&out.c2.mul(&r1))
            .add(&inp.c1.mul(&challenge))
            .add(&out.c2.mul(&r2))
            .add(&GroupElement::base_mul(&r1))
            .add(&GroupElement::base_mul(&r2));
        acc = acc.add(&c);
        commitments.push(c);
    }
    commitments.push(acc);
    ShuffleCostProof {
        commitments,
        challenge,
    }
}

/// Run the verifier-side workload: 10 real exponentiations per message
/// plus the commitment-chain consistency check.
pub fn verify_shuffle_workload(
    proof: &ShuffleCostProof,
    inputs: &[ElGamalCiphertext],
    outputs: &[ElGamalCiphertext],
) -> bool {
    if proof.commitments.len() != inputs.len() + 1 || inputs.len() != outputs.len() {
        return false;
    }
    let mut acc = GroupElement::identity();
    let c = &proof.challenge;
    for ((inp, out), commitment) in inputs
        .iter()
        .zip(outputs.iter())
        .zip(proof.commitments.iter())
    {
        // 10 exponentiations per message.
        let check = inp
            .c1
            .mul(c)
            .add(&inp.c2.mul(c))
            .add(&out.c1.mul(c))
            .add(&out.c2.mul(c))
            .add(&inp.c1.mul(&c.add(&Scalar::ONE)))
            .add(&inp.c2.mul(&c.add(&Scalar::ONE)))
            .add(&out.c1.mul(&c.add(&Scalar::ONE)))
            .add(&out.c2.mul(&c.add(&Scalar::ONE)))
            .add(&GroupElement::base_mul(c))
            .add(&commitment.mul(c));
        acc = acc.add(commitment);
        let _ = check; // workload only; see module docs
    }
    let last = proof.commitments[proof.commitments.len() - 1];
    acc == last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elgamal::{encrypt, mix_hop};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xrd_crypto::keys::KeyPair;

    fn batch(rng: &mut StdRng, n: usize) -> (KeyPair, Vec<ElGamalCiphertext>) {
        let kp = KeyPair::generate(rng);
        let batch = (0..n)
            .map(|_| {
                let m = GroupElement::random(rng);
                encrypt(rng, &kp.pk, &m)
            })
            .collect();
        (kp, batch)
    }

    #[test]
    fn workload_runs_and_checks() {
        let mut rng = StdRng::seed_from_u64(1);
        let (kp, inputs) = batch(&mut rng, 6);
        let outputs = mix_hop(&mut rng, &kp.pk, &inputs);
        let proof = prove_shuffle_workload(&mut rng, &inputs, &outputs);
        assert!(verify_shuffle_workload(&proof, &inputs, &outputs));
    }

    #[test]
    fn truncated_proof_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let (kp, inputs) = batch(&mut rng, 4);
        let outputs = mix_hop(&mut rng, &kp.pk, &inputs);
        let mut proof = prove_shuffle_workload(&mut rng, &inputs, &outputs);
        proof.commitments.pop();
        assert!(!verify_shuffle_workload(&proof, &inputs, &outputs));
    }

    #[test]
    fn corrupted_commitment_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let (kp, inputs) = batch(&mut rng, 4);
        let outputs = mix_hop(&mut rng, &kp.pk, &inputs);
        let mut proof = prove_shuffle_workload(&mut rng, &inputs, &outputs);
        proof.commitments[0] = GroupElement::random(&mut rng);
        assert!(!verify_shuffle_workload(&proof, &inputs, &outputs));
    }
}
