//! Client-side onion encryption.
//!
//! Two variants:
//!
//! * [`seal_ahs`] — the AHS "double envelope" (§6.2): one Diffie-Hellman
//!   exponent `x` shared across all outer layers (so servers can blind
//!   and verify aggregates), an inner envelope encrypted to the product
//!   of the per-round inner keys, and a NIZK proving knowledge of `x`.
//! * [`seal_basic`] — the baseline Algorithm 2 onion (fresh DH key per
//!   layer, no proofs), kept for the protocol ablation and as the
//!   passive-adversary baseline of §5.
//!
//! Both produce fixed-size submissions for a given chain length, which
//! tests assert (uniform message size is part of the privacy argument).

use rand::RngCore;

use xrd_crypto::aead::{aenc, round_nonce};
use xrd_crypto::kdf;
use xrd_crypto::nizk::SchnorrProof;
use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;
use xrd_crypto::SCHNORR_PROOF_LEN;

use crate::chain_keys::ChainPublicKeys;
use crate::message::{
    domain_outer, inner_envelope_len, outer_ct_len, MailboxMessage, MixEntry, DOMAIN_INNER,
};

/// A user's AHS submission to one chain: `(g^x, c_1)` plus the proof of
/// knowledge of `x` (§6.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Submission {
    /// `g^x`.
    pub dh: GroupElement,
    /// Outer onion ciphertext `c_1`.
    pub ct: Vec<u8>,
    /// NIZK PoK of `x` (knowledge-of-discrete-log, \[9\]).
    pub pok: SchnorrProof,
}

impl Submission {
    /// Serialized size in bytes (for the Figure 2 bandwidth accounting).
    pub fn wire_len(&self) -> usize {
        32 + self.ct.len() + SCHNORR_PROOF_LEN
    }

    /// Verify the knowledge proof (run by every server on submission).
    pub fn verify_pok(&self, round: u64) -> bool {
        self.pok.verify(
            &submission_context(round),
            &GroupElement::generator(),
            &self.dh,
        )
    }

    /// View as the first hop's mix entry.
    pub fn to_entry(&self) -> MixEntry {
        MixEntry {
            dh: self.dh,
            ct: self.ct.clone(),
        }
    }

    /// Serialize to the wire format: `g^x || PoK || onion`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.dh.encode());
        out.extend_from_slice(&self.pok.to_bytes());
        out.extend_from_slice(&self.ct);
        out
    }

    /// Parse from the wire format.  `k` is the chain length (fixing the
    /// onion size); returns `None` on any structural problem.  The PoK is
    /// *not* verified here — servers call [`Submission::verify_pok`]
    /// after parsing, as the protocol prescribes.
    pub fn from_bytes(bytes: &[u8], k: usize) -> Option<Submission> {
        let expect = 32 + SCHNORR_PROOF_LEN + outer_ct_len(k);
        if bytes.len() != expect {
            return None;
        }
        let mut dh_bytes = [0u8; 32];
        dh_bytes.copy_from_slice(&bytes[..32]);
        let dh = GroupElement::decode(&dh_bytes)?;
        let pok = SchnorrProof::from_bytes(&bytes[32..32 + SCHNORR_PROOF_LEN])?;
        Some(Submission {
            dh,
            ct: bytes[32 + SCHNORR_PROOF_LEN..].to_vec(),
            pok,
        })
    }
}

/// Fiat–Shamir context binding submissions to a round.
pub fn submission_context(round: u64) -> Vec<u8> {
    let mut ctx = b"xrd/submission".to_vec();
    ctx.extend_from_slice(&round.to_le_bytes());
    ctx
}

/// KDF context for outer layer `i` of a round.
pub(crate) fn outer_layer_context(round: u64, layer: usize) -> Vec<u8> {
    let mut ctx = round.to_le_bytes().to_vec();
    ctx.extend_from_slice(&(layer as u64).to_le_bytes());
    ctx
}

/// Symmetric key for outer layer `layer`, derived from the layer's DH
/// shared element; used identically by the user (from `mpk_i^x`) and
/// server `i` (from `X_i^{msk_i}` — the same element by the AHS algebra).
pub(crate) fn outer_layer_key(shared: &GroupElement, round: u64, layer: usize) -> [u8; 32] {
    kdf::derive_from_dh(
        "xrd/outer-layer",
        shared,
        &outer_layer_context(round, layer),
    )
}

/// Symmetric key for the inner envelope.
pub(crate) fn inner_key(shared: &GroupElement, round: u64) -> [u8; 32] {
    kdf::derive_from_dh("xrd/inner-envelope", shared, &round.to_le_bytes())
}

/// AHS onion-encryption (§6.2): seal `msg` for the chain described by
/// `keys`, for round `round`.
pub fn seal_ahs<R: RngCore + ?Sized>(
    rng: &mut R,
    keys: &ChainPublicKeys,
    round: u64,
    msg: &MailboxMessage,
) -> Submission {
    let k = keys.len();
    assert!(k >= 1, "chain must have at least one server");

    // Inner envelope: e = (g^y, AEnc(DH(∏ipk, y), ρ, m)).
    let y = Scalar::random(rng);
    let shared_inner = keys.aggregate_inner_key().mul(&y);
    let mut ct = Vec::with_capacity(inner_envelope_len());
    ct.extend_from_slice(&GroupElement::base_mul(&y).encode());
    ct.extend_from_slice(&aenc(
        &inner_key(&shared_inner, round),
        &round_nonce(round, DOMAIN_INNER),
        b"",
        &msg.to_bytes(),
    ));
    debug_assert_eq!(ct.len(), inner_envelope_len());

    // Outer layers, innermost (layer k-1) first: a single exponent x.
    let x = Scalar::random(rng);
    for layer in (0..k).rev() {
        let shared = keys.mpks[layer].mul(&x);
        ct = aenc(
            &outer_layer_key(&shared, round, layer),
            &round_nonce(round, domain_outer(layer)),
            b"",
            &ct,
        );
    }
    debug_assert_eq!(ct.len(), outer_ct_len(k));

    let dh = GroupElement::base_mul(&x);
    let pok = SchnorrProof::prove(
        rng,
        &submission_context(round),
        &GroupElement::generator(),
        &dh,
        &x,
    );
    Submission { dh, ct, pok }
}

/// Baseline Algorithm 2 onion: fresh DH key per layer, mixing keys are
/// ordinary `mpk_i = g^{msk_i}` pairs.  Layer format:
/// `g^{x_i} || AEnc(DH(mpk_i, x_i), ρ, next_layer)`.
pub fn seal_basic<R: RngCore + ?Sized>(
    rng: &mut R,
    mpks: &[GroupElement],
    round: u64,
    msg: &MailboxMessage,
) -> Vec<u8> {
    let mut ct = msg.to_bytes();
    for (layer, mpk) in mpks.iter().enumerate().rev() {
        let x = Scalar::random(rng);
        let key = outer_layer_key(&mpk.mul(&x), round, layer);
        let sealed = aenc(&key, &round_nonce(round, domain_outer(layer)), b"", &ct);
        let mut next = Vec::with_capacity(32 + sealed.len());
        next.extend_from_slice(&GroupElement::base_mul(&x).encode());
        next.extend_from_slice(&sealed);
        ct = next;
    }
    ct
}

/// Size of a basic (Algorithm 2) onion for chain length `k`: each layer
/// adds a fresh 32-byte DH key *and* a 16-byte tag.
pub fn basic_onion_len(k: usize) -> usize {
    crate::message::MAILBOX_MSG_LEN + k * (32 + xrd_crypto::TAG_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_keys::generate_chain_keys;
    use crate::message::{MAILBOX_MSG_LEN, PAYLOAD_LEN};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xrd_crypto::TAG_LEN;

    fn test_msg() -> MailboxMessage {
        MailboxMessage {
            mailbox: [5u8; 32],
            sealed: vec![1u8; PAYLOAD_LEN + TAG_LEN],
        }
    }

    #[test]
    fn ahs_submission_has_fixed_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, keys) = generate_chain_keys(&mut rng, 4, 3);
        let s1 = seal_ahs(&mut rng, &keys, 3, &test_msg());
        let other = MailboxMessage {
            mailbox: [9u8; 32],
            sealed: vec![200u8; PAYLOAD_LEN + TAG_LEN],
        };
        let s2 = seal_ahs(&mut rng, &keys, 3, &other);
        assert_eq!(s1.wire_len(), s2.wire_len());
        assert_eq!(s1.ct.len(), outer_ct_len(4));
    }

    #[test]
    fn pok_verifies_and_binds_round() {
        let mut rng = StdRng::seed_from_u64(2);
        let (_, keys) = generate_chain_keys(&mut rng, 3, 0);
        let s = seal_ahs(&mut rng, &keys, 7, &test_msg());
        assert!(s.verify_pok(7));
        assert!(!s.verify_pok(8));
    }

    #[test]
    fn manual_peel_recovers_message() {
        // Peel the onion the way servers will: layer keys from mpk_i^x
        // (user side equals X_i^{msk_i} — checked in server tests).
        let mut rng = StdRng::seed_from_u64(3);
        let k = 3;
        let (secrets, keys) = generate_chain_keys(&mut rng, k, 5);
        let msg = test_msg();
        let s = seal_ahs(&mut rng, &keys, 5, &msg);

        let mut ct = s.ct.clone();
        let mut x_i = s.dh;
        for layer in 0..k {
            let shared = x_i.mul(&secrets[layer].msk);
            let key = outer_layer_key(&shared, 5, layer);
            ct = xrd_crypto::adec(&key, &round_nonce(5, domain_outer(layer)), b"", &ct)
                .expect("layer must decrypt");
            x_i = x_i.mul(&secrets[layer].bsk);
        }
        // Inner envelope.
        let mut gy = [0u8; 32];
        gy.copy_from_slice(&ct[..32]);
        let gy = GroupElement::decode(&gy).unwrap();
        let isk_sum = secrets
            .iter()
            .fold(xrd_crypto::Scalar::ZERO, |a, s| a.add(&s.isk));
        let shared = gy.mul(&isk_sum);
        let inner = xrd_crypto::adec(
            &inner_key(&shared, 5),
            &round_nonce(5, DOMAIN_INNER),
            b"",
            &ct[32..],
        )
        .expect("inner must decrypt");
        assert_eq!(MailboxMessage::from_bytes(&inner).unwrap(), msg);
        assert_eq!(inner.len(), MAILBOX_MSG_LEN);
    }

    #[test]
    fn basic_onion_peels() {
        let mut rng = StdRng::seed_from_u64(4);
        let k = 3;
        let msks: Vec<Scalar> = (0..k).map(|_| Scalar::random(&mut rng)).collect();
        let mpks: Vec<GroupElement> = msks.iter().map(GroupElement::base_mul).collect();
        let msg = test_msg();
        let mut ct = seal_basic(&mut rng, &mpks, 2, &msg);
        assert_eq!(ct.len(), basic_onion_len(k));

        for (layer, msk) in msks.iter().enumerate() {
            let mut gx = [0u8; 32];
            gx.copy_from_slice(&ct[..32]);
            let gx = GroupElement::decode(&gx).unwrap();
            let key = outer_layer_key(&gx.mul(msk), 2, layer);
            ct = xrd_crypto::adec(&key, &round_nonce(2, domain_outer(layer)), b"", &ct[32..])
                .expect("basic layer must decrypt");
        }
        assert_eq!(MailboxMessage::from_bytes(&ct).unwrap(), msg);
    }

    #[test]
    fn ahs_outer_is_smaller_than_basic() {
        // The AHS onion shares one DH key across layers: 32 bytes total
        // instead of 32 per layer.
        let k = 8;
        let ahs_len = 32 + outer_ct_len(k) + SCHNORR_PROOF_LEN;
        let basic_len = basic_onion_len(k);
        // For k >= 7 the PoK + inner envelope overhead is amortized.
        assert!(ahs_len < basic_len + 32 * (k - 4));
    }

    #[test]
    fn submission_serialization_roundtrip() {
        let mut rng = StdRng::seed_from_u64(6);
        let k = 3;
        let (_, keys) = generate_chain_keys(&mut rng, k, 0);
        let s = seal_ahs(&mut rng, &keys, 0, &test_msg());
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.wire_len());
        let parsed = Submission::from_bytes(&bytes, k).expect("roundtrip");
        assert_eq!(parsed.dh, s.dh);
        assert_eq!(parsed.ct, s.ct);
        assert!(parsed.verify_pok(0));
        // Wrong k (wrong expected size) is rejected.
        assert!(Submission::from_bytes(&bytes, k + 1).is_none());
        // Corrupted group encoding is rejected.
        let mut bad = bytes.clone();
        bad[..32].copy_from_slice(&[0xffu8; 32]);
        assert!(Submission::from_bytes(&bad, k).is_none());
    }

    #[test]
    fn submissions_are_unlinkable_bytes() {
        // Two submissions of the same message are entirely different.
        let mut rng = StdRng::seed_from_u64(5);
        let (_, keys) = generate_chain_keys(&mut rng, 2, 0);
        let s1 = seal_ahs(&mut rng, &keys, 0, &test_msg());
        let s2 = seal_ahs(&mut rng, &keys, 0, &test_msg());
        assert_ne!(s1.ct, s2.ct);
        assert_ne!(s1.dh, s2.dh);
    }
}
