//! Wire formats for messages flowing through a mix chain.
//!
//! All users' submissions are the same size by construction (§4: "she
//! then sends a fixed size message to each of the selected chains"); the
//! constants here pin those sizes so tests can verify uniformity.

use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::TAG_LEN;

/// Application payload size: 256 bytes, "about the size of a standard SMS
/// message or a Tweet" (§8).
pub const PAYLOAD_LEN: usize = 256;

/// Nonce domain for the end-to-end (mailbox) encryption layer.
pub const DOMAIN_MAILBOX: u32 = 0xffff_fffe;
/// Nonce domain for the AHS inner envelope.
pub const DOMAIN_INNER: u32 = 0xffff_ffff;
/// Nonce domain for outer onion layer `i` (one per hop).
pub const fn domain_outer(layer: usize) -> u32 {
    layer as u32
}

/// The message a chain ultimately delivers: `(pk_u, AEnc(s, ρ, m_u))` —
/// a destination mailbox plus a sealed payload only the mailbox owner can
/// open (Algorithm 1, step 2b).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MailboxMessage {
    /// Destination mailbox id (the recipient's public key encoding).
    pub mailbox: [u8; 32],
    /// `AEnc(s, ρ, payload)`: `PAYLOAD_LEN + TAG_LEN` bytes.
    pub sealed: Vec<u8>,
}

/// Serialized size of a [`MailboxMessage`].
pub const MAILBOX_MSG_LEN: usize = 32 + PAYLOAD_LEN + TAG_LEN;

impl MailboxMessage {
    /// Serialize to the fixed wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert_eq!(self.sealed.len(), PAYLOAD_LEN + TAG_LEN);
        let mut out = Vec::with_capacity(MAILBOX_MSG_LEN);
        out.extend_from_slice(&self.mailbox);
        out.extend_from_slice(&self.sealed);
        out
    }

    /// Parse from the fixed wire format.
    pub fn from_bytes(bytes: &[u8]) -> Option<MailboxMessage> {
        if bytes.len() != MAILBOX_MSG_LEN {
            return None;
        }
        let mut mailbox = [0u8; 32];
        mailbox.copy_from_slice(&bytes[..32]);
        Some(MailboxMessage {
            mailbox,
            sealed: bytes[32..].to_vec(),
        })
    }
}

/// One entry moving through an AHS chain: the user's (progressively
/// blinded) Diffie-Hellman key plus the (progressively peeled) onion
/// ciphertext.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixEntry {
    /// `X_i = g^{x · ∏_{a<i} bsk_a}` at hop `i`.
    pub dh: GroupElement,
    /// Remaining onion ciphertext.
    pub ct: Vec<u8>,
}

impl MixEntry {
    /// Serialized size in bytes (for bandwidth accounting).
    pub fn wire_len(&self) -> usize {
        32 + self.ct.len()
    }

    /// Serialize (DH key encoding followed by ciphertext).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.dh.encode());
        out.extend_from_slice(&self.ct);
        out
    }

    /// Serialize a whole batch (the per-entry wire format is the same
    /// as [`MixEntry::to_bytes`]: DH key encoding followed by
    /// ciphertext; ristretto encoding has no batch fast path — see
    /// `GroupElement::encode_all`).
    pub fn batch_to_bytes(entries: &[MixEntry]) -> Vec<Vec<u8>> {
        entries.iter().map(|e| e.to_bytes()).collect()
    }

    /// Parse; `ct_len` is the expected ciphertext length at this hop.
    pub fn from_bytes(bytes: &[u8], ct_len: usize) -> Option<MixEntry> {
        if bytes.len() != 32 + ct_len {
            return None;
        }
        let mut dh_bytes = [0u8; 32];
        dh_bytes.copy_from_slice(&bytes[..32]);
        Some(MixEntry {
            dh: GroupElement::decode(&dh_bytes)?,
            ct: bytes[32..].to_vec(),
        })
    }
}

/// Expected onion ciphertext length after peeling `layers_remaining`
/// outer layers have yet to be removed: the inner envelope plus one AEAD
/// tag per remaining layer.
pub fn outer_ct_len(layers_remaining: usize) -> usize {
    inner_envelope_len() + layers_remaining * TAG_LEN
}

/// Length of the AHS inner envelope `(g^y, AEnc(·, ρ, mailbox_msg))`.
pub fn inner_envelope_len() -> usize {
    32 + MAILBOX_MSG_LEN + TAG_LEN
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xrd_crypto::Scalar;

    #[test]
    fn mailbox_message_roundtrip() {
        let msg = MailboxMessage {
            mailbox: [7u8; 32],
            sealed: vec![9u8; PAYLOAD_LEN + TAG_LEN],
        };
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), MAILBOX_MSG_LEN);
        assert_eq!(MailboxMessage::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn mailbox_message_rejects_wrong_len() {
        assert!(MailboxMessage::from_bytes(&[0u8; 10]).is_none());
        assert!(MailboxMessage::from_bytes(&vec![0u8; MAILBOX_MSG_LEN + 1]).is_none());
    }

    #[test]
    fn mix_entry_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let entry = MixEntry {
            dh: GroupElement::base_mul(&Scalar::random(&mut rng)),
            ct: vec![3u8; 100],
        };
        let bytes = entry.to_bytes();
        assert_eq!(bytes.len(), entry.wire_len());
        assert_eq!(MixEntry::from_bytes(&bytes, 100).unwrap(), entry);
        assert!(MixEntry::from_bytes(&bytes, 99).is_none());
    }

    #[test]
    fn mix_entry_rejects_invalid_group_encoding() {
        let mut bytes = vec![0xffu8; 32 + 8];
        bytes[31] = 0x7f; // not a canonical ristretto encoding
        assert!(MixEntry::from_bytes(&bytes, 8).is_none());
    }

    #[test]
    fn onion_lengths_telescope() {
        // Peeling one layer removes exactly one tag.
        for k in 1..5 {
            assert_eq!(outer_ct_len(k), outer_ct_len(k - 1) + TAG_LEN);
        }
        assert_eq!(outer_ct_len(0), inner_envelope_len());
    }

    #[test]
    fn domains_are_distinct() {
        assert_ne!(DOMAIN_MAILBOX, DOMAIN_INNER);
        for i in 0..64 {
            assert_ne!(domain_outer(i), DOMAIN_MAILBOX);
            assert_ne!(domain_outer(i), DOMAIN_INNER);
        }
    }
}
