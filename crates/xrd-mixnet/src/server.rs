//! The AHS mix server (§6.3).
//!
//! Per round, server `i` receives a batch of [`MixEntry`]s, and:
//!
//! 1. **decrypts** each ciphertext with the key `X_j^{msk_i}` (halting
//!    and triggering blame on any authentication failure),
//! 2. **blinds** each DH key: `X'_j = X_j^{bsk_i}`,
//! 3. **shuffles** ciphertexts and keys with the same permutation, and
//! 4. emits a Chaum–Pedersen **aggregate proof** that
//!    `(∏_j X_j)^{bsk_i} = ∏_j X'_j`, verifiable by every other server.
//!
//! The server retains its inputs/outputs/permutation for the round so
//! the blame protocol (§6.4) can trace any problem ciphertext backwards.

use rand::Rng;
use rand::RngCore;

use xrd_crypto::aead::{adec, round_nonce};
use xrd_crypto::nizk::{DleqBatchEntry, DleqProof};
use xrd_crypto::ristretto::{GroupElement, GroupTable};
use xrd_crypto::scalar::Scalar;

use crate::chain_keys::{ChainPublicKeys, ServerSecrets};
use crate::client::{inner_key, outer_layer_key};
use crate::message::{domain_outer, MailboxMessage, MixEntry, DOMAIN_INNER};

/// Result of one hop of AHS mixing.
#[derive(Clone, Debug)]
pub struct HopResult {
    /// Shuffled, decrypted, blinded entries for the next hop.
    pub outputs: Vec<MixEntry>,
    /// Aggregate blinding proof (§6.3 step 3).
    pub proof: DleqProof,
}

/// Why a hop refused to complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MixError {
    /// Authenticated decryption failed for these input indices; the
    /// server starts the blame protocol (§6.4).
    DecryptFailure(Vec<usize>),
    /// The batch was malformed (e.g. wrong ciphertext length).
    Malformed,
}

/// Retained state of one hop, kept for blame tracing.
///
/// Only the output *DH keys* are retained: blame reveals need
/// `output_dhs[o]` and the input entries, never the output
/// ciphertexts (a downstream accuser supplies those), so keeping full
/// output entries here would deep-copy every ciphertext per hop for
/// nothing.
#[derive(Clone, Debug)]
pub struct HopState {
    /// Round this state belongs to.
    pub round: u64,
    /// Inputs in arrival order.
    pub inputs: Vec<MixEntry>,
    /// Blinded DH keys in emission order.
    pub output_dhs: Vec<GroupElement>,
    /// `output_dhs[o]` was produced from `inputs[perm[o]]`.
    pub perm: Vec<usize>,
}

/// A mix server for one chain position.
pub struct MixServer {
    secrets: ServerSecrets,
    public: ChainPublicKeys,
    state: Option<HopState>,
}

/// Batches below this size are decrypted serially — thread spawn/join
/// overhead (~tens of µs) dwarfs per-entry cost only for tiny batches.
/// Retuned for the 4×64 field backend: one entry now costs ~45-50µs
/// (interleaved two-scalar ladders off one batched table; was ~60-70µs
/// on the 5×51 field), so the fixed spawn cost amortizes later again —
/// at 32 entries a worker chunk still carries >150µs of work even
/// split eight ways, keeping the spawn overhead under a few percent.
/// (Also the break-even of `GroupTable::batch_new`'s shared inversion:
/// below this size the serial path batches the whole run in one call
/// anyway.)
const PARALLEL_HOP_THRESHOLD: usize = 32;

/// Hop-kernel metric handles, resolved once per process (the kernels
/// are cloned into worker threads per chunk; a registry lookup per
/// chunk would serialize them on the registry mutex).
fn hop_metrics() -> &'static HopMetrics {
    static METRICS: std::sync::OnceLock<HopMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| HopMetrics {
        decrypt_blind_us: xrd_obs::hist("hop.decrypt_blind_us"),
        shuffle_prove_us: xrd_obs::hist("hop.shuffle_prove_us"),
        entries: xrd_obs::counter("hop.entries"),
        decrypt_failures: xrd_obs::counter("hop.err.decrypt_failures"),
    })
}

struct HopMetrics {
    /// Per-chunk decrypt-and-blind latency ([`ChunkKernel::process`]).
    decrypt_blind_us: &'static xrd_obs::Histogram,
    /// Shuffle + aggregate-proof latency per completed hop
    /// ([`MixServer::finish_round`]).
    shuffle_prove_us: &'static xrd_obs::Histogram,
    /// Entries decrypted-and-blinded, total (rate = entries/s).
    entries: &'static xrd_obs::Counter,
    /// Entries whose authenticated decryption failed (blame triggers).
    decrypt_failures: &'static xrd_obs::Counter,
}

/// Fiat–Shamir context for hop proofs: binds round and position.
pub fn hop_context(round: u64, position: usize) -> Vec<u8> {
    let mut ctx = b"xrd/ahs-hop".to_vec();
    ctx.extend_from_slice(&round.to_le_bytes());
    ctx.extend_from_slice(&(position as u64).to_le_bytes());
    ctx
}

/// The per-entry decrypt-and-blind kernel of one hop (§6.3 steps 1-2),
/// detached from [`MixServer`] so it can be cloned into worker threads
/// and run over *chunks* of a batch while later chunks are still in
/// flight — the compute half of a streamed hop.
///
/// A kernel is a snapshot of one server's per-round hop parameters
/// (`msk`, `bsk`, position, round); chunk results are position-stable
/// (`process` returns slots in input order, `None` marking a decrypt
/// failure), so any partition of a batch into chunks reassembles into
/// exactly the serial result.  Feed the collected slots back through
/// [`MixServer::finish_round`] to shuffle, prove and retain blame
/// state.
#[derive(Clone)]
pub struct ChunkKernel {
    msk: Scalar,
    bsk: Scalar,
    position: usize,
    round: u64,
}

impl ChunkKernel {
    /// The hop position this kernel decrypts for.
    pub fn position(&self) -> usize {
        self.position
    }

    /// The round this kernel is bound to.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Decrypt-and-blind one entry off its precomputed window table:
    /// both the decrypt (`msk`) and blind (`bsk`) exponentiations run
    /// off one table with masked constant-time scans, so the per-entry
    /// cost is two table ladders instead of two from-scratch
    /// multiplications.  `None` on authentication failure.
    fn decrypt_and_blind(&self, entry: &MixEntry, table: &GroupTable) -> Option<MixEntry> {
        // Steps 1+2 share the table: X_j^{msk_i} and X_j^{bsk_i}.
        let (shared, blinded) = table.mul_pair(&self.msk, &self.bsk);
        let key = outer_layer_key(&shared, self.round, self.position);
        let next_ct = adec(
            &key,
            &round_nonce(self.round, domain_outer(self.position)),
            b"",
            &entry.ct,
        )?;
        Some(MixEntry {
            dh: blinded,
            ct: next_ct,
        })
    }

    /// Run the kernel over a chunk: batch-build the window tables (one
    /// shared field inversion for the whole chunk, via
    /// [`GroupTable::batch_new`]) then decrypt-and-blind each entry off
    /// its table.  Slot `j` of the result corresponds to `entries[j]`;
    /// `None` marks an authentication failure at that index.
    pub fn process(&self, entries: &[MixEntry]) -> Vec<Option<MixEntry>> {
        let started = std::time::Instant::now();
        let dhs: Vec<GroupElement> = entries.iter().map(|e| e.dh).collect();
        let tables = GroupTable::batch_new(&dhs);
        let slots: Vec<Option<MixEntry>> = entries
            .iter()
            .zip(&tables)
            .map(|(entry, table)| self.decrypt_and_blind(entry, table))
            .collect();
        let m = hop_metrics();
        m.decrypt_blind_us.record_duration(started.elapsed());
        m.entries.add(entries.len() as u64);
        slots
    }

    /// [`ChunkKernel::process`] fanned out across scoped OS threads for
    /// large batches (the per-entry work is embarrassingly parallel —
    /// two scalar multiplications plus one AEAD open, no shared
    /// state).  Small batches run serially: thread spawn/join overhead
    /// dwarfs per-entry cost only below `PARALLEL_HOP_THRESHOLD`.
    pub fn process_parallel(&self, entries: &[MixEntry]) -> Vec<Option<MixEntry>> {
        let n_workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if entries.len() < PARALLEL_HOP_THRESHOLD || n_workers == 1 {
            return self.process(entries);
        }
        let chunk = entries.len().div_ceil(n_workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = entries
                .chunks(chunk)
                .map(|entries| scope.spawn(move || self.process(entries)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("hop worker panicked"))
                .collect()
        })
    }
}

impl MixServer {
    /// Create a server from its secrets plus the chain's public bundle.
    pub fn new(secrets: ServerSecrets, public: ChainPublicKeys) -> MixServer {
        MixServer {
            secrets,
            public,
            state: None,
        }
    }

    /// This server's hop position.
    pub fn position(&self) -> usize {
        self.secrets.position
    }

    /// The chain public keys this server operates under.
    pub fn public(&self) -> &ChainPublicKeys {
        &self.public
    }

    /// Retained hop state (after a successful `process_round`).
    pub fn state(&self) -> Option<&HopState> {
        self.state.as_ref()
    }

    /// Mutable access to the retained state.  Exposed for fault-injection
    /// tests (simulating a server that tampers with its own records); a
    /// deployment never calls this.
    #[doc(hidden)]
    pub fn state_mut(&mut self) -> Option<&mut HopState> {
        self.state.as_mut()
    }

    /// This server's secrets (used by the blame-protocol implementation
    /// in this crate).
    pub(crate) fn secrets(&self) -> &ServerSecrets {
        &self.secrets
    }

    /// Snapshot this server's decrypt-and-blind kernel for `round` —
    /// the cloneable compute half of a hop, for streamed (chunk-at-a-
    /// time) processing off the serving thread.
    pub fn chunk_kernel(&self, round: u64) -> ChunkKernel {
        ChunkKernel {
            msk: self.secrets.msk,
            bsk: self.secrets.bsk,
            position: self.secrets.position,
            round,
        }
    }

    /// Run the §6.3 hop on a batch.  On success returns shuffled outputs
    /// plus the aggregate proof and retains state for blame; on
    /// decryption failure returns the offending indices *and* retains the
    /// inputs so the blame protocol can reference them.
    ///
    /// The per-entry decrypt+blind work is embarrassingly parallel (two
    /// scalar multiplications plus one AEAD open per entry, no shared
    /// state), so large batches are chunked across scoped OS threads —
    /// the in-process analogue of a real server's worker cores.
    pub fn process_round<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        round: u64,
        inputs: Vec<MixEntry>,
    ) -> Result<HopResult, MixError> {
        // Per-entry results in input order; `None` marks a decrypt
        // failure at that index.
        let slots = self.chunk_kernel(round).process_parallel(&inputs);
        self.finish_round(rng, round, inputs, slots)
    }

    /// Complete a hop whose decrypt-and-blind slots were computed
    /// elsewhere — the assembly half of a *streamed* hop.  `slots[j]`
    /// must be [`ChunkKernel::process`]'s result for `inputs[j]`
    /// (`None` = authentication failure at `j`); any chunking of the
    /// batch is acceptable as long as the reassembled slots are in
    /// input order.  Shuffles, proves the aggregate blinding relation,
    /// and retains the hop state for blame — exactly as
    /// [`MixServer::process_round`] would have (which is implemented on
    /// top of this).
    pub fn finish_round<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        round: u64,
        inputs: Vec<MixEntry>,
        slots: Vec<Option<MixEntry>>,
    ) -> Result<HopResult, MixError> {
        if slots.len() != inputs.len() {
            return Err(MixError::Malformed);
        }
        let position = self.secrets.position;
        let mut processed = Vec::with_capacity(inputs.len());
        let mut failures = Vec::new();
        for (j, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(entry) => processed.push(entry),
                None => failures.push(j),
            }
        }

        if !failures.is_empty() {
            hop_metrics().decrypt_failures.add(failures.len() as u64);
            // Halt: retain inputs so blame can run against them.
            self.state = Some(HopState {
                round,
                output_dhs: Vec::new(),
                perm: Vec::new(),
                inputs,
            });
            return Err(MixError::DecryptFailure(failures));
        }
        let started = std::time::Instant::now();

        // Step 3: shuffle keys and ciphertexts with one permutation.
        let mut perm: Vec<usize> = (0..processed.len()).collect();
        // Fisher-Yates.
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let outputs: Vec<MixEntry> = perm.iter().map(|&src| processed[src].clone()).collect();

        // Step 4: aggregate blinding proof.
        let prod_in = GroupElement::product(inputs.iter().map(|e| &e.dh));
        let prod_out = GroupElement::product(outputs.iter().map(|e| &e.dh));
        debug_assert_eq!(prod_in.mul(&self.secrets.bsk), prod_out);
        let proof = DleqProof::prove(
            rng,
            &hop_context(round, position),
            &prod_in,
            &prod_out,
            self.public.blinding_base(position),
            &self.public.bpks[position + 1],
            &self.secrets.bsk,
        );

        // The state shares no ciphertexts with the result: it records
        // only the blinded keys (all blame ever needs), so the round's
        // onions are materialized exactly once.
        self.state = Some(HopState {
            round,
            inputs,
            output_dhs: outputs.iter().map(|e| e.dh).collect(),
            perm,
        });
        hop_metrics()
            .shuffle_prove_us
            .record_duration(started.elapsed());
        Ok(HopResult { outputs, proof })
    }

    /// Reveal the per-round inner key (§6.3, after the last hop verifies).
    pub fn reveal_inner_key(&self) -> Scalar {
        self.secrets.isk
    }

    /// Re-prove the aggregate blinding relation over the batch minus a
    /// set of removed inputs (step run after blame removes malicious
    /// ciphertexts, per §6.4: "the servers just have to repeat step 3 of
    /// §6.3").  `excluded_inputs` are indices into this server's input
    /// ordering.
    pub fn reprove_excluding<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        excluded_inputs: &[usize],
    ) -> Option<(GroupElement, GroupElement, DleqProof)> {
        let state = self.state.as_ref()?;
        let excluded: std::collections::HashSet<usize> = excluded_inputs.iter().copied().collect();
        let prod_in = GroupElement::product(
            state
                .inputs
                .iter()
                .enumerate()
                .filter(|(j, _)| !excluded.contains(j))
                .map(|(_, e)| &e.dh),
        );
        // Outputs corresponding to kept inputs (through the permutation).
        let prod_out = GroupElement::product(
            state
                .perm
                .iter()
                .zip(state.output_dhs.iter())
                .filter(|(src, _)| !excluded.contains(src))
                .map(|(_, dh)| dh),
        );
        let position = self.secrets.position;
        let proof = DleqProof::prove(
            rng,
            &hop_context(state.round, position),
            &prod_in,
            &prod_out,
            self.public.blinding_base(position),
            &self.public.bpks[position + 1],
            &self.secrets.bsk,
        );
        Some((prod_in, prod_out, proof))
    }
}

/// Verify one hop's aggregate proof (run by every other server in the
/// chain, §6.3 step 3).
pub fn verify_hop(
    public: &ChainPublicKeys,
    position: usize,
    round: u64,
    inputs: &[MixEntry],
    outputs: &[MixEntry],
    proof: &DleqProof,
) -> bool {
    if inputs.len() != outputs.len() {
        return false;
    }
    verify_hop_keys(
        public,
        position,
        round,
        inputs.iter().map(|e| &e.dh),
        outputs.iter().map(|e| &e.dh),
        proof,
    )
}

/// [`verify_hop`] over bare DH keys.  The §6.3 aggregate attestation
/// states a relation between the *products of the DH keys* only — the
/// ciphertexts never enter the proof statement — so a verifier that
/// receives just the input/output key columns (what the streamed wire
/// protocol ships, ~8× fewer bytes than full entries) checks exactly
/// the same statement as one holding full entries.
pub fn verify_hop_keys<'a>(
    public: &ChainPublicKeys,
    position: usize,
    round: u64,
    input_dhs: impl Iterator<Item = &'a GroupElement>,
    output_dhs: impl Iterator<Item = &'a GroupElement>,
    proof: &DleqProof,
) -> bool {
    let prod_in = GroupElement::product(input_dhs);
    let prod_out = GroupElement::product(output_dhs);
    proof.verify(
        &hop_context(round, position),
        &prod_in,
        &prod_out,
        public.blinding_base(position),
        &public.bpks[position + 1],
    )
}

/// One hop's attestation record for batched verification.
#[derive(Clone, Debug)]
pub struct HopRecord<'a> {
    /// Hop position of the proving server.
    pub position: usize,
    /// The hop's inputs in arrival order.
    pub inputs: &'a [MixEntry],
    /// The hop's outputs in emission order.
    pub outputs: &'a [MixEntry],
    /// The aggregate blinding proof for this hop.
    pub proof: DleqProof,
}

/// Verify all `k` hop proofs of a chain in a single batched DLEQ call
/// ([`DleqProof::batch_verify`]): one multiscalar multiplication
/// replaces `k` sequential proof verifications.  Everything checked
/// here is public wire data, so the variable-time batch engine is safe.
///
/// Returns `false` if any hop's batch is malformed (length mismatch)
/// or if the combined verification fails (meaning at least one hop
/// proof is invalid — callers wanting to identify *which* re-check
/// hops individually with [`verify_hop`]).
pub fn verify_hops_batched(public: &ChainPublicKeys, round: u64, hops: &[HopRecord]) -> bool {
    verify_hops_batched_multi(&[ChainAudit {
        public,
        round,
        hops,
    }])
}

/// One chain's clean-pass hop attestations plus the bundle to check
/// them against: the per-chain unit of the deployment-level audit.
#[derive(Clone, Debug)]
pub struct ChainAudit<'a> {
    /// The chain's active public key bundle.
    pub public: &'a ChainPublicKeys,
    /// The round being audited.
    pub round: u64,
    /// The chain's hop records in position order.
    pub hops: &'a [HopRecord<'a>],
}

/// Fold the hop proofs of *several chains* — a whole deployment round,
/// `n_chains × k` statements — into one batched DLEQ verification.
/// Chains stay cryptographically independent because each statement
/// carries its own bases and publics from its own bundle, all of which
/// the DLEQ challenge absorbs — that base binding, not the
/// [`hop_context`] (which two chains at the same round and position
/// share), is what disambiguates chains in the combined batch.  A
/// single random-linear-combination multiscalar mul then checks them
/// all at once; the coordinator's per-round audit cost becomes one MSM
/// for the entire deployment instead of one per chain.
///
/// Returns `false` if any hop anywhere is malformed or any proof in
/// the combined batch is invalid.  Callers re-check per chain (or per
/// hop, [`verify_hop`]) to localize a failure.
pub fn verify_hops_batched_multi(chains: &[ChainAudit<'_>]) -> bool {
    for chain in chains {
        if chain
            .hops
            .iter()
            .any(|hop| hop.inputs.len() != hop.outputs.len())
        {
            return false;
        }
    }
    let contexts: Vec<Vec<u8>> = chains
        .iter()
        .flat_map(|chain| {
            chain
                .hops
                .iter()
                .map(|hop| hop_context(chain.round, hop.position))
        })
        .collect();
    let statements: Vec<DleqBatchEntry> = chains
        .iter()
        .flat_map(|chain| chain.hops.iter().map(move |hop| (chain, hop)))
        .zip(&contexts)
        .map(|((chain, hop), ctx)| DleqBatchEntry {
            context: ctx,
            base1: GroupElement::product(hop.inputs.iter().map(|e| &e.dh)),
            public1: GroupElement::product(hop.outputs.iter().map(|e| &e.dh)),
            base2: *chain.public.blinding_base(hop.position),
            public2: chain.public.bpks[hop.position + 1],
            proof: hop.proof,
        })
        .collect();
    DleqProof::batch_verify(&statements)
}

/// Check a revealed inner key against the chain's public bundle.
pub fn verify_inner_key(public: &ChainPublicKeys, position: usize, isk: &Scalar) -> bool {
    GroupElement::base_mul(isk) == public.ipks[position]
}

/// After all `k` hops and inner-key reveals, open the inner envelopes
/// (last step of §6.3).  Entries whose envelope fails to parse or
/// decrypt yield `None` (possible only for malicious submissions — an
/// honest user's envelope always opens).
pub fn open_batch(
    inner_keys: &[Scalar],
    round: u64,
    entries: &[MixEntry],
) -> Vec<Option<MailboxMessage>> {
    let isk_sum = inner_keys.iter().fold(Scalar::ZERO, |a, s| a.add(s));
    entries
        .iter()
        .map(|entry| {
            if entry.ct.len() < 32 {
                return None;
            }
            let mut gy = [0u8; 32];
            gy.copy_from_slice(&entry.ct[..32]);
            let gy = GroupElement::decode(&gy)?;
            // The inner keys are public once revealed (§6.3 broadcasts
            // them), so the variable-time ladder is safe here.
            let key = inner_key(&gy.vartime_mul(&isk_sum), round);
            let plaintext = adec(
                &key,
                &round_nonce(round, DOMAIN_INNER),
                b"",
                &entry.ct[32..],
            )?;
            MailboxMessage::from_bytes(&plaintext)
        })
        .collect()
}

/// Digest of a batch for input agreement (§6.3: "sorting the users'
/// ciphertexts, hashing them ... and comparing the hashes").
pub fn input_digest(entries: &[MixEntry]) -> [u8; 32] {
    let mut serialized: Vec<Vec<u8>> = MixEntry::batch_to_bytes(entries);
    serialized.sort();
    let mut h = xrd_crypto::Blake2b::new(32);
    h.update(b"xrd/input-agreement");
    h.update(&(serialized.len() as u64).to_le_bytes());
    for s in &serialized {
        h.update(s);
    }
    h.finalize_32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_keys::generate_chain_keys;
    use crate::client::{seal_ahs, Submission};
    use crate::message::{MAILBOX_MSG_LEN, PAYLOAD_LEN};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xrd_crypto::TAG_LEN;

    fn msg(tag: u8) -> MailboxMessage {
        MailboxMessage {
            mailbox: [tag; 32],
            sealed: vec![tag; PAYLOAD_LEN + TAG_LEN],
        }
    }

    #[test]
    fn full_chain_mixes_and_delivers() {
        let mut rng = StdRng::seed_from_u64(1);
        let k = 3;
        let round = 9;
        let (secrets, public) = generate_chain_keys(&mut rng, k, round);
        let msgs: Vec<MailboxMessage> = (0..8).map(|i| msg(i as u8)).collect();
        let subs: Vec<Submission> = msgs
            .iter()
            .map(|m| seal_ahs(&mut rng, &public, round, m))
            .collect();

        let mut servers: Vec<MixServer> = secrets
            .into_iter()
            .map(|s| MixServer::new(s, public.clone()))
            .collect();

        let mut entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        for (pos, server) in servers.iter_mut().enumerate() {
            let before = entries.clone();
            let result = server.process_round(&mut rng, round, entries).unwrap();
            assert!(verify_hop(
                &public,
                pos,
                round,
                &before,
                &result.outputs,
                &result.proof
            ));
            entries = result.outputs;
        }

        let inner: Vec<Scalar> = servers.iter().map(|s| s.reveal_inner_key()).collect();
        for (pos, key) in inner.iter().enumerate() {
            assert!(verify_inner_key(&public, pos, key));
        }
        let opened = open_batch(&inner, round, &entries);
        let mut delivered: Vec<MailboxMessage> = opened
            .into_iter()
            .map(|m| m.expect("honest message opens"))
            .collect();
        // Set equality with the original messages (order is shuffled).
        let sort_key = |m: &MailboxMessage| m.mailbox;
        delivered.sort_by_key(sort_key);
        let mut expected = msgs.clone();
        expected.sort_by_key(sort_key);
        assert_eq!(delivered, expected);
    }

    #[test]
    fn hop_output_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let round = 1;
        let (secrets, public) = generate_chain_keys(&mut rng, 1, round);
        let subs: Vec<Submission> = (0..20)
            .map(|i| seal_ahs(&mut rng, &public, round, &msg(i as u8)))
            .collect();
        let mut server = MixServer::new(secrets.into_iter().next().unwrap(), public);
        let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        let result = server.process_round(&mut rng, round, entries).unwrap();
        let state = server.state().unwrap();
        // perm is a permutation
        let mut seen = [false; 20];
        for &p in &state.perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        // outputs follow the permutation (blinded dh of input perm[o])
        let bsk = server.secrets().bsk;
        for (o, out) in result.outputs.iter().enumerate() {
            let src = state.perm[o];
            assert_eq!(out.dh, state.inputs[src].dh.mul(&bsk));
        }
    }

    #[test]
    fn garbage_ciphertext_is_detected() {
        let mut rng = StdRng::seed_from_u64(3);
        let round = 4;
        let (secrets, public) = generate_chain_keys(&mut rng, 2, round);
        let mut subs: Vec<Submission> = (0..5)
            .map(|i| seal_ahs(&mut rng, &public, round, &msg(i as u8)))
            .collect();
        // User 3 submits garbage (valid DH key + PoK, broken ciphertext).
        for b in subs[3].ct.iter_mut() {
            *b ^= 0xff;
        }
        let mut server = MixServer::new(secrets.into_iter().next().unwrap(), public);
        let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        match server.process_round(&mut rng, round, entries) {
            Err(MixError::DecryptFailure(idx)) => assert_eq!(idx, vec![3]),
            other => panic!("expected decrypt failure, got {other:?}"),
        }
    }

    #[test]
    fn parallel_hop_preserves_order_and_failure_indices() {
        // A batch large enough to cross PARALLEL_HOP_THRESHOLD, with
        // corrupted entries scattered across worker chunks: the failure
        // indices must come back exactly and in input order.
        let mut rng = StdRng::seed_from_u64(40);
        let round = 6;
        let (secrets, public) = generate_chain_keys(&mut rng, 1, round);
        let n = 4 * super::PARALLEL_HOP_THRESHOLD;
        let mut subs: Vec<Submission> = (0..n)
            .map(|i| seal_ahs(&mut rng, &public, round, &msg(i as u8)))
            .collect();
        let bad: Vec<usize> = vec![1, n / 2, n - 1];
        for &i in &bad {
            subs[i].ct[0] ^= 0xaa;
        }
        let mut server = MixServer::new(secrets.into_iter().next().unwrap(), public);
        let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        match server.process_round(&mut rng, round, entries) {
            Err(MixError::DecryptFailure(idx)) => assert_eq!(idx, bad),
            other => panic!("expected decrypt failure, got {other:?}"),
        }
    }

    #[test]
    fn parallel_and_serial_hop_agree() {
        // Same server, same batch: the parallel path must produce exactly
        // the per-entry results of the serial path (before shuffling,
        // which is the only randomized step).
        let mut rng = StdRng::seed_from_u64(41);
        let round = 1;
        let (secrets, public) = generate_chain_keys(&mut rng, 1, round);
        let n = 3 * super::PARALLEL_HOP_THRESHOLD;
        let subs: Vec<Submission> = (0..n)
            .map(|i| seal_ahs(&mut rng, &public, round, &msg(i as u8)))
            .collect();
        let server = MixServer::new(secrets.into_iter().next().unwrap(), public);
        let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        let kernel = server.chunk_kernel(round);
        let expected: Vec<Option<MixEntry>> = entries
            .chunks(5) // deliberately different chunking than the workers
            .flat_map(|chunk| kernel.process(chunk))
            .collect();
        // Re-run through process_round (parallel for this size) and undo
        // the shuffle via the recorded permutation.
        let mut server2 = server;
        let result = server2.process_round(&mut rng, round, entries).unwrap();
        let state = server2.state().unwrap();
        let mut unshuffled: Vec<Option<MixEntry>> = vec![None; n];
        for (o, out) in result.outputs.iter().enumerate() {
            unshuffled[state.perm[o]] = Some(out.clone());
        }
        assert_eq!(unshuffled, expected);
    }

    #[test]
    fn aggregate_proof_fails_if_entry_replaced() {
        // A malicious first server swaps in its own entry; the product
        // relation breaks so the honest verifier rejects the proof.
        let mut rng = StdRng::seed_from_u64(4);
        let round = 2;
        let (secrets, public) = generate_chain_keys(&mut rng, 2, round);
        let subs: Vec<Submission> = (0..6)
            .map(|i| seal_ahs(&mut rng, &public, round, &msg(i as u8)))
            .collect();
        let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        let mut server = MixServer::new(secrets.into_iter().next().unwrap(), public.clone());
        let before = entries.clone();
        let mut result = server.process_round(&mut rng, round, entries).unwrap();
        // Tamper post-hoc with one output (as a malicious server would
        // when replacing a user's message with its own).
        result.outputs[0].dh = GroupElement::random(&mut rng);
        assert!(!verify_hop(
            &public,
            0,
            round,
            &before,
            &result.outputs,
            &result.proof
        ));
    }

    #[test]
    fn dropping_an_entry_breaks_verification() {
        let mut rng = StdRng::seed_from_u64(5);
        let round = 2;
        let (secrets, public) = generate_chain_keys(&mut rng, 1, round);
        let subs: Vec<Submission> = (0..4)
            .map(|i| seal_ahs(&mut rng, &public, round, &msg(i as u8)))
            .collect();
        let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        let mut server = MixServer::new(secrets.into_iter().next().unwrap(), public.clone());
        let before = entries.clone();
        let mut result = server.process_round(&mut rng, round, entries).unwrap();
        result.outputs.pop();
        assert!(!verify_hop(
            &public,
            0,
            round,
            &before,
            &result.outputs,
            &result.proof
        ));
    }

    #[test]
    fn server_key_exchange_matches_user_key() {
        // DH(X_i, msk_i) == user's DH(mpk_i, x) at every hop — the AHS
        // correctness identity of §6.3.
        let mut rng = StdRng::seed_from_u64(6);
        let k = 4;
        let (secrets, public) = generate_chain_keys(&mut rng, k, 0);
        let x = Scalar::random(&mut rng);
        let mut x_i = GroupElement::base_mul(&x);
        for i in 0..k {
            let server_side = x_i.mul(&secrets[i].msk);
            let user_side = public.mpks[i].mul(&x);
            assert_eq!(server_side, user_side, "hop {i}");
            x_i = x_i.mul(&secrets[i].bsk);
        }
    }

    #[test]
    fn open_batch_handles_junk() {
        let (_, _) = (0, 0);
        let junk = MixEntry {
            dh: GroupElement::identity(),
            ct: vec![0u8; MAILBOX_MSG_LEN + TAG_LEN + 32],
        };
        let opened = open_batch(&[Scalar::ONE], 0, &[junk]);
        assert_eq!(opened, vec![None]);
        // Too-short ciphertext
        let short = MixEntry {
            dh: GroupElement::identity(),
            ct: vec![0u8; 8],
        };
        assert_eq!(open_batch(&[Scalar::ONE], 0, &[short]), vec![None]);
    }

    #[test]
    fn input_digest_is_order_independent() {
        let mut rng = StdRng::seed_from_u64(7);
        let (_, public) = generate_chain_keys(&mut rng, 1, 0);
        let subs: Vec<Submission> = (0..3)
            .map(|i| seal_ahs(&mut rng, &public, 0, &msg(i as u8)))
            .collect();
        let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        let mut reversed = entries.clone();
        reversed.reverse();
        assert_eq!(input_digest(&entries), input_digest(&reversed));
        // but content-dependent
        assert_ne!(input_digest(&entries), input_digest(&entries[..2]));
    }

    #[test]
    fn batched_hop_verification_accepts_chain_and_rejects_tamper() {
        let mut rng = StdRng::seed_from_u64(50);
        let k = 3;
        let round = 11;
        let (secrets, public) = generate_chain_keys(&mut rng, k, round);
        let subs: Vec<Submission> = (0..6)
            .map(|i| seal_ahs(&mut rng, &public, round, &msg(i as u8)))
            .collect();
        let mut servers: Vec<MixServer> = secrets
            .into_iter()
            .map(|s| MixServer::new(s, public.clone()))
            .collect();
        let mut entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        let mut inputs_per_hop = Vec::new();
        let mut outputs_per_hop = Vec::new();
        let mut proofs = Vec::new();
        for server in servers.iter_mut() {
            let before = entries.clone();
            let result = server.process_round(&mut rng, round, entries).unwrap();
            inputs_per_hop.push(before);
            outputs_per_hop.push(result.outputs.clone());
            proofs.push(result.proof);
            entries = result.outputs;
        }
        let records: Vec<HopRecord> = (0..k)
            .map(|i| HopRecord {
                position: i,
                inputs: &inputs_per_hop[i],
                outputs: &outputs_per_hop[i],
                proof: proofs[i],
            })
            .collect();
        // One verifier checks the whole chain in one batched call.
        assert!(verify_hops_batched(&public, round, &records));
        // ...and agrees with per-hop verification.
        for r in &records {
            assert!(verify_hop(
                &public, r.position, round, r.inputs, r.outputs, &r.proof
            ));
        }
        // Tampering any single hop's outputs breaks the batch.
        let mut tampered_outputs = outputs_per_hop.clone();
        tampered_outputs[1][0].dh = GroupElement::random(&mut rng);
        let tampered: Vec<HopRecord> = (0..k)
            .map(|i| HopRecord {
                position: i,
                inputs: &inputs_per_hop[i],
                outputs: &tampered_outputs[i],
                proof: proofs[i],
            })
            .collect();
        assert!(!verify_hops_batched(&public, round, &tampered));
        // Length mismatch is rejected structurally.
        let short = &outputs_per_hop[0][..5];
        let bad = [HopRecord {
            position: 0,
            inputs: &inputs_per_hop[0],
            outputs: short,
            proof: proofs[0],
        }];
        assert!(!verify_hops_batched(&public, round, &bad));
    }

    #[test]
    fn reprove_excluding_verifies() {
        let mut rng = StdRng::seed_from_u64(8);
        let round = 3;
        let (secrets, public) = generate_chain_keys(&mut rng, 1, round);
        let subs: Vec<Submission> = (0..6)
            .map(|i| seal_ahs(&mut rng, &public, round, &msg(i as u8)))
            .collect();
        let entries: Vec<MixEntry> = subs.iter().map(|s| s.to_entry()).collect();
        let mut server = MixServer::new(secrets.into_iter().next().unwrap(), public.clone());
        server.process_round(&mut rng, round, entries).unwrap();

        let (prod_in, prod_out, proof) = server.reprove_excluding(&mut rng, &[2, 4]).unwrap();
        assert!(proof.verify(
            &hop_context(round, 0),
            &prod_in,
            &prod_out,
            public.blinding_base(0),
            &public.bpks[1],
        ));
        // Sanity: products exclude exactly the right entries.
        let state = server.state().unwrap();
        let manual_in = GroupElement::product(
            state
                .inputs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != 2 && *j != 4)
                .map(|(_, e)| &e.dh),
        );
        assert_eq!(prod_in, manual_in);
    }
}
