//! # xrd-mixnet
//!
//! XRD's mix chains (NSDI 2020, §5-§6): onion encryption, the baseline
//! decrypt-and-shuffle mixer (Algorithm 1), the **aggregate hybrid
//! shuffle** (AHS, §6) that defends against active tampering with only
//! cheap crypto, and the blame protocol (§6.4) that identifies malicious
//! users without hurting honest users' privacy.
//!
//! Layering:
//!
//! * [`message`] — fixed-size wire formats;
//! * [`chain_keys`] — the chained blinding/mixing/inner key generation
//!   (§6.1) with knowledge proofs;
//! * [`client`] — the AHS double-envelope onion (§6.2) and the baseline
//!   Algorithm 2 onion;
//! * [`server`] — the AHS hop: decrypt, blind, shuffle, prove (§6.3);
//! * [`blame`] — tracing misauthenticated ciphertexts to their origin
//!   (§6.4);
//! * [`runner`] — a faithful in-process executor for one chain round,
//!   including blame-and-retry;
//! * [`basic`] — the unverified baseline mixer, kept for ablations and
//!   attack demonstrations.

#![warn(missing_docs)]
// Hop-position-indexed loops mirror the paper's server-i notation.
#![allow(clippy::needless_range_loop)]

pub mod basic;
pub mod blame;
pub mod chain_keys;
pub mod client;
pub mod message;
pub mod runner;
pub mod server;
pub mod testutil;

pub use blame::{run_blame, trace_blame, Accusation, BlameReveal, BlameVerdict};
pub use chain_keys::{
    apply_rotation_shares, generate_chain_keys, rotation_share, ChainPublicKeys, RotationShare,
    ServerKeyProofs, ServerSecrets,
};
pub use client::{seal_ahs, seal_basic, Submission};
pub use message::{MailboxMessage, MixEntry, MAILBOX_MSG_LEN, PAYLOAD_LEN};
pub use runner::{ChainRoundOutcome, ChainRoundStats, ChainRunner};
pub use server::{
    input_digest, open_batch, verify_hop, verify_hop_keys, verify_hops_batched,
    verify_hops_batched_multi, verify_inner_key, ChainAudit, ChunkKernel, HopRecord, HopResult,
    HopState, MixError, MixServer,
};
