//! The blame protocol (§6.4).
//!
//! When a server finds a ciphertext that fails authenticated decryption,
//! it accuses: upstream servers then reveal, for that one message slot,
//! their input `(X_i, c_i)`, a DLEQ proof that they blinded the key
//! correctly, and their decryption key `(X_i)^{msk_i}` with a DLEQ proof
//! of its correctness.  Everyone re-executes the decryption chain from
//! the user's original submission down to the problem ciphertext:
//!
//! * if every link verifies, the **user** who submitted the original
//!   ciphertext is malicious (the outer ciphertext acts as a commitment
//!   to all layers), and is removed;
//! * if some server cannot produce a consistent link, that **server** is
//!   identified as the misbehaving party.
//!
//! Privacy is preserved throughout: only the single problem slot is
//! traced, and the revealed ciphertexts stay encrypted under the honest
//! server's mixing or inner keys (see §6.4's analysis).

use rand::RngCore;

use xrd_crypto::aead::{adec, round_nonce};
use xrd_crypto::nizk::DleqProof;
use xrd_crypto::ristretto::GroupElement;

use crate::chain_keys::ChainPublicKeys;
use crate::client::{outer_layer_key, Submission};
use crate::message::{domain_outer, MixEntry};
use crate::server::MixServer;

/// One upstream server's revelation for a problem slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlameReveal {
    /// Hop position of the revealing server.
    pub position: usize,
    /// Index of the revealed entry in this server's *input* order.
    pub input_index: usize,
    /// The input entry `(X_i, c_i)` for the traced slot.
    pub input: MixEntry,
    /// The blinded key `X_{i+1}` this server produced for the slot.
    pub output_dh: GroupElement,
    /// Proof that `output_dh = input.dh^{bsk_i}` (step 1 of §6.4).
    pub blind_proof: DleqProof,
    /// The decryption key `input.dh^{msk_i}` (step 2 of §6.4).
    pub dec_key: GroupElement,
    /// Proof that `dec_key` was computed with the real `msk_i`.
    pub key_proof: DleqProof,
}

/// The accusing server's opening move: the problem entry plus its own
/// decryption key and proof (step 4 of §6.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Accusation {
    /// Hop position of the accuser.
    pub position: usize,
    /// Index of the problem entry in the accuser's input order.
    pub input_index: usize,
    /// The problem entry `(X_h, c_h)`.
    pub entry: MixEntry,
    /// `entry.dh^{msk_h}`.
    pub dec_key: GroupElement,
    /// DLEQ proof for `dec_key`.
    pub key_proof: DleqProof,
}

/// Outcome of the blame protocol for one problem slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlameVerdict {
    /// The traced submission was malformed by its submitter; remove the
    /// user at this submission index.
    MaliciousUser {
        /// Index into the round's submission list.
        submission_index: usize,
    },
    /// A server failed to justify its processing of the slot.
    ServerMisbehaved {
        /// Hop position of the misbehaving server.
        position: usize,
    },
}

/// Context string for blame-protocol DLEQ proofs.
pub fn blame_context(round: u64, position: usize) -> Vec<u8> {
    let mut ctx = b"xrd/blame".to_vec();
    ctx.extend_from_slice(&round.to_le_bytes());
    ctx.extend_from_slice(&(position as u64).to_le_bytes());
    ctx
}

impl MixServer {
    /// Produce this server's revelation for the slot that exited this
    /// server at output index `output_index`.
    pub fn blame_reveal<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        output_index: usize,
    ) -> Option<BlameReveal> {
        let state = self.state()?;
        let input_index = *state.perm.get(output_index)?;
        let input = state.inputs[input_index].clone();
        let output_dh = state.output_dhs[output_index];
        let position = self.position();
        let ctx = blame_context(state.round, position);
        let dec_key = input.dh.mul(&self.secrets().msk);
        let blind_proof = DleqProof::prove(
            rng,
            &ctx,
            &input.dh,
            &output_dh,
            self.public().blinding_base(position),
            &self.public().bpks[position + 1],
            &self.secrets().bsk,
        );
        let key_proof = DleqProof::prove(
            rng,
            &ctx,
            &input.dh,
            &dec_key,
            self.public().blinding_base(position),
            &self.public().mpks[position],
            &self.secrets().msk,
        );
        Some(BlameReveal {
            position,
            input_index,
            input,
            output_dh,
            blind_proof,
            dec_key,
            key_proof,
        })
    }

    /// Open an accusation for a problem entry at `input_index` (the
    /// accuser's own input order).
    pub fn accuse<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        input_index: usize,
    ) -> Option<Accusation> {
        let state = self.state()?;
        let entry = state.inputs.get(input_index)?.clone();
        let position = self.position();
        let ctx = blame_context(state.round, position);
        let dec_key = entry.dh.mul(&self.secrets().msk);
        let key_proof = DleqProof::prove(
            rng,
            &ctx,
            &entry.dh,
            &dec_key,
            self.public().blinding_base(position),
            &self.public().mpks[position],
            &self.secrets().msk,
        );
        Some(Accusation {
            position,
            input_index,
            entry,
            dec_key,
            key_proof,
        })
    }
}

/// Verify a [`BlameReveal`] against the chain public keys and the
/// expected downstream values, returning the upstream `(X_i, c_i)` to
/// continue the trace, or `None` if the reveal is inconsistent (server
/// misbehaved).
fn check_reveal(
    public: &ChainPublicKeys,
    round: u64,
    reveal: &BlameReveal,
    expected_dh: &GroupElement,
    expected_ct: &[u8],
) -> bool {
    let ctx = blame_context(round, reveal.position);
    // The revealed output key must match the downstream entry.
    if reveal.output_dh != *expected_dh {
        return false;
    }
    // Blinding correctness: X_{i+1} = X_i^{bsk_i}.
    if !reveal.blind_proof.verify(
        &ctx,
        &reveal.input.dh,
        &reveal.output_dh,
        public.blinding_base(reveal.position),
        &public.bpks[reveal.position + 1],
    ) {
        return false;
    }
    // Key correctness: dec_key = X_i^{msk_i}.
    if !reveal.key_proof.verify(
        &ctx,
        &reveal.input.dh,
        &reveal.dec_key,
        public.blinding_base(reveal.position),
        &public.mpks[reveal.position],
    ) {
        return false;
    }
    // Decryption correctness: ADec(dec_key, c_i) == c_{i+1}.
    let key = outer_layer_key(&reveal.dec_key, round, reveal.position);
    match adec(
        &key,
        &round_nonce(round, domain_outer(reveal.position)),
        b"",
        &reveal.input.ct,
    ) {
        Some(pt) => pt == expected_ct,
        None => false,
    }
}

/// Run the full blame protocol for one problem slot, given the
/// accusation and a way to obtain each upstream server's reveal.
///
/// This is the *verifier's* side of §6.4, independent of where the
/// servers live: the in-process [`run_blame`] passes a closure over
/// local [`MixServer`]s, while a networked coordinator passes one that
/// performs the reveal request over the wire.  `fetch_reveal(position,
/// output_index)` must return the reveal of the server at `position`
/// for the slot that left it at `output_index` (or `None` if the server
/// refuses — which convicts it).
pub fn trace_blame<F>(
    public: &ChainPublicKeys,
    submissions: &[Submission],
    round: u64,
    accusation: &Accusation,
    mut fetch_reveal: F,
) -> BlameVerdict
where
    F: FnMut(usize, usize) -> Option<BlameReveal>,
{
    let accuser_position = accusation.position;

    // Step 4 (checked first; order does not matter for soundness): the
    // accuser's key must be proven correct, and decryption must fail.
    let ctx = blame_context(round, accuser_position);
    let key_ok = accusation.key_proof.verify(
        &ctx,
        &accusation.entry.dh,
        &accusation.dec_key,
        public.blinding_base(accuser_position),
        &public.mpks[accuser_position],
    );
    if !key_ok {
        return BlameVerdict::ServerMisbehaved {
            position: accuser_position,
        };
    }
    let key = outer_layer_key(&accusation.dec_key, round, accuser_position);
    if adec(
        &key,
        &round_nonce(round, domain_outer(accuser_position)),
        b"",
        &accusation.entry.ct,
    )
    .is_some()
    {
        // False accusation: the ciphertext decrypts fine.
        return BlameVerdict::ServerMisbehaved {
            position: accuser_position,
        };
    }

    // Steps 1-3: walk upstream, verifying each server's link.
    let mut expected_dh = accusation.entry.dh;
    let mut expected_ct = accusation.entry.ct.clone();
    let mut slot_index = accusation.input_index;
    for position in (0..accuser_position).rev() {
        let reveal = match fetch_reveal(position, slot_index) {
            Some(r) => r,
            None => return BlameVerdict::ServerMisbehaved { position },
        };
        // The reveal must be for the position and slot that were asked.
        if reveal.position != position {
            return BlameVerdict::ServerMisbehaved { position };
        }
        if !check_reveal(public, round, &reveal, &expected_dh, &expected_ct) {
            return BlameVerdict::ServerMisbehaved { position };
        }
        expected_dh = reveal.input.dh;
        expected_ct = reveal.input.ct;
        slot_index = reveal.input_index;
    }

    // Step 3: the first server's revealed input must equal the agreed
    // user submission.  The index is adversary-supplied (it came from
    // the accusation or the last reveal, possibly over a network), so
    // an out-of-range value convicts whoever produced it rather than
    // crashing the verifier.
    let Some(submission) = submissions.get(slot_index) else {
        return BlameVerdict::ServerMisbehaved { position: 0 };
    };
    if submission.dh != expected_dh || submission.ct != expected_ct {
        return BlameVerdict::ServerMisbehaved { position: 0 };
    }

    BlameVerdict::MaliciousUser {
        submission_index: slot_index,
    }
}

/// Run the full blame protocol for one problem slot found by the server
/// at `accuser_position` (input index `problem_index` in its order).
///
/// `servers` must contain the chain's servers in hop order with their
/// retained round state; `submissions` is the agreed-upon input set.
pub fn run_blame<R: RngCore + ?Sized>(
    rng: &mut R,
    public: &ChainPublicKeys,
    servers: &[MixServer],
    submissions: &[Submission],
    round: u64,
    accuser_position: usize,
    problem_index: usize,
) -> BlameVerdict {
    let accuser = &servers[accuser_position];
    let accusation = match accuser.accuse(rng, problem_index) {
        Some(a) => a,
        None => {
            return BlameVerdict::ServerMisbehaved {
                position: accuser_position,
            }
        }
    };
    trace_blame(public, submissions, round, &accusation, |position, slot| {
        servers[position].blame_reveal(rng, slot)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_keys::generate_chain_keys;
    use crate::client::seal_ahs;
    use crate::message::{MailboxMessage, PAYLOAD_LEN};
    use crate::server::MixError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xrd_crypto::scalar::Scalar;
    use xrd_crypto::TAG_LEN;

    fn msg(tag: u8) -> MailboxMessage {
        MailboxMessage {
            mailbox: [tag; 32],
            sealed: vec![tag; PAYLOAD_LEN + TAG_LEN],
        }
    }

    use crate::testutil::malicious_submission;

    /// Run hops until a failure; returns servers and failing info.
    struct ChainHarness {
        servers: Vec<MixServer>,
        public: crate::chain_keys::ChainPublicKeys,
        subs: Vec<Submission>,
        round: u64,
    }

    fn harness(rng: &mut StdRng, k: usize, round: u64, n_honest: usize) -> ChainHarness {
        let (secrets, public) = generate_chain_keys(rng, k, round);
        let subs: Vec<Submission> = (0..n_honest)
            .map(|i| seal_ahs(rng, &public, round, &msg(i as u8)))
            .collect();
        let servers = secrets
            .into_iter()
            .map(|s| MixServer::new(s, public.clone()))
            .collect();
        ChainHarness {
            servers,
            public,
            subs,
            round,
        }
    }

    /// Drive hops; if a decrypt failure occurs at hop h, run blame for
    /// each failed index and return the verdicts.
    fn run_until_blame(rng: &mut StdRng, h: &mut ChainHarness) -> Vec<BlameVerdict> {
        let mut entries: Vec<MixEntry> = h.subs.iter().map(|s| s.to_entry()).collect();
        for pos in 0..h.servers.len() {
            match h.servers[pos].process_round(rng, h.round, entries.clone()) {
                Ok(result) => entries = result.outputs,
                Err(MixError::DecryptFailure(indices)) => {
                    return indices
                        .into_iter()
                        .map(|idx| {
                            run_blame(rng, &h.public, &h.servers, &h.subs, h.round, pos, idx)
                        })
                        .collect();
                }
                Err(e) => panic!("unexpected mix error: {e:?}"),
            }
        }
        vec![]
    }

    #[test]
    fn honest_round_never_triggers_blame() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut h = harness(&mut rng, 3, 5, 6);
        assert!(run_until_blame(&mut rng, &mut h).is_empty());
    }

    #[test]
    fn malicious_user_identified_at_first_layer() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut h = harness(&mut rng, 3, 5, 4);
        let bad = malicious_submission(&mut rng, &h.public, 5, 0);
        h.subs.insert(2, bad);
        let verdicts = run_until_blame(&mut rng, &mut h);
        assert_eq!(
            verdicts,
            vec![BlameVerdict::MaliciousUser {
                submission_index: 2
            }]
        );
    }

    #[test]
    fn malicious_user_identified_at_deep_layer() {
        // The garbage survives until layer 2; blame must trace back
        // through two shuffles to find the original submitter.
        let mut rng = StdRng::seed_from_u64(3);
        let mut h = harness(&mut rng, 4, 7, 5);
        let bad = malicious_submission(&mut rng, &h.public, 7, 2);
        h.subs.push(bad);
        let verdicts = run_until_blame(&mut rng, &mut h);
        assert_eq!(
            verdicts,
            vec![BlameVerdict::MaliciousUser {
                submission_index: 5
            }]
        );
    }

    #[test]
    fn multiple_malicious_users_all_identified() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut h = harness(&mut rng, 3, 1, 5);
        let bad_a = malicious_submission(&mut rng, &h.public, 1, 1);
        let bad_b = malicious_submission(&mut rng, &h.public, 1, 1);
        h.subs.insert(1, bad_a);
        h.subs.insert(4, bad_b);
        let mut verdicts = run_until_blame(&mut rng, &mut h);
        verdicts.sort_by_key(|v| match v {
            BlameVerdict::MaliciousUser { submission_index } => *submission_index,
            _ => usize::MAX,
        });
        assert_eq!(
            verdicts,
            vec![
                BlameVerdict::MaliciousUser {
                    submission_index: 1
                },
                BlameVerdict::MaliciousUser {
                    submission_index: 4
                },
            ]
        );
    }

    #[test]
    fn false_accusation_blames_the_accuser() {
        // All users honest; a malicious server at position 1 accuses an
        // honest slot.  The ciphertext decrypts fine, so the accuser is
        // identified.
        let mut rng = StdRng::seed_from_u64(5);
        let mut h = harness(&mut rng, 3, 2, 4);
        let mut entries: Vec<MixEntry> = h.subs.iter().map(|s| s.to_entry()).collect();
        for pos in 0..2 {
            entries = h.servers[pos]
                .process_round(&mut rng, h.round, entries)
                .unwrap()
                .outputs;
        }
        // Position-1 server falsely accuses its input slot 0... we let
        // the *next* server (position 1) hold state; accuse from pos 1.
        let verdict = run_blame(&mut rng, &h.public, &h.servers, &h.subs, h.round, 1, 0);
        assert_eq!(verdict, BlameVerdict::ServerMisbehaved { position: 1 });
    }

    #[test]
    fn tampering_server_is_identified() {
        // Server 1 tampers one of its outputs (ciphertext bytes); server
        // 2 fails to decrypt and blames; the trace shows server 1 cannot
        // justify the link.
        let mut rng = StdRng::seed_from_u64(6);
        let mut h = harness(&mut rng, 3, 3, 5);
        let mut entries: Vec<MixEntry> = h.subs.iter().map(|s| s.to_entry()).collect();
        entries = h.servers[0]
            .process_round(&mut rng, h.round, entries)
            .unwrap()
            .outputs;
        let mut out1 = h.servers[1]
            .process_round(&mut rng, h.round, entries)
            .unwrap()
            .outputs;
        // Malicious tampering *after* the hop: flip bytes of output 2 and
        // poison the server's stored state the same way (a consistent
        // cheater).
        out1[2].ct[5] ^= 0xff;

        match h.servers[2].process_round(&mut rng, h.round, out1) {
            Err(MixError::DecryptFailure(indices)) => {
                assert_eq!(indices, vec![2]);
                let verdict = run_blame(&mut rng, &h.public, &h.servers, &h.subs, h.round, 2, 2);
                assert_eq!(verdict, BlameVerdict::ServerMisbehaved { position: 1 });
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn product_preserving_key_tamper_is_identified() {
        // The Appendix-A attack: server 0 multiplies one slot's key by δ
        // and another's by δ^{-1}, preserving the aggregate product (so
        // the hop proof would still verify) — but downstream decryption
        // fails and blame pins server 0.
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = harness(&mut rng, 2, 4, 6);
        let entries: Vec<MixEntry> = h.subs.iter().map(|s| s.to_entry()).collect();
        let mut out0 = h.servers[0]
            .process_round(&mut rng, h.round, entries)
            .unwrap()
            .outputs;
        // Shift two keys by T and T^{-1}: the aggregate product (and so
        // the hop proof) is preserved, but both slots' keys are wrong.
        let t = GroupElement::base_mul(&Scalar::random(&mut rng));
        out0[0].dh = out0[0].dh.add(&t);
        out0[1].dh = out0[1].dh.sub(&t);
        // Consistent cheater: poison stored state too.
        {
            let st = h.servers[0].state_mut().unwrap();
            st.output_dhs[0] = out0[0].dh;
            st.output_dhs[1] = out0[1].dh;
        }
        match h.servers[1].process_round(&mut rng, h.round, out0) {
            Err(MixError::DecryptFailure(indices)) => {
                assert_eq!(indices, vec![0, 1]);
                for idx in indices {
                    let verdict =
                        run_blame(&mut rng, &h.public, &h.servers, &h.subs, h.round, 1, idx);
                    assert_eq!(verdict, BlameVerdict::ServerMisbehaved { position: 0 });
                }
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn honest_user_is_never_convicted_by_honest_chain() {
        // Fuzz: random honest rounds with one malicious user at a random
        // layer; blame always returns that user's index, never another.
        let mut rng = StdRng::seed_from_u64(8);
        for trial in 0..5 {
            let k = 2 + (trial % 3);
            let mut h = harness(&mut rng, k, trial as u64, 4);
            let bad_layer = trial % k;
            let bad = malicious_submission(&mut rng, &h.public, trial as u64, bad_layer);
            let bad_index = trial % (h.subs.len() + 1);
            h.subs.insert(bad_index, bad);
            let verdicts = run_until_blame(&mut rng, &mut h);
            assert_eq!(
                verdicts,
                vec![BlameVerdict::MaliciousUser {
                    submission_index: bad_index
                }],
                "trial {trial}"
            );
        }
    }

    #[test]
    fn out_of_range_trace_indices_convict_not_panic() {
        // A networked adversary controls the indices inside accusations
        // and reveals; bogus values must convict the sender, never
        // panic the verifying coordinator.
        let mut rng = StdRng::seed_from_u64(9);
        let mut h = harness(&mut rng, 1, 0, 3);
        let entries: Vec<MixEntry> = h.subs.iter().map(|s| s.to_entry()).collect();
        // Make slot 1 undecryptable so the (single, position-0) server
        // can produce a *valid* accusation, then tamper its index.
        let mut bad_entries = entries;
        bad_entries[1].ct[0] ^= 0xff;
        match h.servers[0].process_round(&mut rng, 0, bad_entries) {
            Err(MixError::DecryptFailure(idx)) => assert_eq!(idx, vec![1]),
            other => panic!("expected failure, got {other:?}"),
        }
        let mut accusation = h.servers[0].accuse(&mut rng, 1).expect("accuses");
        accusation.input_index = usize::MAX; // adversarial index
        let verdict = trace_blame(&h.public, &h.subs, 0, &accusation, |_, _| {
            panic!("no upstream servers for k = 1")
        });
        assert_eq!(verdict, BlameVerdict::ServerMisbehaved { position: 0 });
    }
}
