//! AHS key generation for one mix chain (§6.1).
//!
//! Each server holds three key pairs:
//!
//! * a long-term **blinding key** `bsk_i` with public chain
//!   `bpk_i = bpk_{i-1}^{bsk_i}` (so `bpk_i = g^{∏_{a≤i} bsk_a}`),
//! * a long-term **mixing key** `msk_i` with `mpk_i = bpk_{i-1}^{msk_i}`,
//! * a per-round **inner key** `isk_i` with `ipk_i = g^{isk_i}`.
//!
//! Generation is inherently sequential (server `i` needs `bpk_{i-1}` as
//! its base) and every server proves knowledge of its secrets in
//! zero-knowledge; all public keys plus proofs form the
//! [`ChainPublicKeys`] bundle distributed to users and servers.

use rand::RngCore;

use xrd_crypto::nizk::SchnorrProof;
use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;

/// One server's secret keys for a chain position.
#[derive(Clone, Debug)]
pub struct ServerSecrets {
    /// Hop position in the chain (0-based).
    pub position: usize,
    /// Blinding secret `bsk_i`.
    pub bsk: Scalar,
    /// Mixing secret `msk_i`.
    pub msk: Scalar,
    /// Per-round inner secret `isk_i`.
    pub isk: Scalar,
}

/// Knowledge proofs published with a server's public keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerKeyProofs {
    /// PoK of `bsk_i = log_{bpk_{i-1}}(bpk_i)`.
    pub bsk_pok: SchnorrProof,
    /// PoK of `msk_i = log_{bpk_{i-1}}(mpk_i)`.
    pub msk_pok: SchnorrProof,
    /// PoK of `isk_i = log_g(ipk_i)`.
    pub isk_pok: SchnorrProof,
}

/// The public key material for a whole chain, as users and verifying
/// servers see it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainPublicKeys {
    /// Epoch the long-term (blinding/mixing) keys were generated in.
    pub epoch: u64,
    /// Epoch of the current inner keys (rotated every round; see
    /// [`rotate_inner_keys`]).
    pub inner_epoch: u64,
    /// `bpk_0 = g, bpk_1, …, bpk_k` (length `k+1`).
    pub bpks: Vec<GroupElement>,
    /// `mpk_1, …, mpk_k` (length `k`).
    pub mpks: Vec<GroupElement>,
    /// `ipk_1, …, ipk_k` (length `k`).
    pub ipks: Vec<GroupElement>,
    /// Per-server key proofs (length `k`).
    pub proofs: Vec<ServerKeyProofs>,
}

impl ChainPublicKeys {
    /// Chain length `k`.
    pub fn len(&self) -> usize {
        self.mpks.len()
    }

    /// True if the chain is empty (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.mpks.is_empty()
    }

    /// The aggregate inner key `∏_i ipk_i` users encrypt the inner
    /// envelope to (§6.2).
    pub fn aggregate_inner_key(&self) -> GroupElement {
        GroupElement::product(&self.ipks)
    }

    /// The blinding base for server `i` (`bpk_{i-1}`; `bpk_0 = g`).
    pub fn blinding_base(&self, position: usize) -> &GroupElement {
        &self.bpks[position]
    }

    /// Verify every server's key-knowledge proof (step run by all
    /// participants before a round starts).
    pub fn verify(&self) -> bool {
        if self.bpks.len() != self.len() + 1
            || self.ipks.len() != self.len()
            || self.proofs.len() != self.len()
        {
            return false;
        }
        if self.bpks[0] != GroupElement::generator() {
            return false;
        }
        let g = GroupElement::generator();
        for i in 0..self.len() {
            let ctx = keygen_context(self.epoch, i);
            let inner_ctx = inner_keygen_context(self.inner_epoch, i);
            let base = &self.bpks[i];
            let p = &self.proofs[i];
            if !p.bsk_pok.verify(&ctx, base, &self.bpks[i + 1])
                || !p.msk_pok.verify(&ctx, base, &self.mpks[i])
                || !p.isk_pok.verify(&inner_ctx, &g, &self.ipks[i])
            {
                return false;
            }
        }
        true
    }
}

fn keygen_context(epoch: u64, position: usize) -> Vec<u8> {
    let mut ctx = b"xrd/chain-keygen".to_vec();
    ctx.extend_from_slice(&epoch.to_le_bytes());
    ctx.extend_from_slice(&(position as u64).to_le_bytes());
    ctx
}

fn inner_keygen_context(inner_epoch: u64, position: usize) -> Vec<u8> {
    let mut ctx = b"xrd/inner-keygen".to_vec();
    ctx.extend_from_slice(&inner_epoch.to_le_bytes());
    ctx.extend_from_slice(&(position as u64).to_le_bytes());
    ctx
}

/// One server's contribution to an inner-key rotation: the new public
/// key plus its knowledge proof (§6.1).  What a server publishes — and,
/// in a networked deployment, what it sends over the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotationShare {
    /// Hop position of the rotating server.
    pub position: usize,
    /// The new `ipk_i = g^{isk_i}`.
    pub ipk: GroupElement,
    /// PoK of the new `isk_i`.
    pub pok: SchnorrProof,
}

/// Generate one server's fresh per-round inner key for `inner_epoch`:
/// the secret stays with the server, the share is published.
pub fn rotation_share<R: RngCore + ?Sized>(
    rng: &mut R,
    position: usize,
    inner_epoch: u64,
) -> (Scalar, RotationShare) {
    let isk = Scalar::random(rng);
    let ipk = GroupElement::base_mul(&isk);
    let ctx = inner_keygen_context(inner_epoch, position);
    let pok = SchnorrProof::prove(rng, &ctx, &GroupElement::generator(), &ipk, &isk);
    (isk, RotationShare { position, ipk, pok })
}

/// Assemble the rotated public bundle from every server's share.
/// Returns `false` (leaving `public` untouched) if the shares are not
/// exactly one valid share per position.
pub fn apply_rotation_shares(
    public: &mut ChainPublicKeys,
    inner_epoch: u64,
    shares: &[RotationShare],
) -> bool {
    if shares.len() != public.len() {
        return false;
    }
    let g = GroupElement::generator();
    for (i, share) in shares.iter().enumerate() {
        let ctx = inner_keygen_context(inner_epoch, i);
        if share.position != i || !share.pok.verify(&ctx, &g, &share.ipk) {
            return false;
        }
    }
    public.inner_epoch = inner_epoch;
    for (i, share) in shares.iter().enumerate() {
        public.ipks[i] = share.ipk;
        public.proofs[i].isk_pok = share.pok;
    }
    true
}

/// Rotate every server's per-round inner key pair to `inner_epoch`
/// (§6.1: "the inner keys are per-round keys"), refreshing the published
/// `ipk`s and their knowledge proofs.  The in-process composition of
/// [`rotation_share`] + [`apply_rotation_shares`].
pub fn rotate_inner_keys<R: RngCore + ?Sized>(
    rng: &mut R,
    secrets: &mut [ServerSecrets],
    public: &mut ChainPublicKeys,
    inner_epoch: u64,
) {
    let mut shares = Vec::with_capacity(secrets.len());
    for (i, secret) in secrets.iter_mut().enumerate() {
        let (isk, share) = rotation_share(rng, i, inner_epoch);
        secret.isk = isk;
        shares.push(share);
    }
    let ok = apply_rotation_shares(public, inner_epoch, &shares);
    debug_assert!(ok, "locally generated shares must apply");
}

/// Generate the full key chain for `k` servers.  In a deployment each
/// server runs its own step; here the sequential protocol is executed
/// in-process and each server's secrets are returned separately.
pub fn generate_chain_keys<R: RngCore + ?Sized>(
    rng: &mut R,
    k: usize,
    epoch: u64,
) -> (Vec<ServerSecrets>, ChainPublicKeys) {
    assert!(k >= 1);
    let g = GroupElement::generator();
    let mut bpks = vec![g];
    let mut mpks = Vec::with_capacity(k);
    let mut ipks = Vec::with_capacity(k);
    let mut proofs = Vec::with_capacity(k);
    let mut secrets = Vec::with_capacity(k);

    for i in 0..k {
        let bsk = Scalar::random(rng);
        let msk = Scalar::random(rng);
        let isk = Scalar::random(rng);
        let base = bpks[i];
        let bpk = base.mul(&bsk);
        let mpk = base.mul(&msk);
        let ipk = GroupElement::base_mul(&isk);

        let ctx = keygen_context(epoch, i);
        let inner_ctx = inner_keygen_context(epoch, i);
        proofs.push(ServerKeyProofs {
            bsk_pok: SchnorrProof::prove(rng, &ctx, &base, &bpk, &bsk),
            msk_pok: SchnorrProof::prove(rng, &ctx, &base, &mpk, &msk),
            isk_pok: SchnorrProof::prove(rng, &inner_ctx, &g, &ipk, &isk),
        });
        bpks.push(bpk);
        mpks.push(mpk);
        ipks.push(ipk);
        secrets.push(ServerSecrets {
            position: i,
            bsk,
            msk,
            isk,
        });
    }

    (
        secrets,
        ChainPublicKeys {
            epoch,
            inner_epoch: epoch,
            bpks,
            mpks,
            ipks,
            proofs,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_keys_verify() {
        let mut rng = StdRng::seed_from_u64(1);
        let (secrets, public) = generate_chain_keys(&mut rng, 5, 7);
        assert_eq!(secrets.len(), 5);
        assert_eq!(public.len(), 5);
        assert!(public.verify());
    }

    #[test]
    fn key_chain_algebra() {
        // bpk_i = g^{∏ bsk}, mpk_i = bpk_{i-1}^{msk_i}.
        let mut rng = StdRng::seed_from_u64(2);
        let (secrets, public) = generate_chain_keys(&mut rng, 4, 0);
        let mut acc = Scalar::ONE;
        for i in 0..4 {
            assert_eq!(public.bpks[i], GroupElement::base_mul(&acc));
            let expected_mpk = public.bpks[i].mul(&secrets[i].msk);
            assert_eq!(public.mpks[i], expected_mpk);
            acc = acc.mul(&secrets[i].bsk);
        }
        assert_eq!(public.bpks[4], GroupElement::base_mul(&acc));
    }

    #[test]
    fn aggregate_inner_key_is_sum_of_secrets() {
        let mut rng = StdRng::seed_from_u64(3);
        let (secrets, public) = generate_chain_keys(&mut rng, 3, 0);
        let sum = secrets.iter().fold(Scalar::ZERO, |acc, s| acc.add(&s.isk));
        assert_eq!(public.aggregate_inner_key(), GroupElement::base_mul(&sum));
    }

    #[test]
    fn tampered_bundle_fails_verification() {
        let mut rng = StdRng::seed_from_u64(4);
        let (_, mut public) = generate_chain_keys(&mut rng, 3, 0);
        assert!(public.verify());
        // Swap one public key for a random element.
        public.mpks[1] = GroupElement::random(&mut rng);
        assert!(!public.verify());
    }

    #[test]
    fn wrong_epoch_proofs_fail() {
        let mut rng = StdRng::seed_from_u64(5);
        let (_, mut public) = generate_chain_keys(&mut rng, 2, 1);
        public.epoch = 2; // proofs were bound to epoch 1
        assert!(!public.verify());
    }

    #[test]
    fn malformed_structure_fails() {
        let mut rng = StdRng::seed_from_u64(6);
        let (_, mut public) = generate_chain_keys(&mut rng, 2, 0);
        public.bpks[0] = GroupElement::random(&mut rng); // must be g
        assert!(!public.verify());
        let (_, mut public2) = generate_chain_keys(&mut rng, 2, 0);
        public2.ipks.pop();
        assert!(!public2.verify());
    }
}
