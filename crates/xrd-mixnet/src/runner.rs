//! In-process execution of the complete per-chain protocol:
//! submission validation → k hops of AHS mixing with verification →
//! inner-key reveal → envelope opening — with the blame protocol and
//! malicious-submission removal woven in (§6.3 + §6.4).
//!
//! This is the reference executor used by tests, examples, and the
//! real (thread-backed) deployment in `xrd-core`.  It is written as a
//! faithful single-trust-domain execution of the multi-party protocol:
//! every proof that the paper says "all other servers verify" *is*
//! verified here (and counted, so benchmarks can attribute cost).

use rand::RngCore;

use xrd_crypto::scalar::Scalar;

use crate::blame::{run_blame, BlameVerdict};
use crate::chain_keys::{generate_chain_keys, ChainPublicKeys, ServerSecrets};
use crate::client::Submission;
use crate::message::{MailboxMessage, MixEntry};
use crate::server::{input_digest, open_batch, verify_hop, verify_inner_key, MixError, MixServer};

/// Statistics from one chain-round execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainRoundStats {
    /// Submissions rejected up front (bad PoK).
    pub rejected_pok: usize,
    /// Users removed by the blame protocol.
    pub removed_by_blame: usize,
    /// Number of times the hop pipeline was restarted after blame.
    pub blame_rounds: usize,
    /// Hop proofs generated (== hops completed).
    pub proofs_generated: usize,
    /// Hop proof verifications performed (each of the other k-1 servers
    /// verifies every hop).
    pub proofs_verified: usize,
}

/// Outcome of a chain round.
#[derive(Clone, Debug)]
pub struct ChainRoundOutcome {
    /// Messages ready for mailbox delivery, in shuffled order.
    pub delivered: Vec<MailboxMessage>,
    /// Submission indices identified as malicious and removed.
    pub malicious_users: Vec<usize>,
    /// Servers caught misbehaving (empty in an honest deployment).
    pub misbehaving_servers: Vec<usize>,
    /// Execution statistics.
    pub stats: ChainRoundStats,
}

/// A whole chain executing in one process: the servers plus shared
/// public keys.
pub struct ChainRunner {
    secrets: Vec<ServerSecrets>,
    servers: Vec<MixServer>,
    public: ChainPublicKeys,
    /// A prepared-but-not-yet-active inner-key rotation.  Inner keys for
    /// round ρ+1 must be published while round ρ runs, because users
    /// seal their §5.3.3 cover messages for ρ+1 one round in advance.
    pending: Option<(Vec<ServerSecrets>, ChainPublicKeys)>,
}

impl ChainRunner {
    /// Set up a chain of `k` servers with fresh keys for `epoch`.
    pub fn new<R: RngCore + ?Sized>(rng: &mut R, k: usize, epoch: u64) -> ChainRunner {
        let (secrets, public) = generate_chain_keys(rng, k, epoch);
        assert!(public.verify(), "freshly generated keys must verify");
        Self::from_parts(secrets, public)
    }

    /// Assemble from externally generated parts.
    pub fn from_parts(secrets: Vec<ServerSecrets>, public: ChainPublicKeys) -> ChainRunner {
        let servers = secrets
            .iter()
            .map(|s| MixServer::new(s.clone(), public.clone()))
            .collect();
        ChainRunner {
            secrets,
            servers,
            public,
            pending: None,
        }
    }

    /// Rotate the per-round inner keys to `inner_epoch` (§6.1) and reset
    /// the servers for a fresh round.
    pub fn rotate_inner_keys<R: RngCore + ?Sized>(&mut self, rng: &mut R, inner_epoch: u64) {
        crate::chain_keys::rotate_inner_keys(rng, &mut self.secrets, &mut self.public, inner_epoch);
        self.rebuild_servers();
    }

    /// Generate (and publish) the inner keys for a *future* round without
    /// activating them.  Users seal cover messages for round ρ+1 against
    /// this bundle while round ρ is still being mixed (§5.3.3).
    pub fn prepare_inner_rotation<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        inner_epoch: u64,
    ) -> ChainPublicKeys {
        let mut secrets = self.secrets.clone();
        let mut public = self.public.clone();
        crate::chain_keys::rotate_inner_keys(rng, &mut secrets, &mut public, inner_epoch);
        let snapshot = public.clone();
        self.pending = Some((secrets, public));
        snapshot
    }

    /// Switch to the previously prepared inner keys (start of the next
    /// round).  Panics if no rotation was prepared.
    pub fn activate_inner_rotation(&mut self) {
        let (secrets, public) = self
            .pending
            .take()
            .expect("prepare_inner_rotation must be called first");
        self.secrets = secrets;
        self.public = public;
        self.rebuild_servers();
    }

    fn rebuild_servers(&mut self) {
        self.servers = self
            .secrets
            .iter()
            .map(|s| MixServer::new(s.clone(), self.public.clone()))
            .collect();
    }

    /// The chain's public key bundle (what users encrypt against).
    pub fn public(&self) -> &ChainPublicKeys {
        &self.public
    }

    /// Chain length.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True if the chain has no servers (never in practice).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Access the servers (for fault-injection in tests).
    #[doc(hidden)]
    pub fn servers_mut(&mut self) -> &mut [MixServer] {
        &mut self.servers
    }

    /// Execute one full round for this chain (§6.3 with §6.4 fallback).
    ///
    /// Returns the delivered mailbox messages together with the list of
    /// removed malicious submissions.  Honest users' messages are always
    /// delivered (the protocol repeats after blame, with bad inputs
    /// removed).
    pub fn run_round<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        round: u64,
        submissions: &[Submission],
    ) -> ChainRoundOutcome {
        let mut stats = ChainRoundStats::default();
        let mut malicious_users = Vec::new();
        let mut misbehaving_servers = Vec::new();

        // Submission screening: verify each PoK (§6.2 step 2); a bad
        // proof identifies the submitter immediately (§6.4).
        let mut active: Vec<usize> = Vec::with_capacity(submissions.len());
        for (i, sub) in submissions.iter().enumerate() {
            if sub.verify_pok(round) {
                active.push(i);
            } else {
                stats.rejected_pok += 1;
                malicious_users.push(i);
            }
        }

        // Input agreement: all servers hash the agreed submission set.
        // (With one process there is nothing to compare against, but the
        // digest is computed as the protocol prescribes.)
        let _digest = input_digest(
            &active
                .iter()
                .map(|&i| submissions[i].to_entry())
                .collect::<Vec<_>>(),
        );

        // Mixing with blame-retry: repeat until a clean pass.
        let delivered_entries: Vec<MixEntry> = loop {
            let entries: Vec<MixEntry> =
                active.iter().map(|&i| submissions[i].to_entry()).collect();
            match self.mix_pass(rng, round, entries, &mut stats) {
                MixPassResult::Clean(outputs) => break outputs,
                MixPassResult::Blame { position, failed } => {
                    stats.blame_rounds += 1;
                    // Blame runs against the batch actually mixed (the
                    // active subset); verdict indices are then mapped
                    // back to original submission indices.
                    let active_subs: Vec<Submission> =
                        active.iter().map(|&i| submissions[i].clone()).collect();
                    let mut to_remove: Vec<usize> = Vec::new();
                    for idx in failed {
                        match run_blame(
                            rng,
                            &self.public,
                            &self.servers,
                            &active_subs,
                            round,
                            position,
                            idx,
                        ) {
                            BlameVerdict::MaliciousUser { submission_index } => {
                                to_remove.push(active[submission_index]);
                            }
                            BlameVerdict::ServerMisbehaved { position } => {
                                misbehaving_servers.push(position);
                            }
                        }
                    }
                    if !misbehaving_servers.is_empty() {
                        // A malicious *server* was caught: the protocol
                        // halts with no privacy loss; nothing is
                        // delivered this round (§6.4: servers delete
                        // their inner keys).
                        return ChainRoundOutcome {
                            delivered: Vec::new(),
                            malicious_users,
                            misbehaving_servers,
                            stats,
                        };
                    }
                    assert!(
                        !to_remove.is_empty(),
                        "blame must identify at least one party"
                    );
                    stats.removed_by_blame += to_remove.len();
                    for bad in to_remove {
                        malicious_users.push(bad);
                        active.retain(|&i| i != bad);
                    }
                }
            }
        };

        // Inner key reveal + verification, then open.
        let inner_keys: Vec<Scalar> = self.servers.iter().map(|s| s.reveal_inner_key()).collect();
        for (pos, key) in inner_keys.iter().enumerate() {
            assert!(
                verify_inner_key(&self.public, pos, key),
                "inner key reveal must verify"
            );
        }
        let delivered = open_batch(&inner_keys, round, &delivered_entries)
            .into_iter()
            .flatten()
            .collect();

        ChainRoundOutcome {
            delivered,
            malicious_users,
            misbehaving_servers,
            stats,
        }
    }

    /// One pass over all hops; returns either the final entries or the
    /// position/indices of the first decryption failure.
    fn mix_pass<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        round: u64,
        mut entries: Vec<MixEntry>,
        stats: &mut ChainRoundStats,
    ) -> MixPassResult {
        let k = self.servers.len();
        for pos in 0..k {
            let inputs = entries.clone();
            match self.servers[pos].process_round(rng, round, entries) {
                Ok(result) => {
                    stats.proofs_generated += 1;
                    // Every other server verifies the hop proof.
                    let mut ok = true;
                    for _verifier in 0..k.saturating_sub(1) {
                        ok &= verify_hop(
                            &self.public,
                            pos,
                            round,
                            &inputs,
                            &result.outputs,
                            &result.proof,
                        );
                        stats.proofs_verified += 1;
                    }
                    assert!(ok, "honest hop proof must verify");
                    entries = result.outputs;
                }
                Err(MixError::DecryptFailure(failed)) => {
                    return MixPassResult::Blame {
                        position: pos,
                        failed,
                    };
                }
                Err(MixError::Malformed) => {
                    panic!("malformed batch in in-process execution");
                }
            }
        }
        MixPassResult::Clean(entries)
    }
}

enum MixPassResult {
    Clean(Vec<MixEntry>),
    Blame { position: usize, failed: Vec<usize> },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::seal_ahs;
    use crate::message::PAYLOAD_LEN;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xrd_crypto::TAG_LEN;

    fn msg(tag: u8) -> MailboxMessage {
        MailboxMessage {
            mailbox: [tag; 32],
            sealed: vec![tag; PAYLOAD_LEN + TAG_LEN],
        }
    }

    #[test]
    fn clean_round_delivers_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut chain = ChainRunner::new(&mut rng, 3, 0);
        let msgs: Vec<MailboxMessage> = (0..10).map(msg).collect();
        let subs: Vec<Submission> = msgs
            .iter()
            .map(|m| seal_ahs(&mut rng, chain.public(), 0, m))
            .collect();
        let outcome = chain.run_round(&mut rng, 0, &subs);
        assert!(outcome.malicious_users.is_empty());
        assert!(outcome.misbehaving_servers.is_empty());
        assert_eq!(outcome.delivered.len(), 10);
        assert_eq!(outcome.stats.proofs_generated, 3);
        assert_eq!(outcome.stats.proofs_verified, 3 * 2);
        let mut mailboxes: Vec<[u8; 32]> = outcome.delivered.iter().map(|m| m.mailbox).collect();
        mailboxes.sort();
        assert_eq!(
            mailboxes,
            (0..10).map(|i| [i as u8; 32]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bad_pok_is_rejected_without_blame() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut chain = ChainRunner::new(&mut rng, 2, 1);
        let mut subs: Vec<Submission> = (0..4)
            .map(|i| seal_ahs(&mut rng, chain.public(), 1, &msg(i)))
            .collect();
        // Replay a PoK from the wrong round: invalid.
        subs[1] = seal_ahs(&mut rng, chain.public(), 99, &msg(1));
        let outcome = chain.run_round(&mut rng, 1, &subs);
        assert_eq!(outcome.stats.rejected_pok, 1);
        assert_eq!(outcome.malicious_users, vec![1]);
        // The others still go through... note user 1's onion was built
        // for round 99 so even its ct would fail; it never enters.
        assert_eq!(outcome.delivered.len(), 3);
    }

    #[test]
    fn malicious_submission_removed_and_rest_delivered() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut chain = ChainRunner::new(&mut rng, 3, 2);
        let mut subs: Vec<Submission> = (0..6)
            .map(|i| seal_ahs(&mut rng, chain.public(), 2, &msg(i)))
            .collect();
        // Corrupt user 4's ciphertext (valid PoK, garbage onion).
        subs[4].ct[10] ^= 0x55;
        let outcome = chain.run_round(&mut rng, 2, &subs);
        assert_eq!(outcome.malicious_users, vec![4]);
        assert_eq!(outcome.stats.removed_by_blame, 1);
        assert_eq!(outcome.stats.blame_rounds, 1);
        assert_eq!(outcome.delivered.len(), 5);
        assert!(outcome.misbehaving_servers.is_empty());
    }

    #[test]
    fn many_malicious_users_removed_iteratively() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut chain = ChainRunner::new(&mut rng, 2, 3);
        let mut subs: Vec<Submission> = (0..8)
            .map(|i| seal_ahs(&mut rng, chain.public(), 3, &msg(i)))
            .collect();
        for &i in &[1usize, 3, 6] {
            subs[i].ct[0] ^= 0xff;
        }
        let outcome = chain.run_round(&mut rng, 3, &subs);
        let mut bad = outcome.malicious_users.clone();
        bad.sort();
        assert_eq!(bad, vec![1, 3, 6]);
        assert_eq!(outcome.delivered.len(), 5);
    }

    #[test]
    fn empty_round_is_fine() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut chain = ChainRunner::new(&mut rng, 2, 0);
        let outcome = chain.run_round(&mut rng, 0, &[]);
        assert!(outcome.delivered.is_empty());
        assert!(outcome.malicious_users.is_empty());
    }

    #[test]
    fn inner_key_rotation_supports_multiple_rounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut chain = ChainRunner::new(&mut rng, 2, 0);
        for round in 0..3u64 {
            chain.rotate_inner_keys(&mut rng, round);
            assert!(chain.public().verify(), "round {round} keys verify");
            let subs: Vec<Submission> = (0..4)
                .map(|i| seal_ahs(&mut rng, chain.public(), round, &msg(i)))
                .collect();
            let outcome = chain.run_round(&mut rng, round, &subs);
            assert_eq!(outcome.delivered.len(), 4, "round {round}");
        }
    }

    #[test]
    fn rotation_changes_inner_keys_only() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut chain = ChainRunner::new(&mut rng, 2, 0);
        let before = chain.public().clone();
        chain.rotate_inner_keys(&mut rng, 1);
        let after = chain.public();
        assert_eq!(before.bpks.len(), after.bpks.len());
        for i in 0..before.bpks.len() {
            assert_eq!(before.bpks[i], after.bpks[i], "blinding keys stable");
        }
        for i in 0..before.mpks.len() {
            assert_eq!(before.mpks[i], after.mpks[i], "mixing keys stable");
            assert_ne!(before.ipks[i], after.ipks[i], "inner keys rotated");
        }
        assert_eq!(after.inner_epoch, 1);
    }

    #[test]
    fn single_server_chain_works() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut chain = ChainRunner::new(&mut rng, 1, 0);
        let subs: Vec<Submission> = (0..3)
            .map(|i| seal_ahs(&mut rng, chain.public(), 0, &msg(i)))
            .collect();
        let outcome = chain.run_round(&mut rng, 0, &subs);
        assert_eq!(outcome.delivered.len(), 3);
    }
}
