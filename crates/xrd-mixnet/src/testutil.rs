//! Attack-construction utilities shared by tests, integration tests and
//! the Figure-7 measurement harness.  These build *valid-looking but
//! malicious* inputs; a deployment never uses them.

use rand::Rng;
use rand::RngCore;

use xrd_crypto::aead::{aenc, round_nonce};
use xrd_crypto::nizk::SchnorrProof;
use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;

use crate::chain_keys::ChainPublicKeys;
use crate::client::{outer_layer_key, submission_context, Submission};
use crate::message::{domain_outer, outer_ct_len};

/// Build a submission that decrypts correctly through hops
/// `0..bad_layer` and then fails authenticated decryption at
/// `bad_layer` (the §6.4 malicious-user attack; `bad_layer = k-1` is the
/// worst case for the blame protocol).  The PoK and the DH key are
/// valid; only the onion content is garbage beneath `bad_layer`.
pub fn malicious_submission<R: RngCore + ?Sized>(
    rng: &mut R,
    keys: &ChainPublicKeys,
    round: u64,
    bad_layer: usize,
) -> Submission {
    let k = keys.len();
    assert!(bad_layer < k);
    // Random bytes of exactly the size hop `bad_layer` expects; they
    // will fail its AEAD authentication with overwhelming probability.
    let mut ct = vec![0u8; outer_ct_len(k - bad_layer)];
    rng.fill(&mut ct[..]);

    let x = Scalar::random(rng);
    for layer in (0..bad_layer).rev() {
        let shared = keys.mpks[layer].mul(&x);
        ct = aenc(
            &outer_layer_key(&shared, round, layer),
            &round_nonce(round, domain_outer(layer)),
            b"",
            &ct,
        );
    }
    let dh = GroupElement::base_mul(&x);
    let pok = SchnorrProof::prove(
        rng,
        &submission_context(round),
        &GroupElement::generator(),
        &dh,
        &x,
    );
    Submission { dh, ct, pok }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain_keys::generate_chain_keys;
    use crate::message::MixEntry;
    use crate::server::{MixError, MixServer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fails_at_exactly_the_requested_layer() {
        let mut rng = StdRng::seed_from_u64(1);
        let k = 4;
        for bad_layer in 0..k {
            let (secrets, public) = generate_chain_keys(&mut rng, k, 0);
            let sub = malicious_submission(&mut rng, &public, 0, bad_layer);
            assert!(sub.verify_pok(0), "PoK must look honest");
            let mut entries = vec![MixEntry {
                dh: sub.dh,
                ct: sub.ct.clone(),
            }];
            for (pos, secret) in secrets.into_iter().enumerate() {
                let mut server = MixServer::new(secret, public.clone());
                match server.process_round(&mut rng, 0, entries.clone()) {
                    Ok(res) => {
                        assert!(pos < bad_layer, "survived past layer {bad_layer}?");
                        entries = res.outputs;
                    }
                    Err(MixError::DecryptFailure(idx)) => {
                        assert_eq!(pos, bad_layer, "failed at {pos}, wanted {bad_layer}");
                        assert_eq!(idx, vec![0]);
                        break;
                    }
                    Err(e) => panic!("unexpected {e:?}"),
                }
            }
        }
    }

    #[test]
    fn has_uniform_wire_size() {
        // The attack submission is indistinguishable in size from an
        // honest one.
        let mut rng = StdRng::seed_from_u64(2);
        let (_, public) = generate_chain_keys(&mut rng, 3, 0);
        let honest = crate::client::seal_ahs(
            &mut rng,
            &public,
            0,
            &crate::message::MailboxMessage {
                mailbox: [0u8; 32],
                sealed: vec![0u8; crate::message::PAYLOAD_LEN + 16],
            },
        );
        for bad_layer in 0..3 {
            let bad = malicious_submission(&mut rng, &public, 0, bad_layer);
            assert_eq!(bad.ct.len(), honest.ct.len(), "layer {bad_layer}");
        }
    }
}
