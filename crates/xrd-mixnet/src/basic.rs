//! The baseline mix server of §5 (Algorithm 1): plain decrypt-and-shuffle
//! with per-layer DH keys and **no verification**.
//!
//! This is the design XRD starts from before adding AHS; it is secure
//! against passive adversaries only.  We keep it as (a) the ablation
//! baseline for AHS cost accounting, and (b) a demonstration — exercised
//! by tests — that an active tampering attack passes *silently* here
//! while AHS catches it.

use rand::Rng;
use rand::RngCore;

use xrd_crypto::aead::{adec, round_nonce};
use xrd_crypto::ristretto::GroupElement;
use xrd_crypto::scalar::Scalar;

use crate::client::outer_layer_key;
use crate::message::{domain_outer, MailboxMessage};

/// Keys for one baseline chain: ordinary `(msk_i, mpk_i = g^{msk_i})`.
#[derive(Clone, Debug)]
pub struct BasicChainKeys {
    /// Secret mixing keys, one per hop.
    pub msks: Vec<Scalar>,
    /// Public mixing keys, one per hop.
    pub mpks: Vec<GroupElement>,
}

/// Generate baseline mixing key pairs for a chain of `k` servers.
pub fn generate_basic_keys<R: RngCore + ?Sized>(rng: &mut R, k: usize) -> BasicChainKeys {
    let msks: Vec<Scalar> = (0..k).map(|_| Scalar::random(rng)).collect();
    let mpks = msks.iter().map(GroupElement::base_mul).collect();
    BasicChainKeys { msks, mpks }
}

/// A baseline (Algorithm 1) mix server.
pub struct BasicMixServer {
    /// Hop position.
    pub position: usize,
    msk: Scalar,
}

impl BasicMixServer {
    /// Create the server for hop `position`.
    pub fn new(position: usize, msk: Scalar) -> BasicMixServer {
        BasicMixServer { position, msk }
    }

    /// Algorithm 1: decrypt each onion layer and shuffle.  Messages that
    /// fail to decrypt are silently dropped — exactly the weakness AHS
    /// exists to fix.
    pub fn process_round<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        round: u64,
        inputs: Vec<Vec<u8>>,
    ) -> Vec<Vec<u8>> {
        let mut outputs: Vec<Vec<u8>> = inputs
            .into_iter()
            .filter_map(|ct| {
                if ct.len() < 32 {
                    return None;
                }
                let mut gx = [0u8; 32];
                gx.copy_from_slice(&ct[..32]);
                let gx = GroupElement::decode(&gx)?;
                let key = outer_layer_key(&gx.mul(&self.msk), round, self.position);
                adec(
                    &key,
                    &round_nonce(round, domain_outer(self.position)),
                    b"",
                    &ct[32..],
                )
            })
            .collect();
        // Fisher-Yates shuffle.
        for i in (1..outputs.len()).rev() {
            let j = rng.gen_range(0..=i);
            outputs.swap(i, j);
        }
        outputs
    }
}

/// Run a full baseline chain round: k hops then parse mailbox messages.
pub fn run_basic_chain<R: RngCore + ?Sized>(
    rng: &mut R,
    keys: &BasicChainKeys,
    round: u64,
    submissions: Vec<Vec<u8>>,
) -> Vec<MailboxMessage> {
    let mut batch = submissions;
    for (pos, msk) in keys.msks.iter().enumerate() {
        let server = BasicMixServer::new(pos, *msk);
        batch = server.process_round(rng, round, batch);
    }
    batch
        .into_iter()
        .filter_map(|bytes| MailboxMessage::from_bytes(&bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::seal_basic;
    use crate::message::PAYLOAD_LEN;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xrd_crypto::TAG_LEN;

    fn msg(tag: u8) -> MailboxMessage {
        MailboxMessage {
            mailbox: [tag; 32],
            sealed: vec![tag; PAYLOAD_LEN + TAG_LEN],
        }
    }

    #[test]
    fn basic_chain_delivers() {
        let mut rng = StdRng::seed_from_u64(1);
        let keys = generate_basic_keys(&mut rng, 3);
        let msgs: Vec<MailboxMessage> = (0..7).map(msg).collect();
        let subs: Vec<Vec<u8>> = msgs
            .iter()
            .map(|m| seal_basic(&mut rng, &keys.mpks, 4, m))
            .collect();
        let mut delivered = run_basic_chain(&mut rng, &keys, 4, subs);
        delivered.sort_by_key(|m| m.mailbox);
        let mut expected = msgs;
        expected.sort_by_key(|m| m.mailbox);
        assert_eq!(delivered, expected);
    }

    #[test]
    fn tampering_goes_undetected_in_baseline() {
        // The §6 motivating attack: a malicious first server drops an
        // honest user's message.  In the baseline nothing notices — the
        // round "succeeds" with one message missing.  (The corresponding
        // AHS test shows detection; see `blame::tests`.)
        let mut rng = StdRng::seed_from_u64(2);
        let keys = generate_basic_keys(&mut rng, 3);
        let msgs: Vec<MailboxMessage> = (0..5).map(msg).collect();
        let mut subs: Vec<Vec<u8>> = msgs
            .iter()
            .map(|m| seal_basic(&mut rng, &keys.mpks, 0, m))
            .collect();
        subs.remove(2); // adversary drops user 2's message
        let delivered = run_basic_chain(&mut rng, &keys, 0, subs);
        assert_eq!(delivered.len(), 4); // silently short
        assert!(!delivered.iter().any(|m| m.mailbox == [2u8; 32]));
    }

    #[test]
    fn garbage_is_silently_dropped() {
        let mut rng = StdRng::seed_from_u64(3);
        let keys = generate_basic_keys(&mut rng, 2);
        let good = seal_basic(&mut rng, &keys.mpks, 1, &msg(1));
        let garbage = vec![0u8; good.len()];
        let delivered = run_basic_chain(&mut rng, &keys, 1, vec![good, garbage]);
        assert_eq!(delivered.len(), 1);
    }

    #[test]
    fn short_input_dropped() {
        let mut rng = StdRng::seed_from_u64(4);
        let keys = generate_basic_keys(&mut rng, 1);
        let delivered = run_basic_chain(&mut rng, &keys, 0, vec![vec![1, 2, 3]]);
        assert!(delivered.is_empty());
    }
}
