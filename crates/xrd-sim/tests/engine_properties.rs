//! Property tests for the discrete-event engine: ordering, determinism,
//! and conservation invariants under arbitrary schedules.

use proptest::prelude::*;
use xrd_sim::{Engine, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events are always delivered in non-decreasing time order with
    /// FIFO tie-breaking, regardless of insertion order.
    #[test]
    fn delivery_is_time_ordered(times in prop::collection::vec(0u64..1000, 1..50)) {
        let mut engine: Engine<(u64, usize)> = Engine::new();
        for (seq, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime(t), (t, seq));
        }
        let mut seen: Vec<(u64, usize)> = Vec::new();
        let mut clock_ok = true;
        engine.run(|eng, e| {
            clock_ok &= eng.now() == SimTime(e.0);
            seen.push(e);
        });
        prop_assert!(clock_ok, "clock must equal each event's schedule time");
        prop_assert_eq!(seen.len(), times.len());
        for pair in seen.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO violated");
            }
        }
    }

    /// Every scheduled event (including ones scheduled from handlers) is
    /// delivered exactly once.
    #[test]
    fn conservation_with_cascades(seeds in prop::collection::vec(0u64..100, 1..20)) {
        let mut engine: Engine<u64> = Engine::new();
        for &s in &seeds {
            engine.schedule_at(SimTime(s), s);
        }
        let mut delivered = 0u64;
        let mut spawned = seeds.len() as u64;
        engine.run(|eng, e| {
            delivered += 1;
            // Each event below 50 spawns a follow-up.
            if e < 50 {
                eng.schedule_in(SimDuration(e + 1), e + 50);
                spawned += 1;
            }
        });
        prop_assert_eq!(delivered, spawned);
        prop_assert_eq!(engine.events_processed(), delivered);
        prop_assert_eq!(engine.pending(), 0);
    }

    /// run_until never delivers an event past the deadline, and resuming
    /// delivers the rest.
    #[test]
    fn run_until_partitions_cleanly(
        times in prop::collection::vec(0u64..1000, 1..40),
        deadline in 0u64..1000,
    ) {
        let mut engine: Engine<u64> = Engine::new();
        for &t in &times {
            engine.schedule_at(SimTime(t), t);
        }
        let mut early: Vec<u64> = Vec::new();
        engine.run_until(SimTime(deadline), |_, e| early.push(e));
        prop_assert!(early.iter().all(|&t| t <= deadline));
        let mut late: Vec<u64> = Vec::new();
        engine.run(|_, e| late.push(e));
        prop_assert!(late.iter().all(|&t| t > deadline));
        prop_assert_eq!(early.len() + late.len(), times.len());
    }
}
