//! A minimal, deterministic discrete-event engine.
//!
//! Events of a user-chosen type `E` are scheduled at virtual times and
//! delivered to a handler in non-decreasing time order; ties break in
//! scheduling (FIFO) order, which keeps runs fully deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Discrete-event engine over event type `E`.
pub struct Engine<E> {
    now: SimTime,
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Fresh engine at time zero.
    pub fn new() -> Engine<E> {
        Engine {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event at an absolute virtual time (must not be in the
    /// past).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedule an event after a delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock.
    pub fn next_event(&mut self) -> Option<E> {
        let Reverse(scheduled) = self.queue.pop()?;
        debug_assert!(scheduled.at >= self.now);
        self.now = scheduled.at;
        self.processed += 1;
        Some(scheduled.event)
    }

    /// Run until the queue is empty.  The handler may schedule further
    /// events through the engine reference it receives.
    pub fn run<F: FnMut(&mut Engine<E>, E)>(&mut self, mut handler: F) {
        while let Some(event) = self.next_event() {
            handler(self, event);
        }
    }

    /// Run until the queue is empty or `deadline` is reached (events at
    /// exactly the deadline are still delivered).  Returns true if the
    /// queue drained.
    pub fn run_until<F: FnMut(&mut Engine<E>, E)>(
        &mut self,
        deadline: SimTime,
        mut handler: F,
    ) -> bool {
        loop {
            match self.queue.peek() {
                None => return true,
                Some(Reverse(next)) if next.at > deadline => return false,
                _ => {}
            }
            let event = self.next_event().expect("peeked event exists");
            handler(self, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_delivered_in_time_order() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_at(SimTime(30), 3);
        engine.schedule_at(SimTime(10), 1);
        engine.schedule_at(SimTime(20), 2);
        let mut seen = vec![];
        engine.run(|eng, e| {
            seen.push((eng.now().0, e));
        });
        assert_eq!(seen, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(engine.events_processed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut engine: Engine<u32> = Engine::new();
        for i in 0..10 {
            engine.schedule_at(SimTime(5), i);
        }
        let mut seen = vec![];
        engine.run(|_, e| seen.push(e));
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut engine: Engine<u64> = Engine::new();
        engine.schedule_at(SimTime(0), 0);
        let mut count = 0u64;
        engine.run(|eng, e| {
            count += 1;
            if e < 5 {
                eng.schedule_in(SimDuration(10), e + 1);
            }
        });
        assert_eq!(count, 6);
        assert_eq!(engine.now(), SimTime(50));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_past_panics() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_at(SimTime(10), ());
        engine.next_event();
        engine.schedule_at(SimTime(5), ());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_at(SimTime(10), 1);
        engine.schedule_at(SimTime(20), 2);
        engine.schedule_at(SimTime(30), 3);
        let mut seen = vec![];
        let drained = engine.run_until(SimTime(20), |_, e| seen.push(e));
        assert!(!drained);
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(engine.pending(), 1);
        let drained = engine.run_until(SimTime(100), |_, e| seen.push(e));
        assert!(drained);
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn clock_is_monotone() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule_at(SimTime(5), 0);
        engine.schedule_at(SimTime(5), 1);
        engine.schedule_at(SimTime(7), 2);
        let mut last = SimTime::ZERO;
        engine.run(|eng, _| {
            assert!(eng.now() >= last);
            last = eng.now();
        });
    }
}
