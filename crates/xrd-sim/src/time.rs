//! Virtual time for the discrete-event simulator.
//!
//! Time is kept in integer nanoseconds so event ordering is exact and
//! runs are bit-reproducible across platforms (no floating-point clock).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since simulation start, as f64 (for reporting only).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`; saturates at zero.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From seconds (f64, for model parameters).
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// From nanoseconds.
    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// As f64 seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating duration sum.
    pub fn saturating_add(&self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Scale by an integer factor.
    pub fn scale(&self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scale by a float factor (rounding to nanoseconds).
    pub fn scale_f64(&self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0 && factor.is_finite());
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Larger of the two.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.0, 5_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).0, 1_500_000_000);
        assert_eq!(SimDuration::from_micros(3).0, 3_000);
        assert!((SimDuration::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.scale(3), SimDuration::from_micros(30));
        assert_eq!(d.scale_f64(0.5), SimDuration::from_micros(5));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs_f64(2.0)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
